//! # dmfstream
//!
//! A from-scratch Rust reproduction of **"Demand-Driven Mixture Preparation
//! and Droplet Streaming using Digital Microfluidic Biochips"** (Roy, Kumar,
//! Chakrabarti, Bhattacharya, Chakrabarty — DAC 2014).
//!
//! Digital-microfluidic (DMF) biochips prepare fluid mixtures through
//! sequences of (1:1) mix-split operations. Classic sample-preparation
//! algorithms emit at most **two** droplets of the target mixture per pass;
//! protocols like PCR need a *stream* of them. This workspace implements the
//! paper's solution — the **mixing forest**, which feeds waste droplets of
//! earlier trees into later ones — together with every substrate it needs:
//!
//! | layer | crate | highlights |
//! |-------|-------|------------|
//! | ratios | [`ratio`] | dyadic CF vectors, `2^d` grid approximation |
//! | task graphs | [`mixgraph`] | arena mixing trees/forests, `Tms`/`W`/`I[]` stats |
//! | base algorithms | [`mixalgo`] | MinMix, RMA, MTCS, RSM, dilution |
//! | the contribution | [`forest`] | mixing-forest construction (paper §4.1) |
//! | scheduling | [`sched`] | OMS/Hu, MMS (Alg. 1), SRS (Alg. 2), storage counting (Alg. 3), Gantt charts |
//! | chip model | [`chip`] | electrode grids, modules, placement optimiser, Fig. 5 cost matrix |
//! | pin backends | [`pins`] | direct / row-column / broadcast pin assignment, co-activation constraints |
//! | routing | [`route`] | A* + space-time multi-droplet routing with fluidic constraints |
//! | simulation | [`sim`] | strict cycle-level executor, electrode-actuation accounting |
//! | the engine | [`engine`] | demand-driven multi-pass streaming under storage budgets |
//! | fault tolerance | [`fault`] | seeded fault injection, sensor checkpoints, demand-level recovery |
//! | workloads | [`workloads`] | five bioprotocol ratios, 6k-ratio synthetic corpus |
//!
//! # Quickstart
//!
//! ```
//! use dmfstream::engine::{EngineConfig, StreamingEngine};
//! use dmfstream::ratio::TargetRatio;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The PCR master mix at accuracy d = 4 (the paper's running example).
//! let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
//! let engine = StreamingEngine::new(EngineConfig::default());
//!
//! // Stream 20 droplets of the mixture.
//! let plan = engine.plan(&target, 20)?;
//! println!("{plan}");
//! assert_eq!(plan.total_cycles, 11); // paper Fig. 3
//! assert_eq!(plan.storage_peak, 5);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end walkthroughs (chip placement, routing and
//! simulation included) and the `dmf-bench` crate for the binaries that
//! regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Observability: spans, counters, gauges, JSONL export ([`dmf_obs`]).
pub mod obs {
    pub use dmf_obs::*;
}

/// Exact concentration-factor arithmetic ([`dmf_ratio`]).
pub mod ratio {
    pub use dmf_ratio::*;
}

/// Mixing-tree / mixing-forest data structures ([`dmf_mixgraph`]).
pub mod mixgraph {
    pub use dmf_mixgraph::*;
}

/// Base mixing algorithms ([`dmf_mixalgo`]).
pub mod mixalgo {
    pub use dmf_mixalgo::*;
}

/// Mixing-forest construction ([`dmf_forest`]).
pub mod forest {
    pub use dmf_forest::*;
}

/// Forest schedulers and storage accounting ([`dmf_sched`]).
pub mod sched {
    pub use dmf_sched::*;
}

/// Biochip model, layout and placement ([`dmf_chip`]).
pub mod chip {
    pub use dmf_chip::*;
}

/// Pin-constrained chip backends and co-activation constraints
/// ([`dmf_pins`]).
pub mod pins {
    pub use dmf_pins::*;
}

/// Droplet routing ([`dmf_route`]).
pub mod route {
    pub use dmf_route::*;
}

/// Cycle-level chip simulation ([`dmf_sim`]).
pub mod sim {
    pub use dmf_sim::*;
}

/// The demand-driven streaming engine ([`dmf_engine`]).
pub mod engine {
    pub use dmf_engine::*;
}

/// Fault injection and error recovery ([`dmf_fault`]).
pub mod fault {
    pub use dmf_fault::*;
}

/// Evaluation workloads ([`dmf_workloads`]).
pub mod workloads {
    pub use dmf_workloads::*;
}

/// Two-fluid dilution algorithms and engines ([`dmf_dilution`]).
pub mod dilution {
    pub use dmf_dilution::*;
}

/// Independent static verification of synthesis artifacts ([`dmf_check`]).
pub mod check {
    pub use dmf_check::*;
}

/// Concurrent planning service over line-delimited JSON ([`dmf_serve`]).
pub mod serve {
    pub use dmf_serve::*;
}
