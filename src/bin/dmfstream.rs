//! `dmfstream` — command-line front end for the droplet-streaming engine.
//!
//! ```bash
//! dmfstream plan 2:1:1:1:1:1:9 --demand 20
//! dmfstream plan 26:21:2:2:3:3:199 --demand 32 --algorithm rma --scheduler mms
//! dmfstream plan 2:1:1:1:1:1:9 --demand 32 --storage 3 --mixers 3
//! dmfstream plan --all-protocols --jobs 4
//! dmfstream simulate 2:1:1:1:1:1:9 --demand 20
//! dmfstream gantt 2:1:1:1:1:1:9 --demand 20
//! dmfstream simulate 2:1:1:1:1:1:9 --demand 20 --metrics out.jsonl
//! DMF_OBS=1 dmfstream simulate 2:1:1:1:1:1:9 --demand 20
//! dmfstream fault 2:1:1:1:1:1:9 --demand 20 --seed 42 --fault-rate 0.05
//! dmfstream check --all-protocols --jobs 4
//! dmfstream check --all-protocols --deep --deny warn --json results/findings.json
//! dmfstream check --explain FLOW001
//! dmfstream profile 2:1:1:1:1:1:9 --demand 20 --folded plan.folded --chrome plan.trace.json
//! dmfstream serve --port 7070 --workers 4 --cache-capacity 256 --slow-ms 250
//! dmfstream request 2:1:1:1:1:1:9 --demand 20 --connect 127.0.0.1:7070
//! dmfstream request 2:1:1:1:1:1:9 --demand 20 --trace --connect 127.0.0.1:7070
//! dmfstream request --op stats --connect 127.0.0.1:7070
//! dmfstream request --op shutdown --connect 127.0.0.1:7070
//! ```
//!
//! `plan --all-protocols` and `check --all-protocols` plan every Table 2
//! protocol through the batch planner ([`dmf_engine::plan_batch`]) with a
//! shared content-addressed plan cache; `--jobs N` sets the worker-thread
//! count (default: available parallelism), `--cache-shards N` the cache's
//! lock-shard count (default: available parallelism) and `--no-cache`
//! disables the cache. Output is deterministic and independent of both
//! `--jobs` and `--cache-shards`.
//!
//! `--metrics <path>` (or the `DMF_OBS=1` environment variable, which
//! defaults to `results/obs/dmfstream.jsonl`) enables the global
//! [`dmf_obs`] recorder: the run's spans, counters and gauges are dumped
//! as JSON lines to the path and a human-readable summary table is
//! printed at the end.
//!
//! `serve` starts the [`dmf_serve`] planning service (it prints
//! `listening on ADDR` once bound — pass `--port 0` to pick a free port)
//! and `request` is the matching one-shot client: it builds the protocol
//! line from the same planning flags `plan` takes, sends it, and prints
//! the raw JSON response. `request` exits non-zero when the server
//! answers with an error response.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::chip::presets::streaming_chip;
use dmfstream::engine::{
    default_shard_count, plan_batch, realize_pass, BatchOptions, EngineConfig, PlanCache,
    PlanRequest, RecoveryPolicy, StreamingEngine, DEFAULT_PLAN_CACHE_CAPACITY,
};
use dmfstream::fault::{run_campaign, Campaign, FaultConfig, WearTracker};
use dmfstream::mixalgo::MixingAlgorithmRegistry;
use dmfstream::obs;
use dmfstream::pins::BackendKind;
use dmfstream::ratio::TargetRatio;
use dmfstream::sched::SchedulerRegistry;
use dmfstream::serve::{Client, ServeConfig, Server};
use dmfstream::sim::Simulator;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    /// Raw positional ratio components. Kept unconstructed so the
    /// feasibility pre-pass can run on shapes `TargetRatio` rejects
    /// (and report FEAS001/FEAS002 instead of a parse error).
    ratio: Option<Vec<u64>>,
    all_protocols: bool,
    demand: u64,
    config: EngineConfig,
    fault: FaultConfig,
    policy: RecoveryPolicy,
    backend: Option<BackendKind>,
    trace: bool,
    metrics: Option<PathBuf>,
    report: Option<PathBuf>,
    jobs: Option<NonZeroUsize>,
    no_cache: bool,
    cache_shards: Option<NonZeroUsize>,
    serve: ServeConfig,
    deadline_ms: Option<u64>,
    connect: Option<String>,
    op: String,
    folded: Option<PathBuf>,
    chrome: Option<PathBuf>,
    deep: bool,
    deny: dmfstream::check::Severity,
    explain: Option<String>,
    json: Option<PathBuf>,
    list_algorithms: bool,
    list_schedulers: bool,
}

/// The flags each verb accepts. Unknown-flag errors quote the relevant
/// list, so a typo under `check` suggests `check`'s flags, not `fault`'s.
fn valid_flags(command: &str) -> Option<&'static [&'static str]> {
    match command {
        "plan" => Some(&[
            "--demand",
            "--mixers",
            "--storage",
            "--algorithm",
            "--algo",
            "--scheduler",
            "--metrics",
            "--all-protocols",
            "--jobs",
            "--no-cache",
            "--cache-shards",
            "--backend",
            "--list-algorithms",
            "--list-schedulers",
        ]),
        "gantt" => Some(&[
            "--demand",
            "--mixers",
            "--storage",
            "--algorithm",
            "--algo",
            "--scheduler",
            "--metrics",
        ]),
        "simulate" => Some(&[
            "--demand",
            "--mixers",
            "--storage",
            "--algorithm",
            "--algo",
            "--scheduler",
            "--metrics",
            "--trace",
        ]),
        "fault" => Some(&[
            "--demand",
            "--mixers",
            "--storage",
            "--algorithm",
            "--algo",
            "--scheduler",
            "--metrics",
            "--trace",
            "--seed",
            "--fault-rate",
            "--sensor-period",
            "--max-replans",
            "--backend",
        ]),
        "check" => Some(&[
            "--demand",
            "--mixers",
            "--storage",
            "--algorithm",
            "--algo",
            "--scheduler",
            "--metrics",
            "--all-protocols",
            "--jobs",
            "--no-cache",
            "--cache-shards",
            "--report",
            "--backend",
            "--deep",
            "--deny",
            "--explain",
            "--json",
        ]),
        "profile" => Some(&[
            "--demand",
            "--mixers",
            "--storage",
            "--algorithm",
            "--algo",
            "--scheduler",
            "--folded",
            "--chrome",
        ]),
        "serve" => Some(&[
            "--addr",
            "--port",
            "--workers",
            "--queue-depth",
            "--cache-capacity",
            "--cache-shards",
            "--deadline-ms",
            "--slow-ms",
        ]),
        "request" => Some(&[
            "--connect",
            "--op",
            "--demand",
            "--mixers",
            "--storage",
            "--algorithm",
            "--algo",
            "--scheduler",
            "--deadline-ms",
            "--trace",
        ]),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dmfstream <plan|gantt|simulate|fault|check|profile|serve|request> <a1:a2:...:aN> \
         [--demand D] [--mixers M] [--storage Q] \
         [--algorithm|--algo NAME] [--scheduler NAME] [--trace] \
         (`dmfstream plan --list-algorithms` / `--list-schedulers` print the \
         registered names) \
         [--metrics PATH]  (DMF_OBS=1 defaults PATH to results/obs/dmfstream.jsonl)\n\
         fault-only flags: [--seed S] [--fault-rate R] [--sensor-period C] \
         [--max-replans N]\n\
         pin backends (plan/check/fault): [--backend \
         direct-address|row-column|broadcast] wires the chip with a shared-pin \
         backend — plan reports the pin count, check audits the PIN/* rules, \
         fault runs the campaign under the pinned simulator\n\
         batch flags (plan/check with --all-protocols): [--jobs N] [--no-cache] \
         [--cache-shards N]  (default: available parallelism)\n\
         check-only flags: dmfstream check <ratio|--all-protocols> \
         [--deep] [--deny warn|error] [--report PATH] [--json PATH] \
         [--explain CODE]; --deep replays every realized pass through the \
         droplet-lineage dataflow analysis (FLOW/FEAS rules), --deny warn \
         also fails on warnings, --report writes JSONL, --json a single \
         findings document, --explain prints a rule's long-form doc; \
         exit 0 clean, 1 diagnostics at/above the deny level, \
         2 usage/IO errors\n\
         profile flags: dmfstream profile <ratio> [--folded PATH] [--chrome PATH] \
         plans under the tracer and prints the span-tree profile; --folded \
         writes flamegraph.pl folded stacks, --chrome a Chrome/Perfetto trace\n\
         serve flags: [--addr HOST:PORT | --port P] [--workers N] \
         [--queue-depth N] [--cache-capacity N] [--cache-shards N] \
         [--deadline-ms MS] [--slow-ms MS]\n\
         request flags: --connect HOST:PORT [--op plan|stats|ping|shutdown] \
         [--deadline-ms MS] [--trace] plus the plan flags above"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1).peekable();
    let command = argv.next().ok_or("missing command")?;
    let allowed = valid_flags(&command).ok_or(format!(
        "unknown command {command:?} (expected plan, gantt, simulate, fault, check, profile, \
         serve or request)"
    ))?;
    let ratio = match argv.peek() {
        Some(text) if !text.starts_with("--") => {
            let text = argv.next().ok_or("missing target ratio")?;
            // Only the *shape* is parsed here; whether the components form
            // a reachable CF vector is the feasibility pre-pass's job, so
            // it can answer with FEAS rule codes instead of a parse error.
            let parts: Vec<u64> = text
                .split(':')
                .map(|p| p.trim().parse::<u64>().map_err(|e| format!("bad ratio {text:?}: {e}")))
                .collect::<Result<_, _>>()?;
            Some(parts)
        }
        _ => None,
    };
    let mut all_protocols = false;
    let mut report: Option<PathBuf> = None;
    let mut demand = 32u64;
    let mut config = EngineConfig::default();
    let mut fault = FaultConfig::default();
    let mut policy = RecoveryPolicy::default();
    let mut backend: Option<BackendKind> = None;
    let mut trace = false;
    let mut metrics: Option<PathBuf> = None;
    let mut jobs: Option<NonZeroUsize> = None;
    let mut no_cache = false;
    let mut cache_shards: Option<NonZeroUsize> = None;
    let mut serve = ServeConfig::default();
    let mut deadline_ms: Option<u64> = None;
    let mut connect: Option<String> = None;
    let mut op = String::from("plan");
    let mut folded: Option<PathBuf> = None;
    let mut chrome: Option<PathBuf> = None;
    let mut deep = false;
    let mut deny = dmfstream::check::Severity::Error;
    let mut explain: Option<String> = None;
    let mut json: Option<PathBuf> = None;
    let mut list_algorithms = false;
    let mut list_schedulers = false;
    while let Some(flag) = argv.next() {
        if !allowed.contains(&flag.as_str()) {
            return Err(format!(
                "unknown flag {flag:?} for {command:?}; valid flags: {}",
                allowed.join(", ")
            ));
        }
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--trace" => trace = true,
            "--all-protocols" => all_protocols = true,
            "--report" => report = Some(PathBuf::from(value()?)),
            "--seed" => {
                fault = fault.with_seed(value()?.parse().map_err(|e| format!("bad seed: {e}"))?)
            }
            "--fault-rate" => {
                fault = fault
                    .with_fault_rate(value()?.parse().map_err(|e| format!("bad fault rate: {e}"))?)
            }
            "--sensor-period" => {
                fault = fault.with_sensor_period(
                    value()?.parse().map_err(|e| format!("bad sensor period: {e}"))?,
                )
            }
            "--max-replans" => {
                policy = policy.with_max_replans(
                    value()?.parse().map_err(|e| format!("bad replan budget: {e}"))?,
                )
            }
            "--backend" => {
                backend = Some(value()?.parse().map_err(|e| format!("bad backend: {e}"))?)
            }
            "--metrics" => metrics = Some(PathBuf::from(value()?)),
            "--jobs" => {
                let raw = value()?;
                jobs = Some(raw.parse::<NonZeroUsize>().map_err(|_| {
                    format!("--jobs must be a positive integer (worker threads), got {raw:?}")
                })?)
            }
            "--no-cache" => no_cache = true,
            "--cache-shards" => {
                let raw = value()?;
                let shards = raw.parse::<NonZeroUsize>().map_err(|_| {
                    format!("--cache-shards must be a positive integer (cache shards), got {raw:?}")
                })?;
                cache_shards = Some(shards);
                serve.cache_shards = shards.get();
            }
            "--addr" => serve.addr = value()?,
            "--port" => {
                let port: u16 = value()?.parse().map_err(|e| format!("bad port: {e}"))?;
                serve.addr = format!("127.0.0.1:{port}");
            }
            "--workers" => {
                serve.workers = value()?.parse().map_err(|e| format!("bad workers: {e}"))?
            }
            "--queue-depth" => {
                serve.queue_depth = value()?.parse().map_err(|e| format!("bad queue depth: {e}"))?
            }
            "--cache-capacity" => {
                serve.cache_capacity =
                    value()?.parse().map_err(|e| format!("bad cache capacity: {e}"))?
            }
            "--deadline-ms" => {
                let ms: u64 = value()?.parse().map_err(|e| format!("bad deadline: {e}"))?;
                serve.default_deadline_ms = ms;
                deadline_ms = Some(ms);
            }
            "--slow-ms" => {
                serve.slow_ms =
                    Some(value()?.parse().map_err(|e| format!("bad slow threshold: {e}"))?)
            }
            "--folded" => folded = Some(PathBuf::from(value()?)),
            "--chrome" => chrome = Some(PathBuf::from(value()?)),
            "--deep" => deep = true,
            "--deny" => {
                deny = match value()?.to_lowercase().as_str() {
                    "warn" | "warning" => dmfstream::check::Severity::Warning,
                    "error" => dmfstream::check::Severity::Error,
                    other => return Err(format!("--deny expects warn or error, got {other:?}")),
                }
            }
            "--explain" => explain = Some(value()?),
            "--json" => json = Some(PathBuf::from(value()?)),
            "--connect" => connect = Some(value()?),
            "--op" => op = value()?,
            "--demand" => demand = value()?.parse().map_err(|e| format!("bad demand: {e}"))?,
            "--mixers" => {
                config =
                    config.with_mixers(value()?.parse().map_err(|e| format!("bad mixers: {e}"))?)
            }
            "--storage" => {
                config = config
                    .with_storage_limit(value()?.parse().map_err(|e| format!("bad storage: {e}"))?)
            }
            "--algorithm" | "--algo" => {
                let name = value()?;
                let id = MixingAlgorithmRegistry::resolve(&name).map_err(|e| {
                    format!("{e}; run `dmfstream plan --list-algorithms` for descriptions")
                })?;
                config = config.with_algorithm(id);
            }
            "--scheduler" => {
                let name = value()?;
                let id = SchedulerRegistry::resolve(&name).map_err(|e| {
                    format!("{e}; run `dmfstream plan --list-schedulers` for descriptions")
                })?;
                config = config.with_scheduler(id);
            }
            "--list-algorithms" => list_algorithms = true,
            "--list-schedulers" => list_schedulers = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if metrics.is_none() && std::env::var_os("DMF_OBS").is_some_and(|v| v != "0") {
        metrics = Some(PathBuf::from("results/obs/dmfstream.jsonl"));
    }
    Ok(Args {
        command,
        ratio,
        all_protocols,
        demand,
        config,
        fault,
        policy,
        backend,
        trace,
        metrics,
        report,
        jobs,
        no_cache,
        cache_shards,
        serve,
        deadline_ms,
        connect,
        op,
        folded,
        chrome,
        deep,
        deny,
        explain,
        json,
        list_algorithms,
        list_schedulers,
    })
}

/// Prints the registered mixing algorithms and/or schedulers, one per
/// line with the one-line registry description — the output behind
/// `dmfstream plan --list-algorithms` / `--list-schedulers`.
fn print_registries(algorithms: bool, schedulers: bool) {
    if algorithms {
        println!("mixing algorithms:");
        for entry in MixingAlgorithmRegistry::entries() {
            let aliases = if entry.aliases.is_empty() {
                String::new()
            } else {
                format!(" (aliases: {})", entry.aliases.join(", "))
            };
            println!(
                "  {:<8} {:<6} {}{}",
                entry.id.key(),
                entry.id.label(),
                entry.description,
                aliases
            );
        }
    }
    if schedulers {
        println!("schedulers:");
        for entry in SchedulerRegistry::entries() {
            println!("  {:<8} {:<6} {}", entry.id.key(), entry.id.label(), entry.description);
        }
    }
}

/// Resolves the positional ratio parts into a [`TargetRatio`], gated by
/// the mixability pre-pass: an infeasible request prints its FEAS
/// diagnostics and exits 1 before any planning starts.
fn resolve_ratio(parts: &[u64], demand: u64) -> Result<TargetRatio, ExitCode> {
    let feas = dmfstream::check::check_feasibility(parts, demand);
    if !feas.is_empty() {
        eprintln!("error: infeasible request (no plan can exist):");
        eprintln!("{}", feas.table());
        return Err(ExitCode::FAILURE);
    }
    TargetRatio::new(parts.to_vec()).map_err(|e| {
        eprintln!("error: bad ratio: {e}");
        ExitCode::FAILURE
    })
}

/// The ratio text sent over the wire by `dmfstream request` — the raw
/// components, unvalidated: feasibility is deliberately left to the
/// server so its typed `infeasible` rejection is reachable from the CLI.
fn ratio_text(parts: &[u64]) -> String {
    let rendered: Vec<String> = parts.iter().map(u64::to_string).collect();
    rendered.join(":")
}

/// Batch-planner options shared by `plan --all-protocols` and `check`:
/// explicit `--jobs` if given, and a fresh shared cache unless
/// `--no-cache` (sharded per `--cache-shards`, defaulting to the
/// machine's available parallelism).
fn batch_options(args: &Args) -> BatchOptions {
    let mut options = BatchOptions::new();
    if let Some(jobs) = args.jobs {
        options = options.with_jobs(jobs);
    }
    if !args.no_cache {
        let shards = args.cache_shards.map_or_else(default_shard_count, NonZeroUsize::get);
        options = options.with_cache(PlanCache::shared_with_capacity_and_shards(
            DEFAULT_PLAN_CACHE_CAPACITY,
            shards,
        ));
    }
    options
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if args.metrics.is_some() {
        obs::global().set_enabled(true);
    }
    let code = run(&args);
    if let Some(path) = &args.metrics {
        match obs::global().export_jsonl_path(path) {
            Ok(()) => eprintln!("metrics written to {}", path.display()),
            Err(e) => eprintln!("error: cannot write metrics to {}: {e}", path.display()),
        }
        println!("\n{}", obs::MetricsReport::from_recorder(obs::global()));
    }
    code
}

fn run(args: &Args) -> ExitCode {
    if args.list_algorithms || args.list_schedulers {
        print_registries(args.list_algorithms, args.list_schedulers);
        return ExitCode::SUCCESS;
    }
    if args.command == "serve" {
        return run_serve(args);
    }
    if args.command == "request" {
        return run_request(args);
    }
    if args.command == "check" {
        return run_check(args);
    }
    if args.command == "profile" {
        return run_profile(args);
    }
    if args.command == "plan" && args.all_protocols {
        return run_plan_all(args);
    }
    let Some(parts) = &args.ratio else {
        eprintln!("error: missing target ratio");
        return usage();
    };
    let ratio = match resolve_ratio(parts, args.demand) {
        Ok(ratio) => ratio,
        Err(code) => return code,
    };
    let ratio = &ratio;
    if args.command == "fault" {
        return run_fault(args, ratio);
    }
    let engine = StreamingEngine::new(args.config);
    let plan = match engine.plan(ratio, args.demand) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match args.command.as_str() {
        "plan" => {
            println!("{plan}");
            println!("I[] = {:?}", plan.inputs);
            for (i, pass) in plan.passes.iter().enumerate() {
                println!(
                    "pass {}: D'={} Tc={} q={} Tms={}",
                    i + 1,
                    pass.demand,
                    pass.cycles(),
                    pass.storage_units(),
                    pass.forest.node_count()
                );
            }
            if let Some(backend) = args.backend {
                match backend_pins(backend, ratio, plan.mixers, plan.storage_peak.max(1)) {
                    Ok(line) => println!("{line}"),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "gantt" => {
            println!("{plan}");
            for (i, pass) in plan.passes.iter().enumerate() {
                println!("\npass {}:", i + 1);
                println!("{}", pass.schedule.gantt(&pass.forest));
            }
            ExitCode::SUCCESS
        }
        "simulate" => {
            let chip =
                match streaming_chip(ratio.fluid_count(), plan.mixers, plan.storage_peak.max(1)) {
                    Ok(chip) => chip,
                    Err(e) => {
                        eprintln!("error: cannot size a chip: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            println!("{}", chip.render());
            for (i, pass) in plan.passes.iter().enumerate() {
                let program = match realize_pass(pass, &chip) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("error: pass {} does not fit the chip: {e}", i + 1);
                        return ExitCode::FAILURE;
                    }
                };
                let simulator = Simulator::new(&chip);
                let outcome = if args.trace {
                    simulator.run_traced(&program).map(|(report, trace)| {
                        println!("{}", trace.render());
                        report
                    })
                } else {
                    simulator.run(&program)
                };
                match outcome {
                    Ok(report) => {
                        println!("pass {}: {report}", i + 1);
                        if let Some((cell, n)) = report.hottest_electrode() {
                            println!("  hottest electrode: {cell} with {n} actuations");
                        }
                    }
                    Err(e) => {
                        eprintln!("error: simulation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Sizes the plan's chip, wires it with `backend` and formats the
/// `backend:` summary line `plan` prints when `--backend` is given.
fn backend_pins(
    backend: BackendKind,
    ratio: &TargetRatio,
    mixers: usize,
    storage: usize,
) -> Result<String, String> {
    let chip = streaming_chip(ratio.fluid_count(), mixers, storage)
        .map_err(|e| format!("cannot size a chip: {e}"))?;
    let pins = backend.assign(&chip).map_err(|e| format!("backend {backend}: {e}"))?;
    Ok(format!("backend: {backend} pins={} (direct {})", pins.pin_count(), pins.electrode_count()))
}

/// `dmfstream plan --all-protocols`: plans every Table 2 protocol in one
/// [`plan_batch`] call (parallel workers, shared plan cache) and prints each
/// plan in protocol order — output is identical for every `--jobs` value.
fn run_plan_all(args: &Args) -> ExitCode {
    let protocols = dmfstream::workloads::protocols::table2_examples();
    let requests: Vec<PlanRequest> = protocols
        .iter()
        .map(|p| PlanRequest::new(p.ratio.clone(), args.demand).with_config(args.config))
        .collect();
    let results = plan_batch(&requests, &batch_options(args));
    let mut failed = false;
    for (protocol, outcome) in protocols.iter().zip(&results) {
        println!("== {} ({}) ==", protocol.id, protocol.name);
        match outcome {
            Ok(plan) => {
                println!("{plan}");
                println!("I[] = {:?}", plan.inputs);
                if let Some(backend) = args.backend {
                    match backend_pins(
                        backend,
                        &protocol.ratio,
                        plan.mixers,
                        plan.storage_peak.max(1),
                    ) {
                        Ok(line) => println!("{line}"),
                        Err(e) => {
                            eprintln!("error: {}: {e}", protocol.id);
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {}: planning failed: {e}", protocol.id);
                failed = true;
            }
        }
        println!();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `dmfstream check`: runs the mixability pre-pass over each selected
/// target, plans the feasible ones, then runs the independent static
/// verifier over every synthesis artifact — the plan's forests, schedules
/// and storage claims, the streaming chip layout the plan would run on,
/// and a concurrently routed dispense wave across that chip. `--deep`
/// additionally realizes every pass and replays it through the
/// droplet-lineage dataflow analysis (FLOW001–FLOW003). Exit codes:
/// 0 clean, 1 diagnostics at/above the `--deny` level (or planning
/// failures), 2 usage/IO errors.
fn run_check(args: &Args) -> ExitCode {
    use dmfstream::check::{
        check_feasibility, check_pins, check_placement, check_program_flow, check_program_pins,
        check_routes, check_routes_pinned, recount_forest, CheckReport, FlowExpectation, RuleCode,
    };
    use dmfstream::route::{route_concurrent, route_concurrent_pinned, Grid, RouteRequest};

    if let Some(text) = &args.explain {
        return match RuleCode::parse(text) {
            Some(code) => {
                println!("{code} — {}\n\n{}", code.summary(), code.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown rule code {text:?}");
                usage()
            }
        };
    }
    let targets: Vec<(String, Vec<u64>)> = if args.all_protocols {
        dmfstream::workloads::protocols::table2_examples()
            .into_iter()
            .map(|p| (format!("{} ({})", p.id, p.name), p.ratio.parts().to_vec()))
            .collect()
    } else if let Some(parts) = &args.ratio {
        vec![(ratio_text(parts), parts.clone())]
    } else {
        eprintln!("error: check needs a target ratio or --all-protocols");
        return usage();
    };
    // Feasible targets are planned up front by the batch planner — parallel
    // workers plus a shared plan cache — while the chip/route checking below
    // stays a serial walk so the summary prints in target order. Infeasible
    // targets never reach the planner; their FEAS diagnostics fold into the
    // per-target report instead.
    let ratios: Vec<Option<TargetRatio>> = targets
        .iter()
        .map(|(_, parts)| {
            check_feasibility(parts, args.demand)
                .is_empty()
                .then(|| TargetRatio::new(parts.clone()).ok())
                .flatten()
        })
        .collect();
    let requests: Vec<PlanRequest> = ratios
        .iter()
        .flatten()
        .map(|ratio| PlanRequest::new(ratio.clone(), args.demand).with_config(args.config))
        .collect();
    let plans = plan_batch(&requests, &batch_options(args));
    let mut plans = plans.iter();
    let mut summary = obs::Table::new(["target", "artifacts", "errors", "warnings", "verdict"]);
    let mut combined = CheckReport::new();
    let mut failed = false;
    let mut io_error = false;
    for ((label, parts), ratio) in targets.iter().zip(&ratios) {
        // The feasibility pre-pass is itself a checked artifact: its
        // findings appear in the report like any other rule's.
        let mut report = check_feasibility(parts, args.demand);
        let mut artifacts = 1usize;
        let outcome = match ratio {
            Some(_) => plans.next(),
            None => None,
        };
        match (ratio, outcome) {
            (None, _) | (_, None) => {}
            (Some(ratio), Some(Ok(plan))) => {
                artifacts += plan.passes.len() + 1; // per-pass artifacts + aggregates
                report.merge(plan.static_check());
                match streaming_chip(ratio.fluid_count(), plan.mixers, plan.storage_peak.max(1)) {
                    Ok(chip) => {
                        artifacts += 1;
                        report.merge(check_placement(&chip));
                        // With --backend, wire the chip and audit the
                        // assignment itself (PIN001/PIN002), the routes
                        // below (PIN003) and every realized pass (PIN004).
                        let pins = match args.backend {
                            Some(backend) => match backend.assign(&chip) {
                                Ok(pins) => {
                                    artifacts += 1;
                                    report.merge(check_pins(&chip, &pins));
                                    Some(pins)
                                }
                                Err(e) => {
                                    eprintln!("error: {label}: backend cannot wire the chip: {e}");
                                    failed = true;
                                    None
                                }
                            },
                            None => None,
                        };
                        // Route a dispense wave: one droplet per reservoir /
                        // storage-cell pair, across the mixer band.
                        let open: Vec<_> =
                            chip.reservoirs().chain(chip.storage_cells()).map(|m| m.id()).collect();
                        let grid = Grid::from_spec(&chip, &open);
                        let requests: Vec<RouteRequest> = chip
                            .reservoirs()
                            .zip(chip.storage_cells())
                            .map(|(r, s)| RouteRequest { from: r.port(), to: s.port() })
                            .collect();
                        if !requests.is_empty() {
                            artifacts += 1;
                            match &pins {
                                // A shared-pin chip transports serially (the
                                // port lattice aliases with any useful pin
                                // pitch, so concurrent lanes ghost each
                                // other's targets) — route the wave one
                                // droplet at a time, mirroring the
                                // simulator's serialized transport.
                                Some(pins) => {
                                    for req in &requests {
                                        let one = std::slice::from_ref(req);
                                        match route_concurrent_pinned(&grid, one, pins) {
                                            Ok(paths) => report.merge(check_routes_pinned(
                                                &grid, one, &paths, pins,
                                            )),
                                            Err(e) => {
                                                eprintln!(
                                                    "error: {label}: pinned dispense hop \
                                                     unroutable: {e}"
                                                );
                                                failed = true;
                                            }
                                        }
                                    }
                                }
                                None => match route_concurrent(&grid, &requests) {
                                    Ok(paths) => {
                                        report.merge(check_routes(&grid, &requests, &paths))
                                    }
                                    Err(e) => {
                                        eprintln!("error: {label}: dispense wave unroutable: {e}");
                                        failed = true;
                                    }
                                },
                            }
                        }
                        // --deep and --backend both replay realized
                        // passes; realize each pass once and feed every
                        // interested analysis.
                        if args.deep || pins.is_some() {
                            for (i, pass) in plan.passes.iter().enumerate() {
                                let program = match realize_pass(pass, &chip) {
                                    Ok(program) => program,
                                    Err(e) => {
                                        eprintln!(
                                            "error: {label}: pass {} does not fit the chip: {e}",
                                            i + 1
                                        );
                                        failed = true;
                                        continue;
                                    }
                                };
                                artifacts += 1;
                                if let Some(pins) = &pins {
                                    report.merge(check_program_pins(&chip, pins, &program));
                                }
                                if args.deep {
                                    // The expected ledger is re-derived
                                    // from the pass's raw forest, not from
                                    // engine-reported totals.
                                    let counts = recount_forest(&pass.forest);
                                    let expect = FlowExpectation {
                                        dispensed: counts.input_total,
                                        emitted: 2 * counts.trees as u64,
                                        discarded: counts.waste,
                                    };
                                    report.merge(check_program_flow(
                                        &chip,
                                        &program,
                                        Some(&expect),
                                    ));
                                }
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("error: {label}: cannot size a chip: {e}");
                        failed = true;
                    }
                }
            }
            (Some(_), Some(Err(e))) => {
                eprintln!("error: {label}: planning failed: {e}");
                failed = true;
            }
        }
        // Severity gating: --deny error (the default) fails on errors
        // only; --deny warn also fails on warnings.
        let denied = match args.deny {
            dmfstream::check::Severity::Warning => report.len(),
            dmfstream::check::Severity::Error => report.error_count(),
        };
        let verdict = if denied == 0 { "clean" } else { "FAIL" };
        summary.row([
            label.clone(),
            artifacts.to_string(),
            report.error_count().to_string(),
            report.warning_count().to_string(),
            verdict.to_string(),
        ]);
        if denied > 0 {
            failed = true;
        }
        combined.merge(report);
    }
    println!("{summary}");
    if !combined.is_empty() {
        println!("\n{}", combined.table());
    }
    if let Some(path) = &args.report {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(path, combined.to_jsonl()) {
            Ok(()) => eprintln!("diagnostics written to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write diagnostics to {}: {e}", path.display());
                io_error = true;
            }
        }
    }
    if let Some(path) = &args.json {
        if !write_findings_json(path, &combined) {
            io_error = true;
        }
    }
    if io_error {
        // Usage and IO failures are distinguishable from findings.
        ExitCode::from(2)
    } else if failed {
        ExitCode::FAILURE
    } else {
        println!("check: {} target(s), {} diagnostics — all clean", targets.len(), combined.len());
        ExitCode::SUCCESS
    }
}

/// Writes the combined findings as one machine-readable JSON document and
/// parses it back through [`obs::json`] before reporting success — the
/// `findings json parse OK` line means the file really is loadable.
fn write_findings_json(path: &PathBuf, combined: &dmfstream::check::CheckReport) -> bool {
    let mut doc = format!(
        "{{\"version\":1,\"errors\":{},\"warnings\":{},\"findings\":[",
        combined.error_count(),
        combined.warning_count()
    );
    for (i, diagnostic) in combined.diagnostics().iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&diagnostic.to_json());
    }
    doc.push_str("]}");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("error: cannot write findings to {}: {e}", path.display());
        return false;
    }
    match obs::json::parse(&doc) {
        Ok(v) => {
            let findings = match v.get("findings") {
                Some(obs::json::Json::Arr(findings)) => findings.len(),
                _ => 0,
            };
            eprintln!("findings written to {}", path.display());
            println!("findings json parse OK: {findings} findings");
            true
        }
        Err(e) => {
            eprintln!("error: findings json does not parse back: {e}");
            false
        }
    }
}

/// `dmfstream profile`: plan one target with the tracer on and print the
/// span-tree profile (per-span call counts, total and self time).
/// `--folded` additionally writes flamegraph.pl-style folded stacks and
/// `--chrome` a Chrome trace-event JSON loadable in Perfetto or
/// `chrome://tracing`; the Chrome file is parsed back through
/// [`obs::json`] before the command reports success, so a non-zero exit
/// means the trace really is loadable.
fn run_profile(args: &Args) -> ExitCode {
    let Some(parts) = &args.ratio else {
        eprintln!("error: profile needs a target ratio");
        return usage();
    };
    let ratio = match resolve_ratio(parts, args.demand) {
        Ok(ratio) => ratio,
        Err(code) => return code,
    };
    let ratio = &ratio;
    let recorder = obs::global();
    recorder.reset();
    recorder.set_enabled(true);
    let plan = {
        let _root = obs::span!("dmfstream_profile");
        match StreamingEngine::new(args.config).plan(ratio, args.demand) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!("{plan}");
    let snapshot = recorder.snapshot();
    let report = obs::ProfileReport::from_snapshot(&snapshot);
    println!("\n{report}");
    let mut failed = false;
    let mut write = |path: &PathBuf, payload: &str, what: &str| {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(path, payload) {
            Ok(()) => println!("{what} written to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {what} to {}: {e}", path.display());
                failed = true;
            }
        }
    };
    if let Some(path) = &args.folded {
        write(path, &report.folded(), "folded stacks");
    }
    if let Some(path) = &args.chrome {
        let trace = obs::chrome_trace(&snapshot);
        write(path, &trace, "chrome trace");
        match obs::json::parse(&trace) {
            Ok(v) => {
                let events = match v.get("traceEvents") {
                    Some(obs::json::Json::Arr(events)) => events.len(),
                    _ => 0,
                };
                println!("chrome trace parse OK: {events} events");
            }
            Err(e) => {
                eprintln!("error: chrome trace does not parse back: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `dmfstream serve`: bind the planning service, announce the address
/// (`--port 0` picks a free port; scripts parse the `listening on` line)
/// and block until a client sends `{"op":"shutdown"}`.
fn run_serve(args: &Args) -> ExitCode {
    use std::io::Write as _;
    let server = match Server::bind(args.serve.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.serve.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            println!("listening on {addr}");
            // The line must reach a piping consumer before we block.
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            eprintln!("serve: drained and shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the protocol line for `dmfstream request` from the same flags
/// `plan` takes; config members are only included when they differ from
/// the engine default, so the server plans exactly what `dmfstream plan`
/// would with the same flags.
fn request_line(args: &Args) -> Result<String, String> {
    match args.op.as_str() {
        "stats" | "ping" | "shutdown" => Ok(format!("{{\"op\":\"{}\"}}", args.op)),
        "plan" => {
            let parts = args.ratio.as_ref().ok_or("request --op plan needs a target ratio")?;
            let defaults = EngineConfig::default();
            let mut members = vec![
                format!("\"op\":\"plan\""),
                format!("\"ratio\":\"{}\"", ratio_text(parts)),
                format!("\"demand\":{}", args.demand),
            ];
            if args.config.algorithm != defaults.algorithm {
                members.push(format!("\"algorithm\":\"{}\"", args.config.algorithm.key()));
            }
            if args.config.scheduler != defaults.scheduler {
                members.push(format!("\"scheduler\":\"{}\"", args.config.scheduler.key()));
            }
            if let dmfstream::engine::MixerBudget::Fixed(mixers) = args.config.mixers {
                members.push(format!("\"mixers\":{mixers}"));
            }
            if let Some(storage) = args.config.storage_limit {
                members.push(format!("\"storage\":{storage}"));
            }
            if let Some(ms) = args.deadline_ms {
                members.push(format!("\"deadline_ms\":{ms}"));
            }
            if args.trace {
                members.push("\"trace\":true".to_owned());
            }
            Ok(format!("{{{}}}", members.join(",")))
        }
        other => Err(format!("unknown --op {other:?} (expected plan, stats, ping or shutdown)")),
    }
}

/// `dmfstream request`: one-shot client — send one line, print the raw
/// JSON response, exit non-zero on an `"ok":false` answer.
fn run_request(args: &Args) -> ExitCode {
    let Some(connect) = &args.connect else {
        eprintln!("error: request needs --connect HOST:PORT");
        return usage();
    };
    let line = match request_line(args) {
        Ok(line) => line,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let response = Client::connect(connect).and_then(|mut client| client.request(&line));
    match response {
        Ok(response) => {
            println!("{response}");
            if response.starts_with("{\"ok\":true") {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: request to {connect} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_fault(args: &Args, ratio: &TargetRatio) -> ExitCode {
    let campaign = Campaign {
        engine: args.config,
        faults: args.fault,
        policy: args.policy,
        backend: args.backend.unwrap_or_default(),
        chip: None,
    };
    let mut wear = WearTracker::new();
    match run_campaign(ratio, args.demand, &campaign, PlanCache::shared(), &mut wear) {
        Ok(outcome) => {
            if let Some(backend) = args.backend {
                println!("backend: {backend}");
            }
            println!("{outcome}");
            if args.trace {
                for (i, trace) in outcome.traces.iter().enumerate() {
                    println!("\nrun {}:", i + 1);
                    println!("{}", trace.render());
                }
            }
            if !outcome.dead_cells.is_empty() {
                let rendered: Vec<String> =
                    outcome.dead_cells.iter().map(|c| c.to_string()).collect();
                println!("diagnosed dead electrodes: {}", rendered.join(" "));
            }
            if outcome.demand_met() {
                ExitCode::SUCCESS
            } else {
                eprintln!("error: delivered {}/{} targets", outcome.delivered(), outcome.demand);
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
