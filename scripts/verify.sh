#!/usr/bin/env bash
# Tier-1 verification: build, tests, formatting and lints — fully offline.
# The workspace has no external dependencies, so no network is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> fault_sweep smoke (fixed seed, all five protocols must meet demand)"
cargo run --release -q -p dmf-bench --bin fault_sweep -- --seed 42 --fault-rate 0.05 --trials 1 >/dev/null

echo "==> dmfstream check --all-protocols (static verifier, exit 1 on any error)"
cargo run --release -q --bin dmfstream -- check --all-protocols

echo "==> dmfstream check --all-protocols --backend row-column (PIN/* rules on the paper oracles)"
cargo run --release -q --bin dmfstream -- check --all-protocols --backend row-column

echo "==> dmfstream check --all-protocols --deep (FLOW/FEAS dataflow analyses, strictest gate)"
cargo run --release -q --bin dmfstream -- check --all-protocols --deep --deny warn \
  --json /tmp/dmf_check_findings.json > /tmp/dmf_check_deep.txt
grep -q '^findings json parse OK: ' /tmp/dmf_check_deep.txt || {
  echo "deep check: --json round-trip did not report back"
  exit 1
}
grep -q '"version":1' /tmp/dmf_check_findings.json || {
  echo "deep check: findings JSON missing version header"
  exit 1
}

echo "==> infeasible request gate (FEAS001 must reject 1:2 pre-planning, exit 1)"
if infeasible_out=$(target/release/dmfstream check 1:2 --demand 4 2>&1); then
  echo "infeasible gate: check 1:2 exited 0; output: $infeasible_out"
  exit 1
fi
printf '%s' "$infeasible_out" | grep -q 'FEAS001' || {
  echo "infeasible gate: diagnostics did not cite FEAS001: $infeasible_out"
  exit 1
}
if target/release/dmfstream plan 1:2 --demand 4 >/dev/null 2>&1; then
  echo "infeasible gate: plan 1:2 exited 0"
  exit 1
fi

echo "==> bench_backends smoke (demand met under every backend; direct yield bounds pinned yields; wear-aware peak < wear-blind)"
cargo run --release -q -p dmf-bench --bin bench_backends -- /tmp/dmf_bench_backends.json >/dev/null
[ -s /tmp/dmf_bench_backends.json ] || { echo "bench_backends: no JSON written"; exit 1; }

echo "==> batch determinism smoke (check --jobs 4 output must match --jobs 1)"
cargo run --release -q --bin dmfstream -- check --all-protocols --jobs 1 > /tmp/dmf_check_j1.txt
cargo run --release -q --bin dmfstream -- check --all-protocols --jobs 4 > /tmp/dmf_check_j4.txt
diff /tmp/dmf_check_j1.txt /tmp/dmf_check_j4.txt

echo "==> registry gate (--list-algorithms names the four paper baselines; unknown --algo exits 2 typed)"
algo_list=$(target/release/dmfstream plan --list-algorithms)
for key in mm rma mtcs rsm; do
  printf '%s\n' "$algo_list" | grep -Eq "^  $key " || {
    echo "registry gate: --list-algorithms is missing '$key': $algo_list"
    exit 1
  }
done
target/release/dmfstream plan --list-schedulers | grep -q '^  srs ' || {
  echo "registry gate: --list-schedulers is missing srs"
  exit 1
}
set +e
unknown_out=$(target/release/dmfstream plan 2:1:1:1:1:1:9 --demand 4 --algo nonesuch 2>&1)
unknown_code=$?
set -e
[ "$unknown_code" -eq 2 ] || {
  echo "registry gate: unknown --algo exited $unknown_code, expected 2"
  exit 1
}
printf '%s' "$unknown_out" | grep -q 'unknown mixing algorithm "nonesuch" (registered: mm, rma, mtcs, rsm)' || {
  echo "registry gate: unknown --algo error was not typed: $unknown_out"
  exit 1
}
printf '%s' "$unknown_out" | grep -q 'list-algorithms' || {
  echo "registry gate: unknown --algo error did not suggest --list-algorithms: $unknown_out"
  exit 1
}

echo "==> bench_plan (plan cache micro-benchmark; warm hit must be >= 10x faster, no warm-cache regression vs results/BENCH_plan.json)"
cargo run --release -q -p dmf-bench --bin bench_plan -- /tmp/dmf_bench_plan.json >/dev/null
recorded_speedup=$(sed -n 's/.*"warm_speedup": \([0-9.]*\).*/\1/p' results/BENCH_plan.json | head -1)
fresh_speedup=$(sed -n 's/.*"warm_speedup": \([0-9.]*\).*/\1/p' /tmp/dmf_bench_plan.json | head -1)
[ -n "$recorded_speedup" ] && [ -n "$fresh_speedup" ] || {
  echo "bench_plan: could not extract warm_speedup (recorded='$recorded_speedup' fresh='$fresh_speedup')"
  exit 1
}
# Machine-noise tolerance: the fresh warm-cache speedup must stay within
# 2x of the committed baseline (and bench_plan itself enforces >= 10x).
awk -v fresh="$fresh_speedup" -v recorded="$recorded_speedup" \
  'BEGIN { exit !(fresh * 2.0 >= recorded) }' || {
  echo "bench_plan: warm-cache speedup regressed: fresh ${fresh_speedup}x vs recorded ${recorded_speedup}x"
  exit 1
}

echo "==> bench_plan jobs curve (parallel batch gate, scaled to this machine)"
# The committed exhibit must carry the jobs curve, and the fresh run must
# show parallel planning paying off: on >= 4 hardware threads, jobs=4 must
# halve the jobs=1 wall time; on narrower machines (a 2x parallel speedup
# is physically impossible there) jobs=4 must not lose to jobs=1 beyond
# thread-timeslice noise. bench_plan enforces the same bound internally;
# this re-checks the numbers it wrote so the gate survives exhibit edits.
grep -q '"jobs_curve"' results/BENCH_plan.json || {
  echo "bench_plan: committed results/BENCH_plan.json is missing the jobs_curve"
  exit 1
}
batch_requests=$(sed -n 's/.*"requests": \([0-9]*\).*/\1/p' /tmp/dmf_bench_plan.json | head -1)
parallelism=$(sed -n 's/.*"parallelism": \([0-9]*\).*/\1/p' /tmp/dmf_bench_plan.json | head -1)
jobs1_ns=$(sed -n 's/.*"jobs1_wall_ns": \([0-9]*\).*/\1/p' /tmp/dmf_bench_plan.json | head -1)
jobs4_ns=$(sed -n 's/.*"jobs4_wall_ns": \([0-9]*\).*/\1/p' /tmp/dmf_bench_plan.json | head -1)
[ -n "$batch_requests" ] && [ -n "$parallelism" ] && [ -n "$jobs1_ns" ] && [ -n "$jobs4_ns" ] || {
  echo "bench_plan: could not extract the jobs curve from /tmp/dmf_bench_plan.json"
  exit 1
}
[ "$batch_requests" -ge 500 ] || {
  echo "bench_plan: batch has only $batch_requests requests (gate needs >= 500)"
  exit 1
}
if [ "$parallelism" -ge 4 ]; then
  awk -v j1="$jobs1_ns" -v j4="$jobs4_ns" 'BEGIN { exit !(j4 * 2 <= j1) }' || {
    echo "bench_plan: jobs=4 (${jobs4_ns}ns) is not 2x faster than jobs=1 (${jobs1_ns}ns) on $parallelism threads"
    exit 1
  }
else
  awk -v j1="$jobs1_ns" -v j4="$jobs4_ns" 'BEGIN { exit !(j4 <= j1 * 1.15) }' || {
    echo "bench_plan: jobs=4 (${jobs4_ns}ns) regressed past jobs=1 (${jobs1_ns}ns) on a ${parallelism}-thread machine"
    exit 1
  }
fi

echo "==> bench_obs (tracing overhead gate: enabled sweep <= 10% over disabled)"
cargo run --release -q -p dmf-bench --bin bench_obs -- /tmp/dmf_bench_obs.json >/dev/null

echo "==> profile smoke (exporters: folded stacks well-formed, chrome trace parses back)"
profile_out=$(target/release/dmfstream profile 2:1:1:1:1:1:9 --demand 20 \
  --folded /tmp/dmf_profile.folded --chrome /tmp/dmf_profile.trace.json)
printf '%s\n' "$profile_out" | grep -q '^chrome trace parse OK: [1-9][0-9]* events$' || {
  echo "profile smoke: chrome trace did not parse back: $profile_out"
  exit 1
}
[ -s /tmp/dmf_profile.folded ] || { echo "profile smoke: folded output empty"; exit 1; }
grep -Eq '^[A-Za-z0-9_]+(;[A-Za-z0-9_]+)* [0-9]+$' /tmp/dmf_profile.folded || {
  echo "profile smoke: folded stacks malformed"
  exit 1
}
grep -q '^dmfstream_profile;engine_plan' /tmp/dmf_profile.folded || {
  echo "profile smoke: folded stacks missing the engine_plan tree"
  exit 1
}

echo "==> serve smoke (served plan must match dmfstream plan; clean shutdown)"
serve_log=$(mktemp)
target/release/dmfstream serve --port 0 --workers 2 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill -9 "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "^listening on " "$serve_log" && break
  sleep 0.05
done
serve_addr=$(sed -n 's/^listening on //p' "$serve_log" | head -1)
[ -n "$serve_addr" ] || { echo "serve smoke: server never announced its address"; exit 1; }
# No pipe to head here: head closing early races the writer into an EPIPE panic.
plan_full=$(target/release/dmfstream plan 2:1:1:1:1:1:9 --demand 20)
plan_summary=${plan_full%%$'\n'*}
served=$(target/release/dmfstream request 2:1:1:1:1:1:9 --demand 20 --connect "$serve_addr")
served_summary=$(printf '%s' "$served" | sed -n 's/.*"summary":"\([^"]*\)".*/\1/p')
[ "$served_summary" = "$plan_summary" ] || {
  echo "serve smoke: served summary '$served_summary' != plan output '$plan_summary'"
  exit 1
}
stats=$(target/release/dmfstream request --op stats --connect "$serve_addr")
printf '%s' "$stats" | grep -q '"planned":1' || {
  echo "serve smoke: stats did not report the planned request: $stats"
  exit 1
}
# A named algorithm must thread through the protocol to the server's
# engine: the served plan must match the local plan under the same --algo.
plan_rma=$(target/release/dmfstream plan 2:1:1:1:1:1:9 --demand 20 --algo rma)
plan_rma_summary=${plan_rma%%$'\n'*}
served_rma=$(target/release/dmfstream request 2:1:1:1:1:1:9 --demand 20 --algo rma --connect "$serve_addr")
served_rma_summary=$(printf '%s' "$served_rma" | sed -n 's/.*"summary":"\([^"]*\)".*/\1/p')
[ "$served_rma_summary" = "$plan_rma_summary" ] || {
  echo "serve smoke: served --algo rma summary '$served_rma_summary' != plan output '$plan_rma_summary'"
  exit 1
}
# `request` ships raw parts so the server-side feasibility gate answers.
rejected=$(target/release/dmfstream request 1:2 --demand 4 --connect "$serve_addr" || true)
printf '%s' "$rejected" | grep -q '"error":"infeasible"' || {
  echo "serve smoke: 1:2 was not rejected as infeasible: $rejected"
  exit 1
}
printf '%s' "$rejected" | grep -q 'FEAS001' || {
  echo "serve smoke: infeasible rejection did not cite FEAS001: $rejected"
  exit 1
}
stats=$(target/release/dmfstream request --op stats --connect "$serve_addr")
printf '%s' "$stats" | grep -q '"infeasible":1' || {
  echo "serve smoke: stats did not count the infeasible request: $stats"
  exit 1
}
target/release/dmfstream request --op shutdown --connect "$serve_addr" >/dev/null
for _ in $(seq 1 100); do
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
  echo "serve smoke: server did not shut down within 10s"
  exit 1
fi
trap - EXIT
wait "$serve_pid" || { echo "serve smoke: server exited non-zero"; exit 1; }

echo "verify: OK"
