#!/usr/bin/env bash
# Tier-1 verification: build, tests, formatting and lints — fully offline.
# The workspace has no external dependencies, so no network is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> fault_sweep smoke (fixed seed, all five protocols must meet demand)"
cargo run --release -q -p dmf-bench --bin fault_sweep -- --seed 42 --fault-rate 0.05 --trials 1 >/dev/null

echo "==> dmfstream check --all-protocols (static verifier, exit 1 on any error)"
cargo run --release -q --bin dmfstream -- check --all-protocols

echo "==> batch determinism smoke (check --jobs 4 output must match --jobs 1)"
cargo run --release -q --bin dmfstream -- check --all-protocols --jobs 1 > /tmp/dmf_check_j1.txt
cargo run --release -q --bin dmfstream -- check --all-protocols --jobs 4 > /tmp/dmf_check_j4.txt
diff /tmp/dmf_check_j1.txt /tmp/dmf_check_j4.txt

echo "==> bench_plan (plan cache micro-benchmark; warm hit must be >= 10x faster)"
cargo run --release -q -p dmf-bench --bin bench_plan >/dev/null

echo "verify: OK"
