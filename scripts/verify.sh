#!/usr/bin/env bash
# Tier-1 verification: build, tests, formatting and lints — fully offline.
# The workspace has no external dependencies, so no network is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
