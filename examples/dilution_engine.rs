//! The dilution engine: droplet streaming for the two-fluid special case
//! (Roy et al., IET-CDT 2013 — the only prior MDST-capable system, per the
//! paper's Table 1), plus a multi-target dilution gradient.
//!
//! ```bash
//! cargo run --example dilution_engine
//! ```

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::dilution::{dilution_gradient, stream_dilution, DilutionAlgorithm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stream 16 droplets of a 5/16 sample dilution with each algorithm.
    println!("streaming 16 droplets of CF 5/16 on 2 mixers:\n");
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10}",
        "algo", "Tms", "I", "W", "Tc", "I(repeat)", "Tc(repeat)"
    );
    for algorithm in
        [DilutionAlgorithm::BitScan, DilutionAlgorithm::Dmrw, DilutionAlgorithm::MinMix]
    {
        let r = stream_dilution(algorithm, 5, 4, 16, 2)?;
        println!(
            "{:<8} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10}",
            format!("{algorithm:?}"),
            r.mix_splits,
            r.inputs,
            r.waste,
            r.cycles,
            r.repeated_inputs,
            r.repeated_cycles
        );
    }

    // A dilution gradient: one droplet pair per CF, waste shared across
    // targets (the SDMT objective).
    let cfs = [2u64, 4, 6, 8, 10, 12, 14];
    let (graph, report) = dilution_gradient(&cfs, 4)?;
    println!(
        "\ngradient over CFs {:?}/16: Tms={} I={} W={} (separate preparation: I={})",
        cfs, report.mix_splits, report.inputs, report.waste, report.separate_inputs
    );
    println!("gradient graph has {} component trees", graph.tree_count());
    Ok(())
}
