//! Full physical walkthrough of the PCR master-mix engine (paper §5):
//! plan a droplet stream, lower it onto the Fig. 5-style chip, simulate
//! every droplet movement and report electrode actuations.
//!
//! ```bash
//! cargo run --example pcr_master_mix
//! ```

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::chip::presets::pcr_chip;
use dmfstream::engine::{realize_pass, EngineConfig, StreamingEngine};
use dmfstream::ratio::TargetRatio;
use dmfstream::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
    let chip = pcr_chip();
    println!("chip layout:\n{}", chip.render());

    let engine = StreamingEngine::new(EngineConfig::default());
    let plan = engine.plan(&target, 20)?;
    println!("plan: {plan}");

    for (i, pass) in plan.passes.iter().enumerate() {
        let program = realize_pass(pass, &chip)?;
        let report = Simulator::new(&chip).run(&program)?;
        println!("pass {}: {} instructions -> {}", i + 1, program.len(), report);
        assert_eq!(report.storage_peak, pass.storage_units(), "sim agrees with Algorithm 3");
    }
    Ok(())
}
