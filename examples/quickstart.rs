//! Quickstart: stream droplets of the PCR master mix and compare against
//! the repeated-baseline approach.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::engine::{improvement_over_baseline, repeated, EngineConfig, StreamingEngine};
use dmfstream::mixalgo::BaseAlgorithm;
use dmfstream::ratio::TargetRatio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The PCR master mix {10 : 8 : 0.8 : 0.8 : 1 : 1 : 78.4}% approximated
    // at accuracy d = 4 — the paper's running example (2:1:1:1:1:1:9).
    let percents = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];
    let target = TargetRatio::paper_approximate(&percents, 4)?;
    println!("target ratio: {target}  (d = {})", target.accuracy());

    // Plan a stream of 20 target droplets with the default engine
    // (MinMix base tree, SRS scheduling, Mlb mixers).
    let engine = StreamingEngine::new(EngineConfig::default());
    let plan = engine.plan(&target, 20)?;
    println!("\nstreaming plan: {plan}");
    println!("per-fluid inputs I[] = {:?}", plan.inputs);

    // Show the schedule as a Gantt chart (paper Fig. 4).
    let pass = &plan.passes[0];
    println!("\n{}", pass.schedule.gantt(&pass.forest));

    // The naive alternative: rerun the MinMix tree 10 times.
    let baseline = repeated(BaseAlgorithm::MinMix, &target, 20, plan.mixers)?;
    println!(
        "repeated-MM baseline: passes={} Tc={} W={} I={}",
        baseline.passes, baseline.total_cycles, baseline.total_waste, baseline.total_inputs
    );
    let improvement = improvement_over_baseline(&plan, &baseline);
    println!("streaming vs baseline: {improvement}");
    Ok(())
}
