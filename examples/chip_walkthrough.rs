//! Substrate walkthrough: build a custom chip with the placement
//! optimiser, derive its transport-cost matrix, route droplets across it
//! concurrently and export a mixing forest to Graphviz.
//!
//! ```bash
//! cargo run --example chip_walkthrough
//! ```

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::chip::{
    CostMatrix, FlowMatrix, ModuleKind, PlacementConfig, PlacementRequest, Placer,
};
use dmfstream::forest::{build_forest, ReusePolicy};
use dmfstream::mixalgo::{MixingAlgorithm, Rma};
use dmfstream::ratio::TargetRatio;
use dmfstream::route::{route_concurrent, Grid, RouteRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Place a 3-fluid chip, pulling R1 close to M1 by flow weighting.
    let requests = vec![
        PlacementRequest::conventional("M1", ModuleKind::Mixer),
        PlacementRequest::conventional("M2", ModuleKind::Mixer),
        PlacementRequest::conventional("R1", ModuleKind::Reservoir { fluid: 0 }),
        PlacementRequest::conventional("R2", ModuleKind::Reservoir { fluid: 1 }),
        PlacementRequest::conventional("R3", ModuleKind::Reservoir { fluid: 2 }),
        PlacementRequest::conventional("q1", ModuleKind::Storage),
        PlacementRequest::conventional("q2", ModuleKind::Storage),
        PlacementRequest::conventional("W1", ModuleKind::Waste),
        PlacementRequest::conventional("O1", ModuleKind::Output),
    ];
    let mut flows = FlowMatrix::new();
    flows.add(2, 0, 30.0); // R1 -> M1
    flows.add(3, 1, 20.0); // R2 -> M2
    let chip = Placer::new(PlacementConfig { width: 18, height: 12, ..Default::default() })
        .place(&requests, &flows)?;
    println!("optimised layout:\n{}", chip.render());
    println!("transport-cost matrix:\n{}", CostMatrix::from_spec(&chip));

    // 2. Route two droplets concurrently under fluidic constraints
    //    (endpoint modules stay open, everything else is an obstacle).
    let open: Vec<_> = ["R1", "R2", "O1", "W1"]
        .iter()
        .map(|n| chip.module_by_name(n).expect("placed").id())
        .collect();
    let grid = Grid::from_spec(&chip, &open);
    let r1 = chip.module_by_name("R1").expect("placed").port();
    let r2 = chip.module_by_name("R2").expect("placed").port();
    let paths = route_concurrent(
        &grid,
        &[
            RouteRequest { from: r1, to: chip.module_by_name("O1").expect("placed").port() },
            RouteRequest { from: r2, to: chip.module_by_name("W1").expect("placed").port() },
        ],
    );
    match paths {
        Ok(paths) => {
            for (i, p) in paths.iter().enumerate() {
                println!("droplet {i}: {} steps, {} actuations", p.duration(), p.actuations());
            }
        }
        Err(e) => println!("concurrent routing failed on this layout: {e}"),
    }

    // 3. Export an RMA-seeded mixing forest to Graphviz DOT.
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
    let template = Rma.build_template(&target)?;
    let forest = build_forest(&template, &target, 8, ReusePolicy::AcrossTrees)?;
    println!("forest: {} — pipe the DOT below through `dot -Tsvg` to visualise\n", forest.stats());
    println!("{}", forest.to_dot());
    Ok(())
}
