//! Multi-pass streaming under tight on-chip storage budgets — the
//! technique behind the paper's Table 4.
//!
//! A real chip has few storage electrodes. When one pass of the mixing
//! forest would need more than the budget `q'`, the engine finds the
//! largest per-pass demand `D'` that fits and repeats `⌈D/D'⌉` passes.
//!
//! ```bash
//! cargo run --example storage_constrained
//! ```

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmfstream::engine::{EngineConfig, StreamingEngine};
use dmfstream::ratio::TargetRatio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let percents = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];
    println!("PCR master mix, demand D = 32, SRS with Mlb mixers\n");
    println!(
        "{:>3} {:>3} | {:>6} {:>9} {:>8} {:>7}",
        "d", "q'", "passes", "cycles", "waste", "inputs"
    );
    for d in [4u32, 5, 6] {
        let target = TargetRatio::paper_approximate(&percents, d)?;
        for limit in [3usize, 5, 7] {
            let engine = StreamingEngine::new(EngineConfig::default().with_storage_limit(limit));
            match engine.plan(&target, 32) {
                Ok(plan) => println!(
                    "{:>3} {:>3} | {:>6} {:>9} {:>8} {:>7}",
                    d,
                    limit,
                    plan.pass_count(),
                    plan.total_cycles,
                    plan.total_waste,
                    plan.total_inputs
                ),
                Err(e) => println!("{d:>3} {limit:>3} | infeasible: {e}"),
            }
        }
    }
    Ok(())
}
