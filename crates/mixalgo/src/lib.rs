//! Base mixing-tree construction algorithms for DMF sample preparation.
//!
//! The DAC 2014 streaming engine is algorithm-agnostic: any procedure that
//! turns a [`TargetRatio`] into a *base mixing tree* can seed its mixing
//! forest. This crate provides the four algorithms the paper builds on:
//!
//! * [`MinMix`] (`MM`, Thies et al. 2008) — binary-expansion tree; each set
//!   bit `2^j` of component `a_i` becomes a leaf at depth `d - j`, merged
//!   deepest-first. Guaranteed depth `d` and `#leaves - 1` mix-splits.
//! * [`Rma`] (Roy et al. VLSID 2011) — top-down balanced halving of the
//!   ratio vector. Produces bushier trees with more waste droplets, which is
//!   precisely the property that makes it the best forest seed (paper §4).
//! * [`Mtcs`] (Kumar et al. DDECS 2013) — MinMix followed by common-subtree
//!   sharing: content-identical subtrees are built once and their spare
//!   droplet feeds the second parent, turning the tree into a DAG.
//! * [`Rsm`] (Hsieh et al. TCAD 2012) — reagent-saving mixing: common-
//!   subgraph sharing applied to the top-down partition tree.
//!
//! `RMA`, `MTCS` and `RSM` have no public reference implementations; they are
//! reimplemented here from their published descriptions (see `DESIGN.md` §5
//! for the fidelity argument). All four satisfy the contract checked by
//! [`MixGraph::validate`]: leaves are pure reagents, the root realises the
//! target, droplets are conserved.
//!
//! The crate also exposes the two building blocks shared with the
//! mixing-forest constructor:
//!
//! * [`Template`] — a plain binary mix tree with precomputed mixtures;
//! * [`WastePool`] — a multiset of spare droplets keyed by canonical
//!   mixture, with tree-boundary commit semantics;
//! * [`materialize`] / [`rebuild_tree`] — template-to-graph lowering with
//!   optional droplet reuse.
//!
//! # Examples
//!
//! ```
//! use dmf_mixalgo::{MinMix, MixingAlgorithm};
//! use dmf_ratio::TargetRatio;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The PCR master mix at accuracy d = 4 (paper Fig. 1).
//! let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
//! let tree = MinMix.build_graph(&target)?;
//! let stats = tree.stats();
//! assert_eq!(stats.mix_splits, 7);
//! assert_eq!(stats.input_total, 8);
//! assert_eq!(stats.waste, 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capabilities;
mod dilution;
mod error;
mod minmix;
mod mtcs;
mod pool;
mod rebuild;
mod registry;
mod rma;
mod rsm;
mod template;

pub use capabilities::Capabilities;
pub use dilution::dilution_ratio;
pub use error::MixAlgoError;
pub use minmix::MinMix;
pub use mtcs::Mtcs;
pub use pool::WastePool;
pub use rebuild::{materialize, rebuild_tree};
pub use registry::{
    AlgorithmEntry, AlgorithmId, DuplicateAlgorithmError, MixingAlgorithmRegistry,
    UnknownAlgorithmError,
};
pub use rma::Rma;
pub use rsm::Rsm;
pub use template::Template;

use dmf_mixgraph::MixGraph;
use dmf_ratio::TargetRatio;

/// A base mixing-tree construction algorithm.
///
/// Implementations build a [`Template`] realising the target ratio;
/// [`MixingAlgorithm::build_graph`] lowers it to a validated single-tree
/// [`MixGraph`] (for [`Mtcs`]/[`Rsm`] a DAG with shared subgraphs).
pub trait MixingAlgorithm {
    /// Short identifier used in reports ("MM", "RMA", …).
    fn name(&self) -> &'static str;

    /// Capability flags matching the paper's Table 1 taxonomy.
    fn capabilities(&self) -> Capabilities;

    /// Builds the base mixing tree as a [`Template`].
    ///
    /// # Errors
    ///
    /// Returns [`MixAlgoError::PureTarget`] when the target is a single pure
    /// fluid (no mixing required) and propagates ratio arithmetic failures.
    fn build_template(&self, target: &TargetRatio) -> Result<Template, MixAlgoError>;

    /// Whether [`MixingAlgorithm::build_graph`] shares content-identical
    /// subgraphs (droplet reuse *within* the base graph).
    fn shares_subgraphs(&self) -> bool {
        false
    }

    /// Builds and validates the base mixing graph.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MixingAlgorithm::build_template`], plus
    /// structural validation failures (which would indicate an algorithm
    /// bug).
    fn build_graph(&self, target: &TargetRatio) -> Result<MixGraph, MixAlgoError> {
        let _span = dmf_obs::span!("mixalgo_build");
        let template = self.build_template(target)?;
        materialize(&template, target, self.shares_subgraphs())
    }
}

/// Enumeration of the provided base algorithms, for configuration surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseAlgorithm {
    /// [`MinMix`].
    MinMix,
    /// [`Rma`].
    Rma,
    /// [`Mtcs`].
    Mtcs,
    /// [`Rsm`].
    Rsm,
}

impl BaseAlgorithm {
    /// All provided algorithms, in the paper's citation order.
    pub const ALL: [BaseAlgorithm; 4] =
        [BaseAlgorithm::MinMix, BaseAlgorithm::Rma, BaseAlgorithm::Mtcs, BaseAlgorithm::Rsm];

    /// The algorithm object behind the enum tag.
    pub fn algorithm(self) -> &'static dyn MixingAlgorithm {
        match self {
            BaseAlgorithm::MinMix => &MinMix,
            BaseAlgorithm::Rma => &Rma,
            BaseAlgorithm::Mtcs => &Mtcs,
            BaseAlgorithm::Rsm => &Rsm,
        }
    }

    /// Short identifier ("MM", "RMA", "MTCS", "RSM").
    pub fn name(self) -> &'static str {
        self.algorithm().name()
    }
}

impl std::fmt::Display for BaseAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
