use crate::{Capabilities, MixAlgoError, MixingAlgorithm, Template};
use dmf_ratio::{FluidId, TargetRatio};

/// Reagent-saving mixing in the spirit of Hsieh et al. (IEEE TCAD 2012) —
/// the paper's `RSM` baseline, reimplemented from its published description.
///
/// Builds a *balanced* top-down partition tree — every component of the
/// ratio vector is halved at every level, odd leftovers alternating sides —
/// and then shares content-identical subgraphs: the balanced split
/// deliberately creates many repeated sub-mixtures (especially for ratios
/// with several equal components), and each repeat consumes an existing
/// spare droplet instead of fresh reagent. That droplet-reuse is the
/// "reagent-saving" objective of the original algorithm.
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{MixingAlgorithm, Rsm};
/// use dmf_ratio::TargetRatio;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![5, 5, 5, 5, 12])?;
/// let graph = Rsm.build_graph(&target)?;
/// graph.stats().assert_conservation();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rsm;

impl MixingAlgorithm for Rsm {
    fn name(&self) -> &'static str {
        "RSM"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::RSM
    }

    fn build_template(&self, target: &TargetRatio) -> Result<Template, MixAlgoError> {
        if target.active_fluid_count() <= 1 {
            return Err(MixAlgoError::PureTarget);
        }
        build(target.parts().to_vec(), target.accuracy(), target.fluid_count())
    }

    fn shares_subgraphs(&self) -> bool {
        true
    }
}

fn build(
    mut vector: Vec<u64>,
    mut level: u32,
    fluid_count: usize,
) -> Result<Template, MixAlgoError> {
    let sole_active = {
        let mut active = vector.iter().enumerate().filter(|&(_, &v)| v > 0);
        match (active.next(), active.next()) {
            (Some((fluid, _)), None) => Some(fluid),
            _ => None,
        }
    };
    if let Some(fluid) = sole_active {
        return Ok(Template::leaf(FluidId(fluid), fluid_count));
    }
    while level > 0 && vector.iter().all(|v| v % 2 == 0) {
        for v in &mut vector {
            *v /= 2;
        }
        level -= 1;
    }
    debug_assert!(level > 0, "multi-fluid vector implies level > 0");
    let (left, right) = balanced_halve(&vector);
    let lt = build(left, level - 1, fluid_count)?;
    let rt = build(right, level - 1, fluid_count)?;
    Template::mix(lt, rt)
}

/// Halves every component, granting odd leftovers alternately to the left
/// and right half — the duplicate-maximising split that sharing then
/// exploits.
fn balanced_halve(vector: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut left = Vec::with_capacity(vector.len());
    let mut right = Vec::with_capacity(vector.len());
    let mut grant_left = true;
    for &v in vector {
        let mut l = v / 2;
        let mut r = v / 2;
        if v % 2 == 1 {
            if grant_left {
                l += 1;
            } else {
                r += 1;
            }
            grant_left = !grant_left;
        }
        left.push(l);
        right.push(r);
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize;

    #[test]
    fn sharing_saves_reagent_over_the_unshared_partition_tree() {
        for parts in [
            vec![5, 5, 5, 5, 12],
            vec![3, 3, 2],
            vec![26, 21, 2, 2, 3, 3, 199],
            vec![25, 5, 5, 5, 5, 13, 13, 25, 1, 159],
        ] {
            let target = TargetRatio::new(parts.clone()).unwrap();
            let template = Rsm.build_template(&target).unwrap();
            let shared = materialize(&template, &target, true).unwrap().stats();
            let plain = materialize(&template, &target, false).unwrap().stats();
            assert!(shared.input_total <= plain.input_total, "{parts:?}");
            assert!(shared.mix_splits <= plain.mix_splits, "{parts:?}");
            shared.assert_conservation();
        }
    }

    #[test]
    fn symmetric_ratio_shares_strictly() {
        // Four equal components create identical sub-mixtures on both
        // sides of every balanced split.
        let target = TargetRatio::new(vec![5, 5, 5, 5, 12]).unwrap();
        let template = Rsm.build_template(&target).unwrap();
        let shared = materialize(&template, &target, true).unwrap().stats();
        let plain = materialize(&template, &target, false).unwrap().stats();
        assert!(
            shared.input_total < plain.input_total,
            "shared {} vs plain {}",
            shared.input_total,
            plain.input_total
        );
    }

    #[test]
    fn balanced_halve_alternates_odd_grants() {
        let (l, r) = balanced_halve(&[3, 3, 3, 3]);
        assert_eq!(l.iter().sum::<u64>(), 6);
        assert_eq!(r.iter().sum::<u64>(), 6);
        assert_eq!(l, vec![2, 1, 2, 1]);
        assert_eq!(r, vec![1, 2, 1, 2]);
    }

    #[test]
    fn valid_on_all_table2_examples() {
        for parts in [
            vec![26, 21, 2, 2, 3, 3, 199],
            vec![128, 123, 5],
            vec![25, 5, 5, 5, 5, 13, 13, 25, 1, 159],
            vec![9, 17, 26, 9, 195],
            vec![57, 28, 6, 6, 6, 3, 150],
        ] {
            let target = TargetRatio::new(parts).unwrap();
            let graph = Rsm.build_graph(&target).unwrap();
            graph.validate().unwrap();
            graph.stats().assert_conservation();
        }
    }
}
