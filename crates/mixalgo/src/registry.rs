//! Name-keyed registry of mixing algorithms — the open extension point
//! behind the closed [`BaseAlgorithm`] enum.
//!
//! The engine, the CLI, the serve protocol and the benchmark exhibits all
//! select a base algorithm through an [`AlgorithmId`]: a `Copy` handle
//! carrying a stable wire key (`"mm"`, `"rma"`, …), a display label
//! (`"MM"`, `"RMA"`, …) and the algorithm object itself. Dispatch through
//! an id is a plain vtable call — no registry lookup sits on the planning
//! hot path; the registry is only consulted to *resolve names* and to
//! *list* what is available.
//!
//! [`MixingAlgorithmRegistry`] is seeded with the paper's four baselines
//! (MinMix, RMA, MTCS, RSM, in citation order). New planners register at
//! runtime with [`MixingAlgorithmRegistry::register`] and immediately
//! reach every consumer that resolves by name, without touching
//! [`BaseAlgorithm`] or the engine core.

use crate::{BaseAlgorithm, MinMix, MixingAlgorithm, Mtcs, Rma, Rsm};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A registered mixing algorithm: stable wire key, display label and the
/// algorithm object.
///
/// Equality and hashing use the key **only** — the registry enforces key
/// uniqueness, so equal keys imply the same algorithm. This keeps ids
/// process-stable (a key string hashes the same in every process), which
/// the engine's content-addressed plan cache relies on.
#[derive(Clone, Copy)]
pub struct AlgorithmId {
    key: &'static str,
    label: &'static str,
    algorithm: &'static (dyn MixingAlgorithm + Send + Sync),
}

impl AlgorithmId {
    /// MinMix (`"mm"`).
    pub const MINMIX: AlgorithmId = AlgorithmId::new("mm", "MM", &MinMix);
    /// RMA (`"rma"`).
    pub const RMA: AlgorithmId = AlgorithmId::new("rma", "RMA", &Rma);
    /// MTCS (`"mtcs"`).
    pub const MTCS: AlgorithmId = AlgorithmId::new("mtcs", "MTCS", &Mtcs);
    /// RSM (`"rsm"`).
    pub const RSM: AlgorithmId = AlgorithmId::new("rsm", "RSM", &Rsm);

    /// Creates an id. `key` should be short, lowercase and stable — it is
    /// the wire name used by the CLI (`--algo KEY`) and the serve protocol.
    pub const fn new(
        key: &'static str,
        label: &'static str,
        algorithm: &'static (dyn MixingAlgorithm + Send + Sync),
    ) -> Self {
        AlgorithmId { key, label, algorithm }
    }

    /// The stable wire key (`"mm"`, `"rma"`, …).
    pub fn key(self) -> &'static str {
        self.key
    }

    /// The display label (`"MM"`, `"RMA"`, …) used in reports and tables.
    pub fn label(self) -> &'static str {
        self.label
    }

    /// The algorithm object behind the id.
    pub fn algorithm(self) -> &'static dyn MixingAlgorithm {
        self.algorithm
    }
}

impl PartialEq for AlgorithmId {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for AlgorithmId {}

impl Hash for AlgorithmId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key.hash(state);
    }
}

impl fmt::Debug for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AlgorithmId").field(&self.key).finish()
    }
}

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label)
    }
}

impl From<BaseAlgorithm> for AlgorithmId {
    fn from(algorithm: BaseAlgorithm) -> Self {
        match algorithm {
            BaseAlgorithm::MinMix => AlgorithmId::MINMIX,
            BaseAlgorithm::Rma => AlgorithmId::RMA,
            BaseAlgorithm::Mtcs => AlgorithmId::MTCS,
            BaseAlgorithm::Rsm => AlgorithmId::RSM,
        }
    }
}

impl PartialEq<BaseAlgorithm> for AlgorithmId {
    fn eq(&self, other: &BaseAlgorithm) -> bool {
        *self == AlgorithmId::from(*other)
    }
}

impl PartialEq<AlgorithmId> for BaseAlgorithm {
    fn eq(&self, other: &AlgorithmId) -> bool {
        AlgorithmId::from(*self) == *other
    }
}

/// One registry row: the id, a one-line description for listings, and
/// accepted lookup aliases (always matched case-insensitively, alongside
/// the key and the label).
#[derive(Clone, Copy, Debug)]
pub struct AlgorithmEntry {
    /// The algorithm id.
    pub id: AlgorithmId,
    /// One-line description shown by `--list-algorithms`.
    pub description: &'static str,
    /// Extra accepted names (e.g. `"minmix"` for `"mm"`).
    pub aliases: &'static [&'static str],
}

/// The name `name` did not resolve to any registered algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithmError {
    /// The name that failed to resolve.
    pub name: String,
    /// The keys currently registered, in registration order.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown mixing algorithm {:?} (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownAlgorithmError {}

/// An algorithm with the same key (or a clashing alias) is already
/// registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateAlgorithmError {
    /// The clashing name.
    pub key: String,
}

impl fmt::Display for DuplicateAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mixing algorithm {:?} is already registered", self.key)
    }
}

impl std::error::Error for DuplicateAlgorithmError {}

/// The process-wide mixing-algorithm registry (see the module docs).
pub struct MixingAlgorithmRegistry;

static REGISTRY: OnceLock<RwLock<Vec<AlgorithmEntry>>> = OnceLock::new();

fn store() -> &'static RwLock<Vec<AlgorithmEntry>> {
    REGISTRY.get_or_init(|| {
        RwLock::new(vec![
            AlgorithmEntry {
                id: AlgorithmId::MINMIX,
                description: "MinMix (Thies et al. 2008): binary-expansion tree, \
                              minimal depth and mix count",
                aliases: &["minmix"],
            },
            AlgorithmEntry {
                id: AlgorithmId::RMA,
                description: "RMA (Roy et al. VLSID 2011): ratio-halving tree; extra \
                              waste droplets seed the mixing forest",
                aliases: &[],
            },
            AlgorithmEntry {
                id: AlgorithmId::MTCS,
                description: "MTCS (Kumar et al. DDECS 2013): MinMix with \
                              common-subtree sharing",
                aliases: &[],
            },
            AlgorithmEntry {
                id: AlgorithmId::RSM,
                description: "RSM (Hsieh et al. TCAD 2012): reagent-saving balanced \
                              partition with subgraph sharing",
                aliases: &[],
            },
        ])
    })
}

fn read() -> RwLockReadGuard<'static, Vec<AlgorithmEntry>> {
    store().read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write() -> RwLockWriteGuard<'static, Vec<AlgorithmEntry>> {
    store().write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MixingAlgorithmRegistry {
    /// All registered algorithms, in registration order (the four paper
    /// baselines first).
    pub fn entries() -> Vec<AlgorithmEntry> {
        read().clone()
    }

    /// Resolves `name` against keys, labels and aliases,
    /// case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAlgorithmError`] (listing the registered keys) when
    /// nothing matches.
    pub fn resolve(name: &str) -> Result<AlgorithmId, UnknownAlgorithmError> {
        let entries = read();
        for entry in entries.iter() {
            if entry.id.key.eq_ignore_ascii_case(name)
                || entry.id.label.eq_ignore_ascii_case(name)
                || entry.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
            {
                return Ok(entry.id);
            }
        }
        Err(UnknownAlgorithmError {
            name: name.to_owned(),
            known: entries.iter().map(|e| e.id.key).collect(),
        })
    }

    /// Registers a new algorithm.
    ///
    /// The entry's key, label and aliases must not clash (case-insensitively)
    /// with any already-registered name. Algorithms built at runtime can
    /// obtain the required `&'static` reference with `Box::leak`.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateAlgorithmError`] on a name clash; the registry is
    /// left unchanged.
    pub fn register(entry: AlgorithmEntry) -> Result<(), DuplicateAlgorithmError> {
        let mut entries = write();
        let mut new_names = vec![entry.id.key, entry.id.label];
        new_names.extend(entry.aliases);
        for existing in entries.iter() {
            let mut names = vec![existing.id.key, existing.id.label];
            names.extend(existing.aliases);
            for name in &names {
                if new_names.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                    return Err(DuplicateAlgorithmError { key: (*name).to_owned() });
                }
            }
        }
        entries.push(entry);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_resolve_by_key_label_and_alias() {
        for (name, expected) in [
            ("mm", AlgorithmId::MINMIX),
            ("MM", AlgorithmId::MINMIX),
            ("minmix", AlgorithmId::MINMIX),
            ("rma", AlgorithmId::RMA),
            ("MTCS", AlgorithmId::MTCS),
            ("rsm", AlgorithmId::RSM),
        ] {
            assert_eq!(MixingAlgorithmRegistry::resolve(name).unwrap(), expected, "{name}");
        }
    }

    #[test]
    fn unknown_names_list_the_registered_keys() {
        let err = MixingAlgorithmRegistry::resolve("nope").unwrap_err();
        assert_eq!(err.name, "nope");
        for key in ["mm", "rma", "mtcs", "rsm"] {
            assert!(err.known.contains(&key), "missing {key} in {:?}", err.known);
        }
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn ids_round_trip_the_enum_and_compare_across_types() {
        for base in BaseAlgorithm::ALL {
            let id = AlgorithmId::from(base);
            assert_eq!(id, base);
            assert_eq!(base, id);
            assert_eq!(id.label(), base.name());
            assert_eq!(id.algorithm().name(), base.algorithm().name());
        }
        assert_ne!(AlgorithmId::MINMIX, AlgorithmId::RSM);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let clash = AlgorithmEntry {
            id: AlgorithmId::new("minmix", "MinMix2", &MinMix),
            description: "clashes with the mm alias",
            aliases: &[],
        };
        assert!(MixingAlgorithmRegistry::register(clash).is_err());
    }

    #[test]
    fn entries_seed_the_four_paper_baselines_in_order() {
        let entries = MixingAlgorithmRegistry::entries();
        let keys: Vec<&str> = entries.iter().take(4).map(|e| e.id.key()).collect();
        assert_eq!(keys, ["mm", "rma", "mtcs", "rsm"]);
        for entry in entries.iter().take(4) {
            assert!(!entry.description.is_empty());
        }
    }
}
