use crate::{Capabilities, MixAlgoError, MixingAlgorithm, Template};
use dmf_ratio::{FluidId, TargetRatio};

/// The ratio-halving mixing algorithm of Roy et al. (VLSID 2011) — the
/// paper's `RMA` baseline, reimplemented from its published description.
///
/// Works top-down: a node carrying the integer vector `a` with `Σa = 2^k`
/// is produced by mixing two children carrying vectors `b` and `c` with
/// `b + c = a` and `Σb = Σc = 2^{k-1}`. The partition is made at fluid
/// granularity — components are assigned whole to the left half in
/// descending order, and **at most one** component is split where the
/// halves meet. All-even vectors are reduced before splitting (their
/// content already exists one level down).
///
/// Compared to [`crate::MinMix`]'s popcount-optimal leaf placement this
/// yields equal or **more intermediate waste droplets** — the property the
/// DAC 2014 paper exploits: "RMA constructs a base mixing tree with a
/// larger number of waste droplets … an engine based on RMA is likely to
/// produce a stream of target droplets more efficiently" (§4).
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{MinMix, MixingAlgorithm, Rma};
/// use dmf_ratio::TargetRatio;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![9, 17, 26, 9, 195])?;
/// let rma = Rma.build_template(&target)?;
/// let mm = MinMix.build_template(&target)?;
/// assert!(rma.mix_count() >= mm.mix_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rma;

impl MixingAlgorithm for Rma {
    fn name(&self) -> &'static str {
        "RMA"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SDST_ONLY
    }

    fn build_template(&self, target: &TargetRatio) -> Result<Template, MixAlgoError> {
        if target.active_fluid_count() <= 1 {
            return Err(MixAlgoError::PureTarget);
        }
        build(target.parts().to_vec(), target.accuracy(), target.fluid_count())
    }
}

fn build(
    mut vector: Vec<u64>,
    mut level: u32,
    fluid_count: usize,
) -> Result<Template, MixAlgoError> {
    let sole_active = {
        let mut active = vector.iter().enumerate().filter(|&(_, &v)| v > 0);
        match (active.next(), active.next()) {
            (Some((fluid, _)), None) => Some(fluid),
            _ => None,
        }
    };
    if let Some(fluid) = sole_active {
        return Ok(Template::leaf(FluidId(fluid), fluid_count));
    }
    // Reduce: an all-even vector denotes the same content one level down,
    // so recurse there instead of splitting into two identical halves
    // (which would waste a mix re-creating a droplet we already have).
    while level > 0 && vector.iter().all(|v| v % 2 == 0) {
        for v in &mut vector {
            *v /= 2;
        }
        level -= 1;
    }
    debug_assert!(level > 0, "multi-fluid vector implies level > 0");
    let (left, right) = halve(&vector);
    let lt = build(left, level - 1, fluid_count)?;
    let rt = build(right, level - 1, fluid_count)?;
    Template::mix(lt, rt)
}

/// Splits `vector` into two vectors of equal sum. Components are assigned
/// whole to the left half in descending-value order (ties by index); the
/// component crossing the half-way mark is split; the remainder goes right.
fn halve(vector: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let half: u64 = vector.iter().sum::<u64>() / 2;
    let mut order: Vec<usize> = (0..vector.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(vector[i]), i));
    let mut left = vec![0u64; vector.len()];
    let mut acc = 0u64;
    for i in order {
        if acc >= half {
            break;
        }
        let take = vector[i].min(half - acc);
        left[i] = take;
        acc += take;
    }
    let right: Vec<u64> = vector.iter().zip(&left).map(|(&v, &l)| v - l).collect();
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{materialize, MinMix};

    #[test]
    fn halve_splits_at_most_one_component() {
        let v = [2u64, 1, 1, 1, 1, 1, 9];
        let (l, r) = halve(&v);
        assert_eq!(l.iter().sum::<u64>(), 8);
        assert_eq!(r.iter().sum::<u64>(), 8);
        let split_components =
            v.iter().zip(l.iter().zip(&r)).filter(|(_, (a, b))| **a > 0 && **b > 0).count();
        assert!(split_components <= 1);
        for (a, (b, c)) in v.iter().zip(l.iter().zip(&r)) {
            assert_eq!(*a, b + c);
        }
    }

    #[test]
    fn pcr_tree_is_valid() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let t = Rma.build_template(&target).unwrap();
        let g = materialize(&t, &target, false).unwrap();
        let s = g.stats();
        s.assert_conservation();
        assert_eq!(s.depth, 4);
        // Never leaner than the popcount-optimal MinMix tree.
        let mm = MinMix.build_graph(&target).unwrap().stats();
        assert!(s.mix_splits >= mm.mix_splits);
    }

    #[test]
    fn splinkerette_tree_wastes_more_than_minmix() {
        // Ex.4: the halving must fragment components, so RMA pays extra
        // leaves and waste over MinMix — the property the paper relies on.
        let target = TargetRatio::new(vec![9, 17, 26, 9, 195]).unwrap();
        let rma = Rma.build_graph(&target).unwrap().stats();
        let mm = MinMix.build_graph(&target).unwrap().stats();
        assert!(rma.waste > mm.waste, "rma {} vs mm {}", rma.waste, mm.waste);
        assert!(rma.input_total > mm.input_total);
    }

    #[test]
    fn depth_never_exceeds_accuracy() {
        for parts in [
            vec![3, 5],
            vec![9, 17, 26, 9, 195],
            vec![57, 28, 6, 6, 6, 3, 150],
            vec![25, 5, 5, 5, 5, 13, 13, 25, 1, 159],
            vec![26, 21, 2, 2, 3, 3, 199],
        ] {
            let target = TargetRatio::new(parts).unwrap();
            let t = Rma.build_template(&target).unwrap();
            assert!(t.depth() <= target.accuracy());
            materialize(&t, &target, false).unwrap();
        }
    }

    #[test]
    fn rejects_pure_targets() {
        let target = TargetRatio::new(vec![0, 8]).unwrap();
        assert!(matches!(Rma.build_template(&target), Err(MixAlgoError::PureTarget)));
    }
}
