use crate::{Capabilities, MinMix, MixAlgoError, MixingAlgorithm, Template};
use dmf_ratio::TargetRatio;

/// The common-subtree-sharing mixing algorithm of Kumar et al.
/// (DDECS 2013) — the paper's `MTCS` baseline, reimplemented from its
/// published description.
///
/// Builds the [`crate::MinMix`] tree and then shares content-identical
/// subtrees: a subtree whose droplet content was already produced consumes
/// the earlier producer's *spare* droplet instead of re-mixing, turning the
/// tree into the paper's "base mixing graph" with fewer mix-splits and less
/// reactant. Since every mix-split yields exactly two droplets, each
/// producer can serve at most one extra consumer; further duplicates are
/// mixed afresh.
///
/// For targets whose MinMix tree has no repeated subtree content (such as
/// the PCR master mix), MTCS degenerates to MinMix — sharing simply finds
/// nothing to share.
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{MinMix, MixingAlgorithm, Mtcs};
/// use dmf_ratio::TargetRatio;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 3:3:2 has two content-identical <1:1:0> subtrees in its MinMix tree.
/// let target = TargetRatio::new(vec![3, 3, 2])?;
/// let shared = Mtcs.build_graph(&target)?;
/// let plain = MinMix.build_graph(&target)?;
/// assert!(shared.stats().mix_splits < plain.stats().mix_splits);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mtcs;

impl MixingAlgorithm for Mtcs {
    fn name(&self) -> &'static str {
        "MTCS"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SDST_ONLY
    }

    fn build_template(&self, target: &TargetRatio) -> Result<Template, MixAlgoError> {
        MinMix.build_template(target)
    }

    fn shares_subgraphs(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_duplicate_subtrees() {
        let target = TargetRatio::new(vec![3, 3, 2]).unwrap();
        let shared = Mtcs.build_graph(&target).unwrap();
        let plain = MinMix.build_graph(&target).unwrap();
        let ss = shared.stats();
        let ps = plain.stats();
        assert!(ss.mix_splits < ps.mix_splits);
        assert!(ss.input_total < ps.input_total);
        assert!(ss.waste < ps.waste);
        ss.assert_conservation();
    }

    #[test]
    fn degenerates_to_minmix_without_duplicates() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let shared = Mtcs.build_graph(&target).unwrap();
        let plain = MinMix.build_graph(&target).unwrap();
        assert_eq!(shared.stats(), plain.stats());
    }

    #[test]
    fn never_worse_than_minmix() {
        for parts in [
            vec![5, 11],
            vec![1, 3, 4, 8],
            vec![7, 7, 2],
            vec![9, 17, 26, 9, 195],
            vec![5, 5, 5, 5, 12],
        ] {
            let target = TargetRatio::new(parts).unwrap();
            let shared = Mtcs.build_graph(&target).unwrap().stats();
            let plain = MinMix.build_graph(&target).unwrap().stats();
            assert!(shared.mix_splits <= plain.mix_splits);
            assert!(shared.input_total <= plain.input_total);
            shared.assert_conservation();
        }
    }
}
