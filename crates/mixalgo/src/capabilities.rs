/// Capability flags matching the taxonomy of the paper's Table 1.
///
/// * **SDST** — single droplet (pair) of a single target ratio;
/// * **MDST** — multiple (more than two) droplets of a single target;
/// * **SDMT** — single droplet each for multiple target ratios.
///
/// Each objective is split by fluid count: dilution (`N = 2`) versus true
/// mixing (`N > 2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capabilities {
    /// Single droplet pair, single target, two fluids.
    pub sdst_dilution: bool,
    /// Single droplet pair, single target, three or more fluids.
    pub sdst_mixing: bool,
    /// Droplet streaming, single target, two fluids.
    pub mdst_dilution: bool,
    /// Droplet streaming, single target, three or more fluids.
    pub mdst_mixing: bool,
    /// One droplet per target over multiple targets, two fluids.
    pub sdmt_dilution: bool,
    /// One droplet per target over multiple targets, three or more fluids.
    pub sdmt_mixing: bool,
}

impl Capabilities {
    /// Table 1 row shared by MM, RMA and MTCS: SDST only.
    pub const SDST_ONLY: Capabilities = Capabilities {
        sdst_dilution: true,
        sdst_mixing: true,
        mdst_dilution: false,
        mdst_mixing: false,
        sdmt_dilution: false,
        sdmt_mixing: false,
    };

    /// Table 1 row for RSM: SDST plus multi-droplet/multi-target mixing.
    pub const RSM: Capabilities = Capabilities {
        sdst_dilution: true,
        sdst_mixing: true,
        mdst_dilution: false,
        mdst_mixing: true,
        sdmt_dilution: false,
        sdmt_mixing: true,
    };

    /// Table 1 row for the paper's proposed streaming engine: full MDST.
    pub const PROPOSED: Capabilities = Capabilities {
        sdst_dilution: true,
        sdst_mixing: true,
        mdst_dilution: true,
        mdst_mixing: true,
        sdmt_dilution: false,
        sdmt_mixing: false,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the Table 1 rows are consts by design
    fn table1_rows_are_distinct_where_the_paper_says_so() {
        assert_ne!(Capabilities::SDST_ONLY, Capabilities::RSM);
        assert_ne!(Capabilities::RSM, Capabilities::PROPOSED);
        assert!(Capabilities::PROPOSED.mdst_mixing);
        assert!(Capabilities::PROPOSED.mdst_dilution);
        assert!(!Capabilities::SDST_ONLY.mdst_mixing);
        assert!(Capabilities::RSM.sdmt_mixing);
    }
}
