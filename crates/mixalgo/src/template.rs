use crate::MixAlgoError;
use dmf_ratio::{FluidId, Mixture};
use std::borrow::Cow;

/// A plain binary mixing tree with precomputed droplet contents.
///
/// Templates are the intermediate representation between ratio-level
/// algorithms ([`crate::MinMix`], [`crate::Rma`], …) and the arena-backed
/// [`dmf_mixgraph::MixGraph`]: they capture *structure only*, so the same
/// template can be materialised once (a base tree) or replayed many times
/// against a waste-droplet pool (the mixing forest of the streaming engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    fluid_count: usize,
    root: TemplateNode,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TemplateNode {
    Leaf { fluid: FluidId },
    Mix { left: Box<TemplateNode>, right: Box<TemplateNode>, mixture: Mixture, level: u32 },
}

impl TemplateNode {
    /// The droplet content this node produces — borrowed from the
    /// precomputed interior mixture, constructed only for leaves.
    ///
    /// Fails only when a leaf references a fluid outside its fluid set,
    /// which [`Template::leaf`] makes unconstructible; the error path
    /// exists so the invariant surfaces as a typed error, not a panic.
    pub(crate) fn mixture(&self, fluid_count: usize) -> Result<Cow<'_, Mixture>, MixAlgoError> {
        match self {
            TemplateNode::Leaf { fluid } => {
                Ok(Cow::Owned(Mixture::try_pure(fluid.0, fluid_count)?))
            }
            TemplateNode::Mix { mixture, .. } => Ok(Cow::Borrowed(mixture)),
        }
    }

    pub(crate) fn level(&self) -> u32 {
        match self {
            TemplateNode::Leaf { .. } => 0,
            TemplateNode::Mix { level, .. } => *level,
        }
    }

    fn count_mixes(&self) -> usize {
        match self {
            TemplateNode::Leaf { .. } => 0,
            TemplateNode::Mix { left, right, .. } => 1 + left.count_mixes() + right.count_mixes(),
        }
    }

    fn count_leaves(&self, acc: &mut [u64]) {
        match self {
            TemplateNode::Leaf { fluid } => acc[fluid.0] += 1,
            TemplateNode::Mix { left, right, .. } => {
                left.count_leaves(acc);
                right.count_leaves(acc);
            }
        }
    }
}

impl Template {
    /// Creates a template that is a single pure-fluid leaf.
    ///
    /// Only useful as a subtree argument to [`Template::mix`]; a leaf-only
    /// template cannot be materialised (a mixture needs at least one mix).
    ///
    /// # Panics
    ///
    /// Panics if `fluid` is out of range for `fluid_count`.
    pub fn leaf(fluid: FluidId, fluid_count: usize) -> Self {
        assert!(fluid.0 < fluid_count, "fluid index within fluid set");
        Template { fluid_count, root: TemplateNode::Leaf { fluid } }
    }

    /// Combines two templates with a (1:1) mix-split as the new root.
    ///
    /// # Errors
    ///
    /// Returns [`MixAlgoError::FluidSetMismatch`] when the operands range
    /// over different fluid sets, and propagates mixture arithmetic errors.
    pub fn mix(left: Template, right: Template) -> Result<Template, MixAlgoError> {
        if left.fluid_count != right.fluid_count {
            return Err(MixAlgoError::FluidSetMismatch {
                left: left.fluid_count,
                right: right.fluid_count,
            });
        }
        let fluid_count = left.fluid_count;
        let lm = left.root.mixture(fluid_count)?;
        let rm = right.root.mixture(fluid_count)?;
        let mixture = lm.mix(rm.as_ref()).map_err(MixAlgoError::Ratio)?;
        let level = left.root.level().max(right.root.level()) + 1;
        Ok(Template {
            fluid_count,
            root: TemplateNode::Mix {
                left: Box::new(left.root),
                right: Box::new(right.root),
                mixture,
                level,
            },
        })
    }

    /// Number of fluids in the underlying fluid set.
    pub fn fluid_count(&self) -> usize {
        self.fluid_count
    }

    /// Whether the template is a bare leaf (no mix at the root).
    pub fn is_leaf(&self) -> bool {
        matches!(self.root, TemplateNode::Leaf { .. })
    }

    /// The droplet content produced at the root.
    ///
    /// # Errors
    ///
    /// Fails only on a leaf referencing a fluid outside the fluid set,
    /// which [`Template::leaf`] rejects at construction.
    pub fn mixture(&self) -> Result<Mixture, MixAlgoError> {
        Ok(self.root.mixture(self.fluid_count)?.into_owned())
    }

    /// Structural height of the tree (a paper-conformant base tree for
    /// accuracy `d` has depth `<= d`, with equality unless the ratio
    /// reduces).
    pub fn depth(&self) -> u32 {
        self.root.level()
    }

    /// Number of mix-split operations (interior nodes).
    pub fn mix_count(&self) -> usize {
        self.root.count_mixes()
    }

    /// Per-fluid leaf counts — the input droplets `I[]` of one pass.
    pub fn leaf_counts(&self) -> Vec<u64> {
        let mut acc = vec![0; self.fluid_count];
        self.root.count_leaves(&mut acc);
        acc
    }

    pub(crate) fn root(&self) -> &TemplateNode {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_computes_content_and_depth() {
        let a = Template::leaf(FluidId(0), 2);
        let b = Template::leaf(FluidId(1), 2);
        let t = Template::mix(a, b).unwrap();
        assert_eq!(t.depth(), 1);
        assert_eq!(t.mix_count(), 1);
        assert_eq!(t.mixture().unwrap().parts(), &[1, 1]);
        assert_eq!(t.leaf_counts(), vec![1, 1]);
        assert!(!t.is_leaf());
    }

    #[test]
    fn mix_rejects_fluid_set_mismatch() {
        let a = Template::leaf(FluidId(0), 2);
        let b = Template::leaf(FluidId(0), 3);
        assert!(matches!(
            Template::mix(a, b),
            Err(MixAlgoError::FluidSetMismatch { left: 2, right: 3 })
        ));
    }

    #[test]
    fn nested_mix_tracks_unbalanced_depth() {
        let a = Template::leaf(FluidId(0), 2);
        let b = Template::leaf(FluidId(1), 2);
        let inner = Template::mix(a, b).unwrap();
        let t = Template::mix(Template::leaf(FluidId(0), 2), inner).unwrap();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.mix_count(), 2);
        assert_eq!(t.mixture().unwrap().parts(), &[3, 1]);
        assert_eq!(t.leaf_counts(), vec![2, 1]);
    }
}
