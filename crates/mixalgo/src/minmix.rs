use crate::{Capabilities, MixAlgoError, MixingAlgorithm, Template};
use dmf_ratio::{FluidId, TargetRatio};

/// The Min-Mix algorithm of Thies et al. (*Natural Computing*, 2008) — the
/// paper's `MM` baseline.
///
/// Each set bit `2^j` in component `a_i` of the target contributes one pure
/// droplet of fluid `i` as a leaf at depth `d - j` of the mixing tree; the
/// Kraft equality `Σ 2^{-depth} = 1` (a consequence of `Σ a_i = 2^d`)
/// guarantees that greedily pairing the deepest pending subtrees yields a
/// binary tree of depth exactly `d` whose root realises the target.
///
/// The resulting tree uses `#leaves - 1` mix-splits, where `#leaves` is the
/// total popcount of the ratio components.
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{MinMix, MixingAlgorithm};
/// use dmf_ratio::TargetRatio;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let template = MinMix.build_template(&target)?;
/// assert_eq!(template.depth(), 4);
/// assert_eq!(template.mix_count(), 7); // Fig. 1, T1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinMix;

impl MixingAlgorithm for MinMix {
    fn name(&self) -> &'static str {
        "MM"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SDST_ONLY
    }

    fn build_template(&self, target: &TargetRatio) -> Result<Template, MixAlgoError> {
        let fluid_count = target.fluid_count();
        let d = target.accuracy();
        if target.active_fluid_count() <= 1 {
            return Err(MixAlgoError::PureTarget);
        }
        // Bucket the leaves by depth: bit j of a_i puts a leaf of fluid i at
        // depth d - j. Leaves are inserted in ascending fluid order so the
        // construction is deterministic.
        let mut buckets: Vec<Vec<Template>> = vec![Vec::new(); d as usize + 1];
        for (i, &a) in target.parts().iter().enumerate() {
            for j in 0..=d {
                if (a >> j) & 1 == 1 {
                    buckets[(d - j) as usize].push(Template::leaf(FluidId(i), fluid_count));
                }
            }
        }
        // Merge deepest-first; the Kraft equality makes every bucket even
        // when its turn comes.
        for k in (1..=d as usize).rev() {
            let items = std::mem::take(&mut buckets[k]);
            debug_assert!(items.len().is_multiple_of(2), "Kraft parity violated at depth {k}");
            let mut it = items.into_iter();
            while let (Some(a), Some(b)) = (it.next(), it.next()) {
                buckets[k - 1].push(Template::mix(a, b)?);
            }
        }
        let mut top = std::mem::take(&mut buckets[0]);
        debug_assert_eq!(top.len(), 1, "Kraft equality leaves exactly one root");
        Ok(top.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize;

    #[test]
    fn pcr_d4_matches_fig1_base_tree() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let g = MinMix.build_graph(&target).unwrap();
        let s = g.stats();
        assert_eq!(s.mix_splits, 7);
        assert_eq!(s.input_total, 8);
        assert_eq!(s.waste, 6);
        assert_eq!(s.depth, 4);
        // Per-fluid leaves: x7 appears twice (bits 0 and 3 of 9), others once.
        assert_eq!(s.inputs, vec![1, 1, 1, 1, 1, 1, 2]);
        s.assert_conservation();
    }

    #[test]
    fn simple_dilution_tree() {
        // 3:1 => leaves x1@1, x1@2, x2@2 => two mixes.
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let t = MinMix.build_template(&target).unwrap();
        assert_eq!(t.mix_count(), 2);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.leaf_counts(), vec![2, 1]);
    }

    #[test]
    fn rejects_pure_targets() {
        let target = TargetRatio::new(vec![4, 0]).unwrap();
        assert!(matches!(MinMix.build_template(&target), Err(MixAlgoError::PureTarget)));
    }

    #[test]
    fn handles_unreduced_ratios() {
        // 2:2 (d = 2) reduces to the single mix 1:1.
        let target = TargetRatio::new(vec![2, 2]).unwrap();
        let g = MinMix.build_graph(&target).unwrap();
        assert_eq!(g.stats().mix_splits, 1);
    }

    #[test]
    fn depth_bound_holds_for_many_ratios() {
        // Every valid ratio must give a tree of depth <= d whose root
        // realises the target (validated inside materialize).
        for parts in [
            vec![1, 1, 2, 4, 8],
            vec![5, 11],
            vec![1, 1, 1, 1, 1, 1, 1, 9],
            vec![26, 21, 2, 2, 3, 3, 199],
            vec![128, 123, 5],
        ] {
            let target = TargetRatio::new(parts).unwrap();
            let t = MinMix.build_template(&target).unwrap();
            assert!(t.depth() <= target.accuracy());
            materialize(&t, &target, false).unwrap();
        }
    }
}
