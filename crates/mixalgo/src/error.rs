use dmf_mixgraph::GraphError;
use dmf_ratio::RatioError;
use std::error::Error;
use std::fmt;

/// Error raised by base mixing-tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MixAlgoError {
    /// The target is a single pure fluid; no mixing is required and no
    /// mixing tree exists (a tree needs at least one mix-split).
    PureTarget,
    /// A dilution-only algorithm was given a target with more (or fewer)
    /// than two active fluids.
    NotADilution {
        /// Number of fluids with non-zero components.
        active: usize,
    },
    /// Two sub-templates range over different fluid sets.
    FluidSetMismatch {
        /// Fluid count of the left operand.
        left: usize,
        /// Fluid count of the right operand.
        right: usize,
    },
    /// Underlying ratio arithmetic failed.
    Ratio(RatioError),
    /// Lowering the template to a graph failed structural validation
    /// (indicates an algorithm bug).
    Graph(GraphError),
}

impl fmt::Display for MixAlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixAlgoError::PureTarget => {
                write!(f, "target is a single pure fluid; no mixing tree exists")
            }
            MixAlgoError::NotADilution { active } => {
                write!(f, "dilution algorithms need exactly two active fluids, got {active}")
            }
            MixAlgoError::FluidSetMismatch { left, right } => {
                write!(f, "sub-templates range over different fluid sets: {left} vs {right}")
            }
            MixAlgoError::Ratio(e) => write!(f, "ratio arithmetic failed: {e}"),
            MixAlgoError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl Error for MixAlgoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MixAlgoError::Ratio(e) => Some(e),
            MixAlgoError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RatioError> for MixAlgoError {
    fn from(e: RatioError) -> Self {
        MixAlgoError::Ratio(e)
    }
}

impl From<GraphError> for MixAlgoError {
    fn from(e: GraphError) -> Self {
        MixAlgoError::Graph(e)
    }
}
