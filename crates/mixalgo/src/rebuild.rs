use crate::template::TemplateNode;
use crate::{MixAlgoError, Template, WastePool};
use dmf_mixgraph::{GraphBuilder, MixGraph, NodeId, Operand};
use dmf_ratio::TargetRatio;

/// Replays `template` into `builder` as one component tree, consuming pooled
/// droplets wherever their content matches a needed subtree, and returns the
/// new tree's root.
///
/// This single function implements both halves of the paper:
///
/// * with an empty pool it materialises a base mixing tree verbatim;
/// * with a pool carrying earlier trees' waste it performs the *rebuild*
///   step of mixing-forest construction (§4.1): a subtree whose content is
///   available as a pooled droplet collapses to a reuse edge (the paper's
///   brown nodes).
///
/// Every interior mix offers its spare droplet back to the pool —
/// immediately when `eager` is true (within-tree sharing, as in
/// [`crate::Mtcs`]), or staged until the caller invokes
/// [`WastePool::commit`] when `eager` is false (the paper's across-tree
/// reuse). The root never takes from or offers to the pool: both of its
/// droplets are emitted targets.
///
/// The caller must still invoke [`GraphBuilder::finish_tree`] with the
/// returned root.
///
/// # Errors
///
/// Returns [`MixAlgoError::PureTarget`] when the template is a bare leaf and
/// propagates structural errors from the builder.
pub fn rebuild_tree(
    template: &Template,
    builder: &mut GraphBuilder,
    pool: &mut WastePool,
    eager: bool,
) -> Result<NodeId, MixAlgoError> {
    match rebuild_node(template.root(), builder, pool, eager, true)? {
        Operand::Droplet(id) => Ok(id),
        Operand::Input(_) => Err(MixAlgoError::PureTarget),
    }
}

fn rebuild_node(
    node: &TemplateNode,
    builder: &mut GraphBuilder,
    pool: &mut WastePool,
    eager: bool,
    is_root: bool,
) -> Result<Operand, MixAlgoError> {
    match node {
        TemplateNode::Leaf { fluid } => Ok(Operand::Input(*fluid)),
        TemplateNode::Mix { left, right, mixture, .. } => {
            if !is_root {
                if let Some(id) = pool.take(mixture) {
                    return Ok(Operand::Droplet(id));
                }
            }
            let lo = rebuild_node(left, builder, pool, eager, false)?;
            let ro = rebuild_node(right, builder, pool, eager, false)?;
            let id = builder.mix(lo, ro).map_err(MixAlgoError::Graph)?;
            if !is_root {
                pool.offer(mixture, id, eager);
            }
            Ok(Operand::Droplet(id))
        }
    }
}

/// Lowers a template to a validated single-tree [`MixGraph`].
///
/// With `share = true`, content-identical subtrees are built once and reuse
/// each other's spare droplets (the [`crate::Mtcs`]/[`crate::Rsm`]
/// behaviour); with `share = false` the template structure is reproduced
/// verbatim.
///
/// # Errors
///
/// Returns [`MixAlgoError::PureTarget`] for a leaf-only template and
/// propagates validation failures (which indicate a template that does not
/// realise `target`).
pub fn materialize(
    template: &Template,
    target: &TargetRatio,
    share: bool,
) -> Result<MixGraph, MixAlgoError> {
    let mut builder = GraphBuilder::new(template.fluid_count());
    let mut pool = WastePool::new();
    let root = rebuild_tree(template, &mut builder, &mut pool, share)?;
    builder.finish_tree(root);
    builder.finish(target).map_err(MixAlgoError::Graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_ratio::FluidId;

    fn leaf(i: usize, n: usize) -> Template {
        Template::leaf(FluidId(i), n)
    }

    #[test]
    fn materialize_reproduces_structure_without_sharing() {
        // mix(mix(x1,x2), mix(x1,x2)): two content-identical subtrees.
        let t = Template::mix(
            Template::mix(leaf(0, 2), leaf(1, 2)).unwrap(),
            Template::mix(leaf(0, 2), leaf(1, 2)).unwrap(),
        )
        .unwrap();
        let target = TargetRatio::new(vec![1, 1]).unwrap();
        let g = materialize(&t, &target, false).unwrap();
        assert_eq!(g.stats().mix_splits, 3);
        assert_eq!(g.stats().input_total, 4);
    }

    #[test]
    fn materialize_shares_identical_subtrees() {
        let t = Template::mix(
            Template::mix(leaf(0, 2), leaf(1, 2)).unwrap(),
            Template::mix(leaf(0, 2), leaf(1, 2)).unwrap(),
        )
        .unwrap();
        let target = TargetRatio::new(vec![1, 1]).unwrap();
        let g = materialize(&t, &target, true).unwrap();
        // The second subtree collapses onto the first one's spare droplet.
        assert_eq!(g.stats().mix_splits, 2);
        assert_eq!(g.stats().input_total, 2);
        assert_eq!(g.stats().waste, 0);
    }

    #[test]
    fn leaf_template_is_rejected() {
        let target = TargetRatio::new(vec![1]).unwrap();
        let t = leaf(0, 1);
        assert!(matches!(materialize(&t, &target, false), Err(MixAlgoError::PureTarget)));
    }

    #[test]
    fn forest_style_rebuild_reuses_across_trees() {
        // Base tree for 3:1 — rebuild twice with commit between; the second
        // tree must reuse the first tree's inner waste droplet.
        let t = Template::mix(leaf(0, 2), Template::mix(leaf(0, 2), leaf(1, 2)).unwrap()).unwrap();
        let target = TargetRatio::new(vec![3, 1]).unwrap();
        let mut builder = GraphBuilder::new(2);
        let mut pool = WastePool::new();
        let r1 = rebuild_tree(&t, &mut builder, &mut pool, false).unwrap();
        builder.finish_tree(r1);
        pool.commit();
        let r2 = rebuild_tree(&t, &mut builder, &mut pool, false).unwrap();
        builder.finish_tree(r2);
        let g = builder.finish(&target).unwrap();
        let stats = g.stats();
        // Tree 1: 2 mixes; tree 2: root only (inner droplet reused).
        assert_eq!(stats.mix_splits, 3);
        assert_eq!(stats.input_total, 4);
        assert_eq!(stats.waste, 0);
        stats.assert_conservation();
    }
}
