use dmf_mixgraph::NodeId;
use dmf_ratio::Mixture;
use std::collections::{HashMap, VecDeque};

/// A multiset of spare (would-be-waste) droplets keyed by canonical droplet
/// content.
///
/// This is the bookkeeping behind both common-subtree sharing
/// ([`crate::Mtcs`]/[`crate::Rsm`]) and the mixing forest of the streaming
/// engine: whenever a mix-split executes, its second output droplet is
/// offered to the pool; whenever a rebuild needs a droplet whose content is
/// already pooled, it consumes the pooled droplet instead of re-mixing.
///
/// The pool has *commit* semantics for the paper-faithful forest
/// construction: droplets offered during the current component tree are held
/// back in a staging area and only become takeable after [`WastePool::commit`]
/// (called at tree boundaries). Pass `eager = true` to
/// [`WastePool::offer`]-style users that want immediate availability
/// (within-tree sharing).
///
/// Droplets of equal content are consumed in FIFO order, which keeps the
/// construction deterministic.
#[derive(Debug, Clone, Default)]
pub struct WastePool {
    available: HashMap<Mixture, VecDeque<NodeId>>,
    staged: Vec<(Mixture, NodeId)>,
    len: usize,
}

impl WastePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        WastePool::default()
    }

    /// Number of takeable droplets (staged droplets are not counted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no droplet is takeable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of droplets staged but not yet committed.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Offers a spare droplet produced by `node`.
    ///
    /// With `eager = true` the droplet is takeable immediately; otherwise it
    /// is staged until the next [`WastePool::commit`]. The content is only
    /// cloned when the pool does not already own an equal key (hot reuse
    /// paths repeatedly offer the same few mixtures).
    pub fn offer(&mut self, mixture: &Mixture, node: NodeId, eager: bool) {
        if eager {
            if let Some(queue) = self.available.get_mut(mixture) {
                queue.push_back(node);
            } else {
                self.available.insert(mixture.clone(), VecDeque::from([node]));
            }
            self.len += 1;
        } else {
            self.staged.push((mixture.clone(), node));
        }
    }

    /// Takes the oldest takeable droplet with the given content, if any.
    pub fn take(&mut self, mixture: &Mixture) -> Option<NodeId> {
        let queue = self.available.get_mut(mixture)?;
        let id = queue.pop_front()?;
        if queue.is_empty() {
            self.available.remove(mixture);
        }
        self.len -= 1;
        Some(id)
    }

    /// Makes all staged droplets takeable (call at component-tree
    /// boundaries).
    pub fn commit(&mut self) {
        for (mixture, node) in self.staged.drain(..) {
            self.available.entry(mixture).or_default().push_back(node);
            self.len += 1;
        }
    }

    /// Drops every droplet, takeable and staged alike.
    pub fn clear(&mut self) {
        self.available.clear();
        self.staged.clear();
        self.len = 0;
    }

    /// Iterates over the takeable droplets as `(content, producer)` pairs,
    /// in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Mixture, NodeId)> {
        self.available.iter().flat_map(|(m, q)| q.iter().map(move |&id| (m, id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixture(parts: Vec<u64>, level: u32) -> Mixture {
        Mixture::new(level, parts).unwrap()
    }

    #[test]
    fn eager_offers_are_takeable_immediately() {
        let mut pool = WastePool::new();
        let m = mixture(vec![1, 1], 1);
        pool.offer(&m, NodeId::new(0), true);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.take(&m), Some(NodeId::new(0)));
        assert!(pool.is_empty());
        assert_eq!(pool.take(&m), None);
    }

    #[test]
    fn staged_offers_need_commit() {
        let mut pool = WastePool::new();
        let m = mixture(vec![1, 1], 1);
        pool.offer(&m, NodeId::new(3), false);
        assert_eq!(pool.take(&m), None);
        assert_eq!(pool.staged_len(), 1);
        pool.commit();
        assert_eq!(pool.take(&m), Some(NodeId::new(3)));
    }

    #[test]
    fn equal_content_is_fifo() {
        let mut pool = WastePool::new();
        let m = mixture(vec![3, 1], 2);
        pool.offer(&m, NodeId::new(1), true);
        pool.offer(&m, NodeId::new(2), true);
        assert_eq!(pool.take(&m), Some(NodeId::new(1)));
        assert_eq!(pool.take(&m), Some(NodeId::new(2)));
    }

    #[test]
    fn canonical_keys_unify_levels() {
        // <2:2>/4 canonicalises to <1:1>/2, so both lookups hit.
        let mut pool = WastePool::new();
        pool.offer(&mixture(vec![2, 2], 2), NodeId::new(5), true);
        assert_eq!(pool.take(&mixture(vec![1, 1], 1)), Some(NodeId::new(5)));
    }

    #[test]
    fn clear_empties_everything() {
        let mut pool = WastePool::new();
        let m = mixture(vec![1, 1], 1);
        pool.offer(&m, NodeId::new(0), true);
        pool.offer(&m, NodeId::new(1), false);
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.staged_len(), 0);
    }
}
