use dmf_ratio::{RatioError, TargetRatio};

/// Builds the two-fluid dilution target `k : 2^d - k` (sample at
/// concentration factor `k / 2^d` in buffer).
///
/// Dilution is the `N = 2` special case of mixture preparation (paper
/// §2.1); feeding the returned ratio to any [`crate::MixingAlgorithm`]
/// yields the classic bit-scanning dilution tree, and feeding it to the
/// streaming engine reproduces the dilution-engine use case of
/// Roy et al. (IET-CDT 2013) as a special case of MDST.
///
/// # Errors
///
/// Returns [`RatioError::AllZero`] when `k == 0`,
/// [`RatioError::SumNotPowerOfTwo`]-style failures never occur (the sum is
/// `2^d` by construction) but `k > 2^d` is rejected as
/// [`RatioError::InvalidWeight`].
///
/// # Examples
///
/// ```
/// use dmf_mixalgo::{dilution_ratio, MinMix, MixingAlgorithm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 5/16 sample in buffer.
/// let target = dilution_ratio(5, 4)?;
/// assert_eq!(target.parts(), &[5, 11]);
/// let tree = MinMix.build_graph(&target)?;
/// // Bit-scan: popcount(5) + popcount(11) - 1 = 2 + 3 - 1 mixes.
/// assert_eq!(tree.stats().mix_splits, 4);
/// # Ok(())
/// # }
/// ```
pub fn dilution_ratio(k: u64, accuracy: u32) -> Result<TargetRatio, RatioError> {
    if accuracy >= 63 {
        return Err(RatioError::AccuracyTooLarge { accuracy });
    }
    let total = 1u64 << accuracy;
    if k > total {
        return Err(RatioError::InvalidWeight { index: 0 });
    }
    TargetRatio::new(vec![k, total - k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinMix, MixingAlgorithm};

    #[test]
    fn builds_sample_buffer_pairs() {
        let t = dilution_ratio(3, 3).unwrap();
        assert_eq!(t.parts(), &[3, 5]);
        assert!(t.is_dilution());
    }

    #[test]
    fn rejects_out_of_range_cf() {
        assert!(dilution_ratio(17, 4).is_err());
        // k = 0 is pure buffer: a valid ratio, but not mixable.
        let pure_buffer = dilution_ratio(0, 4).unwrap();
        assert!(MinMix.build_template(&pure_buffer).is_err());
    }

    #[test]
    fn full_concentration_is_pure_and_unmixable() {
        let t = dilution_ratio(16, 4).unwrap();
        assert!(MinMix.build_template(&t).is_err());
    }

    #[test]
    fn dilution_trees_have_bit_scan_size() {
        for (k, d) in [(1u64, 4u32), (5, 4), (7, 3), (9, 5), (21, 6)] {
            let t = dilution_ratio(k, d).unwrap();
            let g = MinMix.build_graph(&t).unwrap();
            let leaves = (k.count_ones() + ((1u64 << d) - k).count_ones()) as usize;
            assert_eq!(g.stats().mix_splits, leaves - 1);
        }
    }
}
