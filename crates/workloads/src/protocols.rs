//! Real-life bioprotocol target mixtures used in the paper's evaluation.

use dmf_ratio::TargetRatio;

/// A named bioprotocol mixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Protocol {
    /// The paper's identifier ("Ex.1" … "Ex.5").
    pub id: &'static str,
    /// Human-readable protocol name.
    pub name: &'static str,
    /// Integer target ratio at the protocol's published accuracy.
    pub ratio: TargetRatio,
}

fn protocol(id: &'static str, name: &'static str, parts: Vec<u64>) -> Protocol {
    // Every caller passes a published table with a power-of-two sum; the
    // 1:1 fallback keeps this total, and the per-protocol ratio-sum and
    // fluid-count tests below would expose a silently degraded table.
    let ratio = TargetRatio::new(parts).unwrap_or_else(|_| TargetRatio::unit());
    Protocol { id, name, ratio }
}

/// Ex.1 — the PCR master mix for DNA amplification, `L = 256`.
pub fn pcr_master_mix_256() -> Protocol {
    protocol("Ex.1", "PCR master mix (DNA amplification)", vec![26, 21, 2, 2, 3, 3, 199])
}

/// Ex.2 — phenol : chloroform : isoamylalcohol, One-Step Miniprep,
/// `L = 256`.
pub fn one_step_miniprep() -> Protocol {
    protocol("Ex.2", "One-Step Miniprep (phenol/chloroform/isoamylalcohol)", vec![128, 123, 5])
}

/// Ex.3 — ten-fluid mixture of the Molecular Barcodes method, `L = 256`.
pub fn molecular_barcodes() -> Protocol {
    protocol("Ex.3", "Molecular Barcodes method", vec![25, 5, 5, 5, 5, 13, 13, 25, 1, 159])
}

/// Ex.4 — five-fluid mixture of the Splinkerette PCR method, `L = 256`.
pub fn splinkerette_pcr() -> Protocol {
    protocol("Ex.4", "Splinkerette PCR method", vec![9, 17, 26, 9, 195])
}

/// Ex.5 — mixture used in the Miniprep plasmid-DNA protocol, `L = 256`.
pub fn miniprep() -> Protocol {
    protocol("Ex.5", "Miniprep (alkaline lysis with SDS)", vec![57, 28, 6, 6, 6, 3, 150])
}

/// All five Table 2 example protocols, in the paper's order.
pub fn table2_examples() -> Vec<Protocol> {
    vec![
        pcr_master_mix_256(),
        one_step_miniprep(),
        molecular_barcodes(),
        splinkerette_pcr(),
        miniprep(),
    ]
}

/// The PCR master mix at the paper's working accuracy `d = 4`
/// (`2:1:1:1:1:1:9`, used in Figs. 1–4 and Table 4).
pub fn pcr_master_mix_d4() -> Protocol {
    protocol("PCR-d4", "PCR master mix, d = 4", vec![2, 1, 1, 1, 1, 1, 9])
}

/// The real-valued PCR master-mix composition in volume percent:
/// reactant buffer, dNTPs, forward primer, reverse primer, DNA template,
/// optimase, water.
pub const PCR_MASTER_MIX_PERCENT: [f64; 7] = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_have_ratio_sum_256() {
        for p in table2_examples() {
            assert_eq!(p.ratio.ratio_sum(), 256, "{}", p.id);
            assert_eq!(p.ratio.accuracy(), 8, "{}", p.id);
        }
    }

    #[test]
    fn fluid_counts_match_paper() {
        let counts: Vec<usize> = table2_examples().iter().map(|p| p.ratio.fluid_count()).collect();
        assert_eq!(counts, vec![7, 3, 10, 5, 7]);
    }

    #[test]
    fn d4_pcr_derives_from_percentages() {
        let approx = TargetRatio::paper_approximate(&PCR_MASTER_MIX_PERCENT, 4).unwrap();
        assert_eq!(approx, pcr_master_mix_d4().ratio);
    }
}
