//! Synthetic target-ratio corpora: integer partitions of a ratio-sum `L`
//! into `N` positive components.
//!
//! The paper evaluates over "6058 synthetic target ratios of `N`
//! (`2 <= N <= 12`) different fluids with ratio-sum `L = 32`". The
//! exhaustive partition population is 6289; dropping ratios whose
//! components share a factor of two (those reduce to a smaller accuracy
//! level and are degenerate as `d = 5` inputs) leaves 6066 — within 0.2% of
//! the paper's count, whose exact filter is unspecified.

use dmf_ratio::TargetRatio;
use dmf_rng::{SeedableRng, SliceRandom, StdRng};

/// Generates every partition of `total` into exactly `parts` positive
/// components, each in non-increasing order.
///
/// # Examples
///
/// ```
/// use dmf_workloads::synthetic::partitions;
///
/// let p = partitions(5, 2);
/// assert_eq!(p, vec![vec![4, 1], vec![3, 2]]);
/// ```
pub fn partitions(total: u64, parts: usize) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(parts);
    descend(total, parts, total, &mut current, &mut out);
    out
}

fn descend(total: u64, parts: usize, max: u64, current: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
    if parts == 0 {
        if total == 0 {
            out.push(current.clone());
        }
        return;
    }
    if total < parts as u64 {
        // Not enough mass for `parts` positive components.
        return;
    }
    // Each remaining component is at least 1 and at most `max`.
    let upper = max.min(total - (parts as u64 - 1));
    let lower = total.div_ceil(parts as u64).max(1);
    for value in (lower..=upper).rev() {
        current.push(value);
        descend(total - value, parts - 1, value, current, out);
        current.pop();
    }
}

/// The synthetic evaluation corpus: all partition ratios of `ratio_sum`
/// over `fluids` components, optionally dropping ratios with a common
/// factor of two (`coprime_only`).
///
/// # Panics
///
/// Panics if `ratio_sum` is not a power of two (the partitions would not be
/// valid target ratios).
pub fn corpus(
    ratio_sum: u64,
    fluids: std::ops::RangeInclusive<usize>,
    coprime_only: bool,
) -> Vec<TargetRatio> {
    assert!(ratio_sum.is_power_of_two(), "ratio-sum must be 2^d");
    let mut out = Vec::new();
    for n in fluids {
        for parts in partitions(ratio_sum, n) {
            if coprime_only && parts.iter().all(|p| p % 2 == 0) {
                continue;
            }
            // Partitions sum to 2^d by construction, so the Err arm is
            // unreachable; the exact population-count tests below would
            // catch any partition this silently dropped.
            if let Ok(ratio) = TargetRatio::new(parts) {
                out.push(ratio);
            }
        }
    }
    out
}

/// The paper's corpus: `L = 32`, `N = 2..=12`, degenerate
/// (all-even) ratios removed — 6066 ratios.
pub fn paper_corpus() -> Vec<TargetRatio> {
    corpus(32, 2..=12, true)
}

/// A deterministic subsample of [`paper_corpus`] for quick sweeps.
pub fn sampled_corpus(size: usize, seed: u64) -> Vec<TargetRatio> {
    let mut all = paper_corpus();
    let mut rng = StdRng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(size);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_partition_counts() {
        assert_eq!(partitions(4, 2), vec![vec![3, 1], vec![2, 2]]);
        assert_eq!(partitions(6, 3).len(), 3); // 4+1+1, 3+2+1, 2+2+2
        assert_eq!(partitions(3, 5).len(), 0); // cannot split 3 into 5 parts
    }

    #[test]
    fn partitions_are_sorted_and_sum() {
        for p in partitions(12, 4) {
            assert_eq!(p.iter().sum::<u64>(), 12);
            assert!(p.windows(2).all(|w| w[0] >= w[1]));
            assert!(p.iter().all(|&v| v >= 1));
        }
    }

    #[test]
    fn full_population_is_6289() {
        let full = corpus(32, 2..=12, false);
        assert_eq!(full.len(), 6289);
    }

    #[test]
    fn coprime_population_is_6066() {
        // The paper says 6058; our exhaustive gcd-filtered population is
        // 6066 (documented in EXPERIMENTS.md).
        assert_eq!(paper_corpus().len(), 6066);
    }

    #[test]
    fn corpus_ratios_are_valid_targets() {
        for r in sampled_corpus(64, 7) {
            assert_eq!(r.ratio_sum(), 32);
            assert!(r.fluid_count() >= 2 && r.fluid_count() <= 12);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(sampled_corpus(10, 42), sampled_corpus(10, 42));
        assert_ne!(sampled_corpus(10, 42), sampled_corpus(10, 43));
    }
}

/// A serial-dilution series: CFs `1/2, 1/4, …, 1/2^depth` of a sample in
/// buffer — the classic assay-calibration workload, useful for exercising
/// multi-target sharing (each step's mixture is the previous step's
/// half-dilution).
pub fn serial_dilution_series(depth: u32) -> Vec<TargetRatio> {
    // 1 + (2^d - 1) = 2^d, so every step constructs; the series-length
    // test below would expose a silently dropped step.
    (1..=depth.min(62)).filter_map(|d| TargetRatio::new(vec![1, (1u64 << d) - 1]).ok()).collect()
}

#[cfg(test)]
mod series_tests {
    use super::*;

    #[test]
    fn series_halves_each_step() {
        let series = serial_dilution_series(4);
        assert_eq!(series.len(), 4);
        for (i, ratio) in series.iter().enumerate() {
            assert_eq!(ratio.parts()[0], 1);
            assert_eq!(ratio.ratio_sum(), 1 << (i + 1));
        }
    }

    #[test]
    fn degenerate_depths() {
        assert!(serial_dilution_series(0).is_empty());
        assert_eq!(serial_dilution_series(1)[0].parts(), &[1, 1]);
    }
}
