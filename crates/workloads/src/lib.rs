//! Target-ratio workloads for evaluating DMF sample-preparation engines.
//!
//! Two families, mirroring the paper's §6 evaluation setup:
//!
//! * [`protocols`] — the five real-life bioprotocol mixtures (`Ex.1`–`Ex.5`,
//!   all approximated in a scale of 256) plus the PCR master mix at the
//!   paper's working accuracy `d = 4`;
//! * [`synthetic`] — the exhaustive corpus of integer-partition target
//!   ratios with ratio-sum `L = 32` over `N = 2..=12` fluids. The paper
//!   reports 6058 such ratios; the full partition count is 6289, or 6066
//!   after removing ratios with a common factor of two (which degenerate to
//!   a smaller accuracy level). See `EXPERIMENTS.md` for the accounting.
//!
//! # Examples
//!
//! ```
//! use dmf_workloads::protocols;
//!
//! let pcr = protocols::pcr_master_mix_256();
//! assert_eq!(pcr.ratio.parts(), &[26, 21, 2, 2, 3, 3, 199]);
//! assert_eq!(pcr.ratio.accuracy(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocols;
pub mod synthetic;

pub use protocols::Protocol;
