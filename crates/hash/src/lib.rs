//! Stable, dependency-free FNV-1a hashing.
//!
//! The workspace content-addresses planning artifacts: a streaming plan is
//! a pure function of `(CF vector, D, algorithm, scheduler, Mc, q', reuse)`,
//! so a stable 64-bit digest of those inputs identifies the plan across
//! runs, processes and machines. `std`'s default hasher is seeded per
//! process (`RandomState`), which makes it useless as a content address;
//! this crate provides the classic FNV-1a function instead — tiny, fast on
//! short keys, and bit-for-bit reproducible.
//!
//! Two entry points:
//!
//! - [`fnv1a_64`] digests a byte slice directly (for hand-fed canonical
//!   encodings);
//! - [`Fnv64`] implements [`std::hash::Hasher`] so any `#[derive(Hash)]`
//!   type can be digested, and [`FnvBuildHasher`] plugs the same function
//!   into `HashMap`/`HashSet` for deterministic (and DoS-irrelevant,
//!   in-process) table behavior.
//!
//! # Examples
//!
//! ```
//! use dmf_hash::{fnv1a_64, FnvBuildHasher};
//! use std::collections::HashMap;
//!
//! // The digest is stable across processes.
//! assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
//! assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
//!
//! let mut map: HashMap<&str, u32, FnvBuildHasher> = HashMap::default();
//! map.insert("pcr", 4);
//! assert_eq!(map.get("pcr"), Some(&4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hash::{BuildHasher, Hasher};

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Mixes a 64-bit value through FNV-1a over its little-endian bytes.
///
/// This is the workspace's deterministic ID scrambler: feeding a plain
/// sequence counter through `mix64` yields well-distributed span/trace
/// identifiers without any per-process random seed, so identical runs
/// produce identical ID streams.
#[must_use]
pub fn mix64(value: u64) -> u64 {
    fnv1a_64(&value.to_le_bytes())
}

/// Digests `bytes` with 64-bit FNV-1a.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`Hasher`] running 64-bit FNV-1a — deterministic across processes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher starting from the standard offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A [`BuildHasher`] producing [`Fnv64`] hashers, usable as the `S`
/// parameter of `HashMap`/`HashSet` for deterministic iteration-free
/// lookups keyed by short structured keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = Fnv64;

    fn build_hasher(&self) -> Fnv64 {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn mix64_is_stable_and_injective_on_small_sequences() {
        assert_eq!(mix64(0), fnv1a_64(&[0u8; 8]));
        let mut seen = std::collections::HashSet::new();
        for seq in 0..10_000u64 {
            assert!(seen.insert(mix64(seq)), "collision at {seq}");
        }
    }

    #[test]
    fn hasher_matches_direct_function() {
        let mut h = Fnv64::new();
        h.write(b"droplet");
        assert_eq!(h.finish(), fnv1a_64(b"droplet"));
    }

    #[test]
    fn derived_hash_is_stable() {
        // The whole point: the same value must digest identically in every
        // process, so a content address computed today is valid tomorrow.
        #[derive(Hash)]
        struct Key {
            parts: Vec<u64>,
            demand: u64,
        }
        let digest = |k: &Key| {
            let mut h = Fnv64::new();
            k.hash(&mut h);
            h.finish()
        };
        let a = Key { parts: vec![2, 1, 1, 1, 1, 1, 9], demand: 20 };
        let b = Key { parts: vec![2, 1, 1, 1, 1, 1, 9], demand: 20 };
        let c = Key { parts: vec![2, 1, 1, 1, 1, 1, 9], demand: 22 };
        assert_eq!(digest(&a), digest(&b));
        assert_ne!(digest(&a), digest(&c));
    }

    #[test]
    fn build_hasher_drives_hashmap() {
        let mut map: std::collections::HashMap<u64, &str, FnvBuildHasher> =
            std::collections::HashMap::default();
        map.insert(7, "seven");
        map.insert(11, "eleven");
        assert_eq!(map.get(&7), Some(&"seven"));
        assert_eq!(map.len(), 2);
    }
}
