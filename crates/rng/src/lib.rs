//! Deterministic pseudo-random numbers without external dependencies.
//!
//! The build environment has no network access to crates.io, so the
//! workspace cannot depend on the `rand` crate. This crate provides the
//! small API surface the workspace actually uses — seedable generation,
//! ranged sampling and slice shuffling — with `rand`-compatible names
//! ([`StdRng`], [`Rng`], [`SeedableRng`], [`SliceRandom`]) so call sites
//! only change their import path.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s small RNGs use. It is deterministic per seed
//! across platforms, which the schedulers, the placer and the corpus
//! sampler all rely on for reproducible experiments. It is **not**
//! cryptographically secure and must never gate anything
//! security-sensitive.
//!
//! # Examples
//!
//! ```
//! use dmf_rng::{Rng, SeedableRng, SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! let mut v = vec![1, 2, 3, 4, 5];
//! v.shuffle(&mut rng);
//! assert_eq!(StdRng::seed_from_u64(7).gen_range(0..100u64), StdRng::seed_from_u64(7).gen_range(0..100u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Construction of a generator from a seed, mirroring
/// `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors (Blackman & Vigna).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl StdRng {
    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from a generator's raw output —
/// the counterpart of `rand`'s `Standard` distribution.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, like `rand`.
    fn sample_from(self, rng: &mut StdRng) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by Lemire-style rejection on the top
/// bits (debiased modulo).
fn bounded(rng: &mut StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling methods on a generator, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws one uniform value of type `T`.
    fn gen<T: Sample>(&mut self) -> T;
    /// Draws one value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = bounded(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(124);
        assert_ne!(StdRng::seed_from_u64(123).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(rng.gen_range(3..17u64) >= 3);
            assert!(rng.gen_range(3..17u64) < 17);
            let v = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
            assert!(rng.gen_range(0..1usize) == 0);
        }
    }

    #[test]
    fn all_residues_reachable() {
        // Every value of a small range appears over enough draws.
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly likely to differ from identity.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
