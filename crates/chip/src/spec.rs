use crate::{ChipError, Coord, Module, ModuleId, ModuleKind, Rect};
use std::collections::BTreeSet;
use std::fmt;

/// A complete biochip description: a `width × height` electrode array with
/// a set of placed modules.
///
/// The spec enforces the geometric rules a manufacturable DMF layout needs:
/// every footprint inside the array, and a one-cell guard band between any
/// two modules so droplets can route past them without accidental merging.
///
/// # Examples
///
/// ```
/// use dmf_chip::{ChipSpec, ModuleKind, Rect};
///
/// # fn main() -> Result<(), dmf_chip::ChipError> {
/// let mut chip = ChipSpec::new(12, 8)?;
/// let m1 = chip.add_module("M1", ModuleKind::Mixer, Rect::new(5, 3, 2, 2))?;
/// let r1 = chip.add_module("R1", ModuleKind::Reservoir { fluid: 0 }, Rect::new(0, 0, 1, 1))?;
/// chip.validate()?;
/// assert_eq!(chip.transport_cost(r1, m1), chip.module(r1).port().manhattan(chip.module(m1).port()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipSpec {
    width: i32,
    height: i32,
    modules: Vec<Module>,
    dead: BTreeSet<Coord>,
}

impl ChipSpec {
    /// Creates an empty chip with the given electrode-array dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::EmptyGrid`] for non-positive dimensions.
    pub fn new(width: i32, height: i32) -> Result<Self, ChipError> {
        if width <= 0 || height <= 0 {
            return Err(ChipError::EmptyGrid);
        }
        Ok(ChipSpec { width, height, modules: Vec::new(), dead: BTreeSet::new() })
    }

    /// Electrode-array width.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Electrode-array height.
    pub fn height(&self) -> i32 {
        self.height
    }

    /// Whether a cell lies on the electrode array.
    pub fn in_bounds(&self, c: Coord) -> bool {
        c.x >= 0 && c.x < self.width && c.y >= 0 && c.y < self.height
    }

    /// Adds a module (port defaults to the footprint centre) and returns its
    /// id.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::OutOfBounds`] or [`ChipError::Overlap`] when the
    /// footprint does not fit.
    pub fn add_module(
        &mut self,
        name: impl Into<String>,
        kind: ModuleKind,
        rect: Rect,
    ) -> Result<ModuleId, ChipError> {
        let id = ModuleId(self.modules.len());
        let module = Module::new(id, name, kind, rect);
        self.check_fits(&module)?;
        self.modules.push(module);
        Ok(id)
    }

    fn check_fits(&self, module: &Module) -> Result<(), ChipError> {
        let r = module.rect();
        let inside = r.x >= 0 && r.y >= 0 && r.x + r.w <= self.width && r.y + r.h <= self.height;
        if !inside {
            return Err(ChipError::OutOfBounds { module: module.id() });
        }
        for other in &self.modules {
            if other.rect().touches(&r) {
                return Err(ChipError::Overlap { a: other.id(), b: module.id() });
            }
        }
        Ok(())
    }

    /// All modules in placement order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Accesses a module.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chip.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.0]
    }

    /// Accesses a module, rejecting ids from another chip.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownModule`] if `id` does not belong to
    /// this chip.
    pub fn try_module(&self, id: ModuleId) -> Result<&Module, ChipError> {
        self.modules.get(id.0).ok_or(ChipError::UnknownModule { module: id })
    }

    /// Looks up a module by name.
    pub fn module_by_name(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name() == name)
    }

    /// The mixers, in placement order.
    pub fn mixers(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter().filter(|m| m.is_mixer())
    }

    /// The fluid reservoirs, in placement order.
    pub fn reservoirs(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter().filter(|m| matches!(m.kind(), ModuleKind::Reservoir { .. }))
    }

    /// The reservoir dispensing `fluid`, if present.
    pub fn reservoir_for(&self, fluid: usize) -> Option<&Module> {
        self.modules
            .iter()
            .find(|m| matches!(m.kind(), ModuleKind::Reservoir { fluid: f } if f == fluid))
    }

    /// The storage cells, in placement order.
    pub fn storage_cells(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter().filter(|m| matches!(m.kind(), ModuleKind::Storage))
    }

    /// The waste reservoirs, in placement order.
    pub fn waste_reservoirs(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter().filter(|m| matches!(m.kind(), ModuleKind::Waste))
    }

    /// The output ports, in placement order.
    pub fn outputs(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter().filter(|m| matches!(m.kind(), ModuleKind::Output))
    }

    /// Droplet-transportation cost between two module ports, in electrodes
    /// (Manhattan distance — the unit of the paper's Fig. 5 matrix).
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this chip.
    pub fn transport_cost(&self, a: ModuleId, b: ModuleId) -> u32 {
        self.module(a).port().manhattan(self.module(b).port())
    }

    /// Cells covered by any module except `allow` (used as routing
    /// obstacles).
    pub fn obstacles(&self, allow: &[ModuleId]) -> Vec<Coord> {
        self.modules
            .iter()
            .filter(|m| !allow.contains(&m.id()))
            .flat_map(|m| m.rect().cells().collect::<Vec<_>>())
            .collect()
    }

    /// Marks an electrode as permanently stuck (a diagnosed stuck-at
    /// fault). Dead cells are excluded from routing by
    /// [`crate::ChipSpec::dead_cells`] consumers; marking a cell outside
    /// the array is a no-op.
    pub fn mark_dead(&mut self, cell: Coord) {
        if self.in_bounds(cell) {
            self.dead.insert(cell);
        }
    }

    /// Whether `cell` has been diagnosed dead via
    /// [`ChipSpec::mark_dead`].
    pub fn is_dead(&self, cell: Coord) -> bool {
        self.dead.contains(&cell)
    }

    /// The diagnosed-dead electrodes in coordinate order.
    pub fn dead_cells(&self) -> impl Iterator<Item = Coord> + '_ {
        self.dead.iter().copied()
    }

    /// Re-validates all geometric rules (useful after deserialisation).
    ///
    /// # Errors
    ///
    /// Returns the first violated rule as a [`ChipError`].
    pub fn validate(&self) -> Result<(), ChipError> {
        for (i, m) in self.modules.iter().enumerate() {
            let r = m.rect();
            let inside =
                r.x >= 0 && r.y >= 0 && r.x + r.w <= self.width && r.y + r.h <= self.height;
            if !inside {
                return Err(ChipError::OutOfBounds { module: m.id() });
            }
            for other in &self.modules[i + 1..] {
                if other.rect().touches(&r) {
                    return Err(ChipError::Overlap { a: m.id(), b: other.id() });
                }
            }
        }
        Ok(())
    }

    /// Checks the chip can run a streaming engine over `fluid_count` fluids:
    /// at least one mixer, one reservoir per fluid, one waste reservoir and
    /// one output port.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::MissingResource`] naming the first gap.
    pub fn validate_for_engine(&self, fluid_count: usize) -> Result<(), ChipError> {
        if self.mixers().next().is_none() {
            return Err(ChipError::MissingResource { what: "a mixer".into() });
        }
        for fluid in 0..fluid_count {
            if self.reservoir_for(fluid).is_none() {
                return Err(ChipError::MissingResource {
                    what: format!("a reservoir for fluid x{}", fluid + 1),
                });
            }
        }
        if self.waste_reservoirs().next().is_none() {
            return Err(ChipError::MissingResource { what: "a waste reservoir".into() });
        }
        if self.outputs().next().is_none() {
            return Err(ChipError::MissingResource { what: "an output port".into() });
        }
        Ok(())
    }

    /// Renders the layout as ASCII art (one character per electrode).
    pub fn render(&self) -> String {
        let mut grid = vec![vec!['.'; self.width as usize]; self.height as usize];
        for m in &self.modules {
            let ch = match m.kind() {
                ModuleKind::Mixer => 'M',
                ModuleKind::Reservoir { .. } => 'R',
                ModuleKind::Storage => 'q',
                ModuleKind::Waste => 'W',
                ModuleKind::Output => 'O',
            };
            for c in m.rect().cells() {
                grid[c.y as usize][c.x as usize] = ch;
            }
        }
        for c in &self.dead {
            grid[c.y as usize][c.x as usize] = 'x';
        }
        grid.into_iter().map(|row| row.into_iter().collect::<String>() + "\n").collect()
    }
}

impl fmt::Display for ChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}x{} chip, {} modules:", self.width, self.height, self.modules.len())?;
        for m in &self.modules {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_grid() {
        assert_eq!(ChipSpec::new(0, 5), Err(ChipError::EmptyGrid));
    }

    #[test]
    fn rejects_out_of_bounds_module() {
        let mut chip = ChipSpec::new(4, 4).unwrap();
        let err = chip.add_module("M1", ModuleKind::Mixer, Rect::new(3, 3, 2, 2)).unwrap_err();
        assert!(matches!(err, ChipError::OutOfBounds { .. }));
    }

    #[test]
    fn rejects_guard_band_violation() {
        let mut chip = ChipSpec::new(10, 10).unwrap();
        chip.add_module("M1", ModuleKind::Mixer, Rect::new(0, 0, 2, 2)).unwrap();
        // Directly adjacent: violates the one-cell guard band.
        let err = chip.add_module("M2", ModuleKind::Mixer, Rect::new(2, 0, 2, 2)).unwrap_err();
        assert!(matches!(err, ChipError::Overlap { .. }));
        // One cell apart: fine.
        chip.add_module("M2", ModuleKind::Mixer, Rect::new(3, 0, 2, 2)).unwrap();
        chip.validate().unwrap();
    }

    #[test]
    fn lookup_by_kind_and_name() {
        let mut chip = ChipSpec::new(12, 8).unwrap();
        chip.add_module("R1", ModuleKind::Reservoir { fluid: 0 }, Rect::new(0, 0, 1, 1)).unwrap();
        chip.add_module("R2", ModuleKind::Reservoir { fluid: 1 }, Rect::new(0, 2, 1, 1)).unwrap();
        chip.add_module("M1", ModuleKind::Mixer, Rect::new(4, 3, 2, 2)).unwrap();
        assert_eq!(chip.reservoirs().count(), 2);
        assert_eq!(chip.reservoir_for(1).unwrap().name(), "R2");
        assert!(chip.reservoir_for(2).is_none());
        assert_eq!(chip.module_by_name("M1").unwrap().kind(), ModuleKind::Mixer);
        assert_eq!(chip.try_module(ModuleId(2)).unwrap().name(), "M1");
        assert!(matches!(
            chip.try_module(ModuleId(9)),
            Err(ChipError::UnknownModule { module: ModuleId(9) })
        ));
    }

    #[test]
    fn engine_validation_lists_gaps() {
        let mut chip = ChipSpec::new(12, 8).unwrap();
        chip.add_module("M1", ModuleKind::Mixer, Rect::new(4, 3, 2, 2)).unwrap();
        chip.add_module("R1", ModuleKind::Reservoir { fluid: 0 }, Rect::new(0, 0, 1, 1)).unwrap();
        let err = chip.validate_for_engine(2).unwrap_err();
        assert!(matches!(err, ChipError::MissingResource { ref what } if what.contains("x2")));
    }

    #[test]
    fn dead_cells_are_tracked_and_rendered() {
        let mut chip = ChipSpec::new(6, 4).unwrap();
        assert!(!chip.is_dead(Coord::new(1, 1)));
        chip.mark_dead(Coord::new(1, 1));
        chip.mark_dead(Coord::new(9, 9)); // out of bounds: ignored
        assert!(chip.is_dead(Coord::new(1, 1)));
        assert_eq!(chip.dead_cells().collect::<Vec<_>>(), vec![Coord::new(1, 1)]);
        assert!(chip.render().contains('x'));
    }

    #[test]
    fn render_shows_modules() {
        let mut chip = ChipSpec::new(6, 4).unwrap();
        chip.add_module("M1", ModuleKind::Mixer, Rect::new(2, 1, 2, 2)).unwrap();
        let art = chip.render();
        assert!(art.contains('M'));
        assert_eq!(art.lines().count(), 4);
    }
}
