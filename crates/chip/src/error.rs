use crate::ModuleId;
use std::error::Error;
use std::fmt;

/// Error raised while constructing or validating a chip specification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipError {
    /// The electrode array has a non-positive dimension.
    EmptyGrid,
    /// A module footprint leaves the electrode array.
    OutOfBounds {
        /// The offending module.
        module: ModuleId,
    },
    /// Two module footprints overlap or violate the one-cell guard band.
    Overlap {
        /// First module.
        a: ModuleId,
        /// Second module.
        b: ModuleId,
    },
    /// A referenced module does not exist.
    UnknownModule {
        /// The missing module.
        module: ModuleId,
    },
    /// The chip is missing a module kind required for operation
    /// (e.g. no mixer, or no reservoir for a needed fluid).
    MissingResource {
        /// Human-readable description of what is missing.
        what: String,
    },
    /// Placement could not fit all requested modules on the grid.
    PlacementFailed {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::EmptyGrid => write!(f, "electrode array must have positive dimensions"),
            ChipError::OutOfBounds { module } => {
                write!(f, "module {module} leaves the electrode array")
            }
            ChipError::Overlap { a, b } => {
                write!(f, "modules {a} and {b} overlap or violate the guard band")
            }
            ChipError::UnknownModule { module } => write!(f, "unknown module {module}"),
            ChipError::MissingResource { what } => write!(f, "chip is missing {what}"),
            ChipError::PlacementFailed { reason } => write!(f, "placement failed: {reason}"),
        }
    }
}

impl Error for ChipError {}
