//! Placement strategies as trait objects and the name-keyed placement
//! registry.
//!
//! Mirrors the algorithm/scheduler registries in `dmf-mixalgo` and
//! `dmf-sched`: a [`PlacementId`] is a `Copy` handle carrying a stable
//! wire key, a display label and the strategy object. Both seeded
//! strategies run through [`Placer::place_with`], so they honour the
//! [`PlacementContext`]'s dead-cell avoidance and wear-aware cost term.

use crate::place::{FlowMatrix, PlacementConfig, PlacementContext, PlacementRequest, Placer};
use crate::{ChipError, ChipSpec};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A module-placement strategy: places `requests` on a
/// `config.width × config.height` grid, minimising flow-weighted transport
/// cost under the context's dead-cell and wear constraints.
pub trait PlacementStrategy {
    /// Short identifier used in reports ("annealing", "greedy", …).
    fn name(&self) -> &'static str;

    /// Places all requested modules.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::PlacementFailed`] when no legal placement
    /// exists and propagates grid-construction errors.
    fn place(
        &self,
        config: &PlacementConfig,
        requests: &[PlacementRequest],
        flows: &FlowMatrix,
        ctx: &PlacementContext,
    ) -> Result<ChipSpec, ChipError>;
}

/// The default greedy + simulated-annealing placer ([`Placer`]) — runs the
/// full annealing schedule from `config`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnealingPlacement;

impl PlacementStrategy for AnnealingPlacement {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn place(
        &self,
        config: &PlacementConfig,
        requests: &[PlacementRequest],
        flows: &FlowMatrix,
        ctx: &PlacementContext,
    ) -> Result<ChipSpec, ChipError> {
        Placer::new(config.clone()).place_with(requests, flows, ctx)
    }
}

/// Greedy-only placement: the annealer's initial placement with zero
/// refinement iterations. Deterministic and fast; useful as a lower
/// baseline and for tests that only need a legal layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyPlacement;

impl PlacementStrategy for GreedyPlacement {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn place(
        &self,
        config: &PlacementConfig,
        requests: &[PlacementRequest],
        flows: &FlowMatrix,
        ctx: &PlacementContext,
    ) -> Result<ChipSpec, ChipError> {
        let greedy = PlacementConfig { iterations: 0, ..config.clone() };
        Placer::new(greedy).place_with(requests, flows, ctx)
    }
}

/// A registered placement strategy. Equality and hashing use the key only;
/// the registry enforces key uniqueness.
#[derive(Clone, Copy)]
pub struct PlacementId {
    key: &'static str,
    label: &'static str,
    strategy: &'static (dyn PlacementStrategy + Send + Sync),
}

impl PlacementId {
    /// The simulated-annealing placer (`"annealing"`), the default.
    pub const ANNEALING: PlacementId =
        PlacementId::new("annealing", "Annealing", &AnnealingPlacement);
    /// The greedy-only placer (`"greedy"`).
    pub const GREEDY: PlacementId = PlacementId::new("greedy", "Greedy", &GreedyPlacement);

    /// Creates an id; `key` is the stable wire name.
    pub const fn new(
        key: &'static str,
        label: &'static str,
        strategy: &'static (dyn PlacementStrategy + Send + Sync),
    ) -> Self {
        PlacementId { key, label, strategy }
    }

    /// The stable wire key.
    pub fn key(self) -> &'static str {
        self.key
    }

    /// The display label.
    pub fn label(self) -> &'static str {
        self.label
    }

    /// The strategy object behind the id.
    pub fn strategy(self) -> &'static dyn PlacementStrategy {
        self.strategy
    }
}

impl PartialEq for PlacementId {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for PlacementId {}

impl Hash for PlacementId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key.hash(state);
    }
}

impl fmt::Debug for PlacementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PlacementId").field(&self.key).finish()
    }
}

impl fmt::Display for PlacementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label)
    }
}

/// One registry row: the id, a one-line description and lookup aliases.
#[derive(Clone, Copy, Debug)]
pub struct PlacementEntry {
    /// The strategy id.
    pub id: PlacementId,
    /// One-line description for listings.
    pub description: &'static str,
    /// Extra accepted names.
    pub aliases: &'static [&'static str],
}

/// The name `name` did not resolve to any registered placement strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPlacementError {
    /// The name that failed to resolve.
    pub name: String,
    /// The keys currently registered, in registration order.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownPlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown placement strategy {:?} (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownPlacementError {}

/// A strategy with a clashing key, label or alias is already registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicatePlacementError {
    /// The clashing name.
    pub key: String,
}

impl fmt::Display for DuplicatePlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "placement strategy {:?} is already registered", self.key)
    }
}

impl std::error::Error for DuplicatePlacementError {}

/// The process-wide placement registry, seeded with annealing and greedy.
pub struct PlacementRegistry;

static REGISTRY: OnceLock<RwLock<Vec<PlacementEntry>>> = OnceLock::new();

fn store() -> &'static RwLock<Vec<PlacementEntry>> {
    REGISTRY.get_or_init(|| {
        RwLock::new(vec![
            PlacementEntry {
                id: PlacementId::ANNEALING,
                description: "greedy seed + simulated annealing over flow-weighted \
                              transport cost; wear- and dead-cell-aware (default)",
                aliases: &["sa"],
            },
            PlacementEntry {
                id: PlacementId::GREEDY,
                description: "greedy initial placement only (zero annealing \
                              iterations); fast deterministic baseline",
                aliases: &[],
            },
        ])
    })
}

fn read() -> RwLockReadGuard<'static, Vec<PlacementEntry>> {
    store().read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write() -> RwLockWriteGuard<'static, Vec<PlacementEntry>> {
    store().write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl PlacementRegistry {
    /// All registered strategies, in registration order.
    pub fn entries() -> Vec<PlacementEntry> {
        read().clone()
    }

    /// Resolves `name` against keys, labels and aliases,
    /// case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownPlacementError`] (listing the registered keys) when
    /// nothing matches.
    pub fn resolve(name: &str) -> Result<PlacementId, UnknownPlacementError> {
        let entries = read();
        for entry in entries.iter() {
            if entry.id.key.eq_ignore_ascii_case(name)
                || entry.id.label.eq_ignore_ascii_case(name)
                || entry.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
            {
                return Ok(entry.id);
            }
        }
        Err(UnknownPlacementError {
            name: name.to_owned(),
            known: entries.iter().map(|e| e.id.key).collect(),
        })
    }

    /// Registers a new strategy; names must not clash case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicatePlacementError`] on a name clash; the registry is
    /// left unchanged.
    pub fn register(entry: PlacementEntry) -> Result<(), DuplicatePlacementError> {
        let mut entries = write();
        let mut new_names = vec![entry.id.key, entry.id.label];
        new_names.extend(entry.aliases);
        for existing in entries.iter() {
            let mut names = vec![existing.id.key, existing.id.label];
            names.extend(existing.aliases);
            for name in &names {
                if new_names.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                    return Err(DuplicatePlacementError { key: (*name).to_owned() });
                }
            }
        }
        entries.push(entry);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::ModuleKind;

    fn pcr_requests() -> (Vec<PlacementRequest>, FlowMatrix) {
        let mut requests: Vec<PlacementRequest> = (0..3)
            .map(|i| PlacementRequest::conventional(format!("mx{i}"), ModuleKind::Mixer))
            .collect();
        requests.push(PlacementRequest::conventional("r0", ModuleKind::Reservoir { fluid: 0 }));
        requests.push(PlacementRequest::conventional("w0", ModuleKind::Waste));
        let mut flows = FlowMatrix::new();
        flows.add(3, 0, 4.0);
        flows.add(3, 1, 2.0);
        flows.add(0, 4, 1.0);
        (requests, flows)
    }

    #[test]
    fn registry_annealing_is_byte_identical_to_the_direct_placer() {
        let (requests, flows) = pcr_requests();
        let config = PlacementConfig { iterations: 200, ..PlacementConfig::default() };
        let direct = Placer::new(config.clone()).place(&requests, &flows).unwrap();
        let via_registry = PlacementRegistry::resolve("annealing")
            .unwrap()
            .strategy()
            .place(&config, &requests, &flows, &PlacementContext::default())
            .unwrap();
        assert_eq!(direct.to_svg(), via_registry.to_svg(), "registry dispatch changed the layout");
    }

    #[test]
    fn greedy_strategy_places_legally_without_annealing() {
        let (requests, flows) = pcr_requests();
        let chip = PlacementId::GREEDY
            .strategy()
            .place(&PlacementConfig::default(), &requests, &flows, &PlacementContext::default())
            .unwrap();
        chip.validate().unwrap();
        assert_eq!(chip.mixers().count(), 3);
    }

    #[test]
    fn unknown_strategy_lists_known_keys_and_duplicates_are_rejected() {
        let err = PlacementRegistry::resolve("quantum").unwrap_err();
        assert!(err.known.contains(&"annealing") && err.known.contains(&"greedy"));
        let clash = PlacementEntry {
            id: PlacementId::new("sa", "SA", &AnnealingPlacement),
            description: "clashes with the annealing alias",
            aliases: &[],
        };
        assert!(PlacementRegistry::register(clash).is_err());
    }
}
