//! Digital-microfluidic biochip model: electrode grid, on-chip modules,
//! layouts, droplet-transport costs and resource placement.
//!
//! The DAC 2014 paper validates its streaming engine on a simulated PCR
//! chip (Fig. 5) with seven fluid reservoirs, three 2×2 mixers, five storage
//! cells and two waste reservoirs, where the relative positions of modules
//! are optimised for total droplet-transportation cost (measured in the
//! number of electrodes a droplet traverses). This crate provides that
//! substrate:
//!
//! * [`ChipSpec`] — a rectangular electrode array plus a set of placed
//!   [`Module`]s, with geometric validation (bounds, overlap, reachability);
//! * [`CostMatrix`] — module-to-mixer transport costs;
//!   [`CostMatrix::fig5_pcr`] encodes the matrix published in the paper;
//! * [`Placer`] — a greedy + simulated-annealing placement optimiser that
//!   reproduces the paper's "relative positions of reservoirs and mixers
//!   are optimized considering the total droplet-transportation cost"
//!   design step;
//! * [`presets::pcr_chip`] — a ready-made chip with the Fig. 5 resource
//!   inventory, used by the examples and the end-to-end simulator.
//!
//! # Examples
//!
//! ```
//! use dmf_chip::presets::pcr_chip;
//!
//! let chip = pcr_chip();
//! assert_eq!(chip.mixers().count(), 3);
//! assert_eq!(chip.reservoirs().count(), 7);
//! assert_eq!(chip.storage_cells().count(), 5);
//! chip.validate().expect("preset chip is well-formed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod error;
mod geom;
mod module;
mod place;
pub mod presets;
mod registry;
mod spec;
mod svg;

pub use cost::CostMatrix;
pub use error::ChipError;
pub use geom::{Coord, Rect};
pub use module::{Module, ModuleId, ModuleKind};
pub use place::{FlowMatrix, PlacementConfig, PlacementContext, PlacementRequest, Placer, WearMap};
pub use registry::{
    AnnealingPlacement, DuplicatePlacementError, GreedyPlacement, PlacementEntry, PlacementId,
    PlacementRegistry, PlacementStrategy, UnknownPlacementError,
};
pub use spec::ChipSpec;
