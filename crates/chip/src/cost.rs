use crate::{ChipSpec, ModuleId};
use std::collections::HashMap;
use std::fmt;

/// A named droplet-transportation cost table: cost (in electrodes) from
/// every module to every mixer.
///
/// [`CostMatrix::fig5_pcr`] reproduces the matrix published in the paper's
/// Fig. 5 for the PCR master-mix chip; [`CostMatrix::from_spec`] derives a
/// matrix from any [`ChipSpec`] geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostMatrix {
    rows: Vec<String>,
    mixers: Vec<String>,
    costs: Vec<Vec<u32>>,
    index: HashMap<String, usize>,
}

impl CostMatrix {
    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics when a row's cost count differs from the mixer count.
    pub fn new(mixers: Vec<String>, entries: Vec<(String, Vec<u32>)>) -> Self {
        let mut rows = Vec::with_capacity(entries.len());
        let mut costs = Vec::with_capacity(entries.len());
        let mut index = HashMap::new();
        for (name, row) in entries {
            assert_eq!(row.len(), mixers.len(), "row {name} must cover every mixer");
            index.insert(name.clone(), rows.len());
            rows.push(name);
            costs.push(row);
        }
        CostMatrix { rows, mixers, costs, index }
    }

    /// The droplet-transportation cost matrix published in the paper's
    /// Fig. 5: seven reservoirs, five storage cells, two waste reservoirs
    /// and three mixers on the PCR master-mix chip.
    ///
    /// Values are transcribed from the paper (the print quality leaves a
    /// couple of storage-row entries ambiguous; the symmetric reading is
    /// used and noted in `EXPERIMENTS.md`).
    pub fn fig5_pcr() -> Self {
        let mixers = vec!["M1".into(), "M2".into(), "M3".into()];
        let entries: Vec<(String, Vec<u32>)> = vec![
            ("R1".into(), vec![8, 3, 8]),
            ("R2".into(), vec![14, 9, 4]),
            ("R3".into(), vec![17, 12, 3]),
            ("R4".into(), vec![4, 9, 14]),
            ("R5".into(), vec![3, 12, 17]),
            ("R6".into(), vec![11, 6, 5]),
            ("R7".into(), vec![5, 6, 11]),
            ("q1".into(), vec![5, 10, 15]),
            ("q2".into(), vec![5, 6, 11]),
            ("q3".into(), vec![8, 3, 8]),
            ("q4".into(), vec![11, 6, 5]),
            ("q5".into(), vec![15, 10, 5]),
            ("W1".into(), vec![17, 12, 7]),
            ("W2".into(), vec![7, 12, 17]),
            ("M1".into(), vec![0, 4, 13]),
            ("M2".into(), vec![4, 0, 4]),
            ("M3".into(), vec![13, 4, 0]),
        ];
        CostMatrix::new(mixers, entries)
    }

    /// Derives the matrix from a chip's geometry (Manhattan distances
    /// between module ports).
    pub fn from_spec(spec: &ChipSpec) -> Self {
        let mixer_mods: Vec<ModuleId> = spec.mixers().map(|m| m.id()).collect();
        let mixers: Vec<String> =
            mixer_mods.iter().map(|&m| spec.module(m).name().to_owned()).collect();
        let entries: Vec<(String, Vec<u32>)> = spec
            .modules()
            .iter()
            .map(|m| {
                (
                    m.name().to_owned(),
                    mixer_mods.iter().map(|&x| spec.transport_cost(m.id(), x)).collect(),
                )
            })
            .collect();
        CostMatrix::new(mixers, entries)
    }

    /// Row names (module names).
    pub fn rows(&self) -> &[String] {
        &self.rows
    }

    /// Column names (mixer names).
    pub fn mixers(&self) -> &[String] {
        &self.mixers
    }

    /// Cost from module `from` to mixer column `mixer_idx`.
    pub fn cost(&self, from: &str, mixer_idx: usize) -> Option<u32> {
        let &row = self.index.get(from)?;
        self.costs.get(row)?.get(mixer_idx).copied()
    }

    /// Cost between two named modules, provided at least one is a mixer
    /// (the matrix only carries module-to-mixer entries).
    pub fn cost_between(&self, a: &str, b: &str) -> Option<u32> {
        if let Some(idx) = self.mixers.iter().position(|m| m == b) {
            return self.cost(a, idx);
        }
        if let Some(idx) = self.mixers.iter().position(|m| m == a) {
            return self.cost(b, idx);
        }
        None
    }
}

impl fmt::Display for CostMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>6}", "")?;
        for m in &self.mixers {
            write!(f, " {m:>4}")?;
        }
        writeln!(f)?;
        for (name, row) in self.rows.iter().zip(&self.costs) {
            write!(f, "{name:>6}")?;
            for c in row {
                write!(f, " {c:>4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModuleKind, Rect};

    #[test]
    fn fig5_matrix_is_complete_and_symmetric_between_mixers() {
        let m = CostMatrix::fig5_pcr();
        assert_eq!(m.mixers().len(), 3);
        assert_eq!(m.rows().len(), 17);
        assert_eq!(m.cost("R1", 1), Some(3));
        assert_eq!(m.cost("M1", 0), Some(0));
        // Mixer-to-mixer block is symmetric.
        assert_eq!(m.cost("M1", 2), m.cost("M3", 0));
        assert_eq!(m.cost_between("R4", "M1"), Some(4));
        assert_eq!(m.cost_between("M2", "q3"), Some(3));
        assert_eq!(m.cost_between("R1", "R2"), None);
    }

    #[test]
    fn from_spec_uses_port_distances() {
        let mut chip = ChipSpec::new(12, 8).unwrap();
        chip.add_module("R1", ModuleKind::Reservoir { fluid: 0 }, Rect::new(0, 0, 1, 1)).unwrap();
        chip.add_module("M1", ModuleKind::Mixer, Rect::new(4, 0, 2, 2)).unwrap();
        let m = CostMatrix::from_spec(&chip);
        assert_eq!(m.cost("R1", 0), Some(4));
        assert_eq!(m.cost("M1", 0), Some(0));
    }

    #[test]
    fn display_renders_a_table() {
        let text = CostMatrix::fig5_pcr().to_string();
        assert!(text.contains("M1"));
        assert!(text.contains("q5"));
    }
}
