//! Ready-made chip layouts.
//!
//! [`streaming_chip`] generates a generic streaming-engine layout for any
//! resource inventory (reservoirs across the top edge, mixers across the
//! middle, storage cells along the bottom, waste and output on the bottom
//! edge — the organisation of the paper's Fig. 5), and [`pcr_chip`] is the
//! PCR master-mix instance used throughout the paper: seven reservoirs,
//! three mixers, five storage cells, two waste reservoirs.

use crate::{ChipError, ChipSpec, ModuleKind, Rect};

/// Generates a streaming-engine chip for `fluids` reagents, `mixers`
/// mixers and `storage` storage cells.
///
/// The layout follows the paper's Fig. 5 organisation: reservoirs on the
/// top edge, 2×2 mixers across the middle band, storage cells one row above
/// the bottom edge, two waste reservoirs in the bottom corners and one
/// output port at the bottom centre. All guard-band rules hold by
/// construction.
///
/// # Errors
///
/// Returns [`ChipError::MissingResource`] when any count is zero.
///
/// # Examples
///
/// ```
/// use dmf_chip::presets::streaming_chip;
///
/// # fn main() -> Result<(), dmf_chip::ChipError> {
/// let chip = streaming_chip(7, 3, 5)?;
/// chip.validate()?;
/// chip.validate_for_engine(7)?;
/// # Ok(())
/// # }
/// ```
pub fn streaming_chip(fluids: usize, mixers: usize, storage: usize) -> Result<ChipSpec, ChipError> {
    if fluids == 0 {
        return Err(ChipError::MissingResource { what: "at least one reservoir".into() });
    }
    if mixers == 0 {
        return Err(ChipError::MissingResource { what: "at least one mixer".into() });
    }
    let width = [
        1 + 3 * fluids as i32,  // reservoirs, pitch 3
        3 + 4 * mixers as i32,  // 2x2 mixers, pitch 4
        2 + 3 * storage as i32, // storage cells, pitch 3
    ]
    .into_iter()
    // 9: room for waste corners + centre output.
    .fold(9, i32::max)
        + 1;
    let height = 11;
    let mut spec = ChipSpec::new(width, height)?;
    for f in 0..fluids {
        spec.add_module(
            format!("R{}", f + 1),
            ModuleKind::Reservoir { fluid: f },
            Rect::new(1 + 3 * f as i32, 0, 1, 1),
        )?;
    }
    for m in 0..mixers {
        spec.add_module(
            format!("M{}", m + 1),
            ModuleKind::Mixer,
            Rect::new(3 + 4 * m as i32, 4, 2, 2),
        )?;
    }
    for s in 0..storage {
        spec.add_module(
            format!("q{}", s + 1),
            ModuleKind::Storage,
            Rect::new(2 + 3 * s as i32, 8, 1, 1),
        )?;
    }
    spec.add_module("W1", ModuleKind::Waste, Rect::new(0, height - 1, 1, 1))?;
    spec.add_module("W2", ModuleKind::Waste, Rect::new(width - 1, height - 1, 1, 1))?;
    spec.add_module("O1", ModuleKind::Output, Rect::new(width / 2, height - 1, 1, 1))?;
    Ok(spec)
}

/// The PCR master-mix chip of the paper's Fig. 5: seven fluid reservoirs,
/// three on-chip mixers, five storage cells, two waste reservoirs and an
/// output port.
///
/// # Panics
///
/// Never panics; the fixed inventory always fits its grid.
pub fn pcr_chip() -> ChipSpec {
    match streaming_chip(7, 3, 5) {
        Ok(chip) => chip,
        // streaming_chip only fails on a zero resource count.
        Err(_) => unreachable!("the Fig. 5 inventory always fits"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostMatrix;

    #[test]
    fn pcr_chip_matches_fig5_inventory() {
        let chip = pcr_chip();
        chip.validate().unwrap();
        chip.validate_for_engine(7).unwrap();
        assert_eq!(chip.reservoirs().count(), 7);
        assert_eq!(chip.mixers().count(), 3);
        assert_eq!(chip.storage_cells().count(), 5);
        assert_eq!(chip.waste_reservoirs().count(), 2);
        assert_eq!(chip.outputs().count(), 1);
    }

    #[test]
    fn generic_inventories_fit() {
        for (f, m, s) in [(2, 1, 1), (12, 5, 8), (10, 15, 30)] {
            let chip = streaming_chip(f, m, s).unwrap();
            chip.validate().unwrap();
            chip.validate_for_engine(f).unwrap();
        }
    }

    #[test]
    fn rejects_degenerate_inventories() {
        assert!(streaming_chip(0, 1, 1).is_err());
        assert!(streaming_chip(2, 0, 1).is_err());
    }

    #[test]
    fn cost_matrix_derivable_from_preset() {
        let chip = pcr_chip();
        let matrix = CostMatrix::from_spec(&chip);
        assert_eq!(matrix.mixers().len(), 3);
        // Distances are positive between distinct modules and zero on the
        // mixer diagonal.
        assert_eq!(matrix.cost("M1", 0), Some(0));
        assert!(matrix.cost("R1", 0).unwrap() > 0);
    }
}
