use std::fmt;

/// An electrode position on the chip grid (column `x`, row `y`; origin at
/// the top-left corner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Column index.
    pub x: i32,
    /// Row index.
    pub y: i32,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: i32, y: i32) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance — the number of electrode hops between two cells,
    /// the paper's droplet-transportation cost unit.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The four edge-adjacent cells (droplets move orthogonally).
    pub fn orthogonal_neighbors(self) -> [Coord; 4] {
        [
            Coord::new(self.x + 1, self.y),
            Coord::new(self.x - 1, self.y),
            Coord::new(self.x, self.y + 1),
            Coord::new(self.x, self.y - 1),
        ]
    }

    /// The eight surrounding cells — the fluidic-constraint neighborhood
    /// (droplets closer than this merge accidentally).
    pub fn all_neighbors(self) -> [Coord; 8] {
        [
            Coord::new(self.x - 1, self.y - 1),
            Coord::new(self.x, self.y - 1),
            Coord::new(self.x + 1, self.y - 1),
            Coord::new(self.x - 1, self.y),
            Coord::new(self.x + 1, self.y),
            Coord::new(self.x - 1, self.y + 1),
            Coord::new(self.x, self.y + 1),
            Coord::new(self.x + 1, self.y + 1),
        ]
    }

    /// Whether `other` is within the 8-neighborhood (or equal).
    pub fn touches(self, other: Coord) -> bool {
        (self.x - other.x).abs() <= 1 && (self.y - other.y).abs() <= 1
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangle of electrodes (module footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left column.
    pub x: i32,
    /// Top row.
    pub y: i32,
    /// Width in electrodes (>= 1).
    pub w: i32,
    /// Height in electrodes (>= 1).
    pub h: i32,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics when `w` or `h` is not positive.
    pub fn new(x: i32, y: i32, w: i32, h: i32) -> Self {
        assert!(w > 0 && h > 0, "rectangle must have positive extent");
        Rect { x, y, w, h }
    }

    /// A 1×1 rectangle at `c`.
    pub fn cell(c: Coord) -> Self {
        Rect::new(c.x, c.y, 1, 1)
    }

    /// Whether the cell lies inside the rectangle.
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.x && c.x < self.x + self.w && c.y >= self.y && c.y < self.y + self.h
    }

    /// Whether two rectangles share any cell.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.x + other.w
            && other.x < self.x + self.w
            && self.y < other.y + other.h
            && other.y < self.y + self.h
    }

    /// Whether two rectangles share a cell or touch within the fluidic
    /// 8-neighborhood (modules need a one-cell guard band).
    pub fn touches(&self, other: &Rect) -> bool {
        self.inflate(1).intersects(other)
    }

    /// The rectangle grown by `margin` cells on every side.
    pub fn inflate(&self, margin: i32) -> Rect {
        Rect {
            x: self.x - margin,
            y: self.y - margin,
            w: self.w + 2 * margin,
            h: self.h + 2 * margin,
        }
    }

    /// Iterates over every cell of the rectangle, row-major.
    pub fn cells(&self) -> impl Iterator<Item = Coord> + '_ {
        let (x, y, w) = (self.x, self.y, self.w);
        (0..self.w * self.h).map(move |i| Coord::new(x + i % w, y + i / w))
    }

    /// Number of electrodes covered.
    pub fn area(&self) -> u32 {
        (self.w * self.h) as u32
    }

    /// The cell closest to the rectangle's centre (rounded toward the
    /// top-left).
    pub fn center(&self) -> Coord {
        Coord::new(self.x + (self.w - 1) / 2, self.y + (self.h - 1) / 2)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{} at ({}, {})]", self.w, self.h, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(2, 2).manhattan(Coord::new(2, 2)), 0);
    }

    #[test]
    fn neighborhoods() {
        let c = Coord::new(5, 5);
        assert_eq!(c.orthogonal_neighbors().len(), 4);
        assert!(c.touches(Coord::new(6, 6)));
        assert!(c.touches(c));
        assert!(!c.touches(Coord::new(7, 5)));
    }

    #[test]
    fn rect_contains_and_cells() {
        let r = Rect::new(2, 3, 2, 2);
        assert!(r.contains(Coord::new(3, 4)));
        assert!(!r.contains(Coord::new(4, 4)));
        let cells: Vec<Coord> = r.cells().collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0], Coord::new(2, 3));
        assert_eq!(cells[3], Coord::new(3, 4));
        assert_eq!(r.area(), 4);
    }

    #[test]
    fn rect_intersection_and_guard_band() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(2, 2, 2, 2); // diagonal contact, no overlap
        assert!(!a.intersects(&b));
        assert!(a.touches(&b));
        let c = Rect::new(3, 3, 1, 1);
        assert!(!a.touches(&c));
    }

    #[test]
    fn center_of_even_rect() {
        assert_eq!(Rect::new(0, 0, 2, 2).center(), Coord::new(0, 0));
        assert_eq!(Rect::new(1, 1, 3, 3).center(), Coord::new(2, 2));
    }
}
