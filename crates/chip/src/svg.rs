//! SVG rendering of chip layouts — publication-style figures analogous to
//! the paper's Fig. 5.

use crate::{ChipSpec, ModuleKind};
use std::fmt::Write as _;

/// Edge length of one electrode in SVG user units.
const CELL: i32 = 24;

impl ChipSpec {
    /// Renders the layout as a standalone SVG document: the electrode grid
    /// with every module footprint coloured by kind and labelled by name.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmf_chip::presets::pcr_chip;
    ///
    /// let svg = pcr_chip().to_svg();
    /// assert!(svg.starts_with("<svg"));
    /// assert!(svg.contains("M1"));
    /// ```
    pub fn to_svg(&self) -> String {
        let width = self.width() * CELL;
        let height = self.height() * CELL;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"-1 -1 {} {}\">",
            width + 2,
            height + 2,
            width + 2,
            height + 2
        );
        // Electrode grid.
        let _ = writeln!(
            out,
            "  <rect x=\"0\" y=\"0\" width=\"{width}\" height=\"{height}\" \
             fill=\"#fafafa\" stroke=\"#444\"/>"
        );
        for x in 1..self.width() {
            let _ = writeln!(
                out,
                "  <line x1=\"{0}\" y1=\"0\" x2=\"{0}\" y2=\"{height}\" stroke=\"#ddd\"/>",
                x * CELL
            );
        }
        for y in 1..self.height() {
            let _ = writeln!(
                out,
                "  <line x1=\"0\" y1=\"{0}\" x2=\"{width}\" y2=\"{0}\" stroke=\"#ddd\"/>",
                y * CELL
            );
        }
        // Modules.
        for module in self.modules() {
            let r = module.rect();
            let (fill, stroke) = match module.kind() {
                ModuleKind::Mixer => ("#cfe8ff", "#1f6fb2"),
                ModuleKind::Reservoir { .. } => ("#d9f2d9", "#2e7d32"),
                ModuleKind::Storage => ("#fff3cd", "#b8860b"),
                ModuleKind::Waste => ("#f8d7da", "#a02833"),
                ModuleKind::Output => ("#e2d9f3", "#5e35b1"),
            };
            let _ = writeln!(
                out,
                "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{fill}\" \
                 stroke=\"{stroke}\" stroke-width=\"1.5\"/>",
                r.x * CELL,
                r.y * CELL,
                r.w * CELL,
                r.h * CELL
            );
            let _ = writeln!(
                out,
                "  <text x=\"{}\" y=\"{}\" font-size=\"10\" font-family=\"sans-serif\" \
                 text-anchor=\"middle\" dominant-baseline=\"middle\">{}</text>",
                r.x * CELL + r.w * CELL / 2,
                r.y * CELL + r.h * CELL / 2,
                module.name()
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::presets::pcr_chip;

    #[test]
    fn svg_contains_every_module() {
        let chip = pcr_chip();
        let svg = chip.to_svg();
        for module in chip.modules() {
            assert!(svg.contains(module.name()), "missing {}", module.name());
        }
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per module plus the grid background.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, chip.modules().len() + 1);
    }
}
