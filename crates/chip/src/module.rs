use crate::{Coord, Rect};
use std::fmt;

/// Identifier of an on-chip module within a [`crate::ChipSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub usize);

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What an on-chip module does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// A (1:1) mix-split module; droplets are merged inside its footprint
    /// and split back into two unit droplets.
    Mixer,
    /// A fluid reservoir dispensing unit droplets of one pure reagent
    /// (0-based fluid index).
    Reservoir {
        /// Index of the dispensed fluid.
        fluid: usize,
    },
    /// A single-droplet storage electrode.
    Storage,
    /// A waste reservoir absorbing discarded droplets.
    Waste,
    /// An output port emitting target droplets off-chip.
    Output,
}

impl ModuleKind {
    /// Short kind tag used in rendered layouts ("M", "R3", "q", "W", "O").
    pub fn tag(&self) -> String {
        match self {
            ModuleKind::Mixer => "M".to_owned(),
            ModuleKind::Reservoir { fluid } => format!("R{}", fluid + 1),
            ModuleKind::Storage => "q".to_owned(),
            ModuleKind::Waste => "W".to_owned(),
            ModuleKind::Output => "O".to_owned(),
        }
    }
}

/// A placed on-chip module: a kind, a rectangular electrode footprint and
/// an access *port* through which droplets enter and leave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    pub(crate) id: ModuleId,
    pub(crate) name: String,
    pub(crate) kind: ModuleKind,
    pub(crate) rect: Rect,
    pub(crate) port: Coord,
}

impl Module {
    /// Creates a module whose port is the footprint centre.
    pub fn new(id: ModuleId, name: impl Into<String>, kind: ModuleKind, rect: Rect) -> Self {
        Module { id, name: name.into(), kind, rect, port: rect.center() }
    }

    /// Creates a module with an explicit port cell.
    ///
    /// # Panics
    ///
    /// Panics if `port` lies outside the footprint.
    pub fn with_port(
        id: ModuleId,
        name: impl Into<String>,
        kind: ModuleKind,
        rect: Rect,
        port: Coord,
    ) -> Self {
        assert!(rect.contains(port), "port must lie inside the module footprint");
        Module { id, name: name.into(), kind, rect, port }
    }

    /// The module's identifier.
    pub fn id(&self) -> ModuleId {
        self.id
    }

    /// Human-readable name ("M1", "R4", "q2", …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module's function.
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// Electrode footprint.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Access cell for droplet entry/exit.
    pub fn port(&self) -> Coord {
        self.port
    }

    /// Whether the module is a mixer.
    pub fn is_mixer(&self) -> bool {
        matches!(self.kind, ModuleKind::Mixer)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.kind.tag(), self.rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_port_is_center() {
        let m = Module::new(ModuleId(0), "M1", ModuleKind::Mixer, Rect::new(2, 2, 2, 2));
        assert_eq!(m.port(), Coord::new(2, 2));
        assert!(m.is_mixer());
    }

    #[test]
    #[should_panic(expected = "port must lie inside")]
    fn port_outside_footprint_panics() {
        Module::with_port(
            ModuleId(0),
            "R1",
            ModuleKind::Reservoir { fluid: 0 },
            Rect::new(0, 0, 1, 1),
            Coord::new(5, 5),
        );
    }

    #[test]
    fn kind_tags() {
        assert_eq!(ModuleKind::Reservoir { fluid: 2 }.tag(), "R3");
        assert_eq!(ModuleKind::Mixer.tag(), "M");
        assert_eq!(ModuleKind::Storage.tag(), "q");
    }
}
