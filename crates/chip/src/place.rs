use crate::{ChipError, ChipSpec, Coord, ModuleKind, Rect};
use dmf_rng::{Rng, SeedableRng, StdRng};
use std::collections::{BTreeSet, HashMap};

/// Expected droplet traffic between pairs of modules, used as the objective
/// weights of placement: the optimiser minimises
/// `Σ flow(a, b) · distance(port_a, port_b)` — the paper's "total
/// droplet-transportation cost".
///
/// Indices refer to positions in the request list handed to
/// [`Placer::place`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowMatrix {
    flows: HashMap<(usize, usize), f64>,
}

impl FlowMatrix {
    /// Creates an empty (all-zero) flow matrix.
    pub fn new() -> Self {
        FlowMatrix::default()
    }

    /// Adds `amount` droplet transports between modules `a` and `b`
    /// (symmetric).
    pub fn add(&mut self, a: usize, b: usize, amount: f64) {
        let key = if a <= b { (a, b) } else { (b, a) };
        *self.flows.entry(key).or_insert(0.0) += amount;
    }

    /// The accumulated flow between `a` and `b`.
    pub fn flow(&self, a: usize, b: usize) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.flows.get(&key).copied().unwrap_or(0.0)
    }

    /// Iterates over all non-zero flows.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.flows.iter().map(|(&k, &v)| (k, v))
    }
}

/// Per-electrode accumulated wear (actuation counts beyond comfort, in
/// arbitrary units). Built from actuation history — e.g. the fault
/// campaign's `WearTracker` — and fed to [`Placer::place_with`] so hot
/// electrodes repel fresh module footprints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WearMap {
    wear: HashMap<Coord, f64>,
}

impl WearMap {
    /// An empty map (no electrode has recorded wear).
    pub fn new() -> Self {
        WearMap::default()
    }

    /// Adds `amount` wear units to `cell`.
    pub fn add(&mut self, cell: Coord, amount: f64) {
        *self.wear.entry(cell).or_insert(0.0) += amount;
    }

    /// Accumulated wear at `cell` (0 if never touched).
    pub fn wear(&self, cell: Coord) -> f64 {
        self.wear.get(&cell).copied().unwrap_or(0.0)
    }

    /// Sum of wear inside a rectangle — the cost a module footprint pays
    /// for sitting on worn electrodes.
    pub fn rect_wear(&self, rect: &Rect) -> f64 {
        if self.wear.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for y in rect.y..rect.y + rect.h {
            for x in rect.x..rect.x + rect.w {
                total += self.wear(Coord::new(x, y));
            }
        }
        total
    }

    /// Whether no electrode has recorded any wear.
    pub fn is_empty(&self) -> bool {
        self.wear.is_empty()
    }

    /// Total wear across all electrodes.
    pub fn total(&self) -> f64 {
        self.wear.values().sum()
    }

    /// Iterates over all (cell, wear) entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, f64)> + '_ {
        self.wear.iter().map(|(&c, &w)| (c, w))
    }
}

impl FromIterator<(Coord, f64)> for WearMap {
    fn from_iter<I: IntoIterator<Item = (Coord, f64)>>(iter: I) -> Self {
        let mut map = WearMap::new();
        for (cell, amount) in iter {
            map.add(cell, amount);
        }
        map
    }
}

/// Chip-state context for placement: electrodes placement must avoid and
/// wear history it should steer around.
///
/// The default context (no dead cells, empty wear map) makes
/// [`Placer::place_with`] behave exactly like [`Placer::place`] — same
/// RNG draws, same cost, same output.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementContext {
    /// Diagnosed-dead electrodes: no module footprint may contain one,
    /// and they are marked dead on the produced [`ChipSpec`].
    pub dead: BTreeSet<Coord>,
    /// Accumulated per-electrode wear, added to the annealing objective as
    /// `wear_weight · Σ footprint wear` so hot electrodes are avoided.
    pub wear: WearMap,
    /// Relative weight of the wear term against the flow-distance term.
    pub wear_weight: f64,
}

impl Default for PlacementContext {
    fn default() -> Self {
        PlacementContext { dead: BTreeSet::new(), wear: WearMap::new(), wear_weight: 1.0 }
    }
}

impl PlacementContext {
    /// A context that only avoids the given dead electrodes.
    pub fn with_dead(dead: impl IntoIterator<Item = Coord>) -> Self {
        PlacementContext { dead: dead.into_iter().collect(), ..Default::default() }
    }

    /// A context that only steers around the given wear history.
    pub fn with_wear(wear: WearMap, wear_weight: f64) -> Self {
        PlacementContext { dead: BTreeSet::new(), wear, wear_weight }
    }

    fn blocks(&self, rect: &Rect) -> bool {
        self.dead.iter().any(|&c| rect.contains(c))
    }

    fn wear_cost(&self, rects: &[Rect]) -> f64 {
        if self.wear.is_empty() || self.wear_weight == 0.0 {
            return 0.0;
        }
        self.wear_weight * rects.iter().map(|r| self.wear.rect_wear(r)).sum::<f64>()
    }
}

/// One module to place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementRequest {
    /// Module name ("M1", "R3", …).
    pub name: String,
    /// Module function.
    pub kind: ModuleKind,
    /// Footprint width.
    pub w: i32,
    /// Footprint height.
    pub h: i32,
    /// Whether the module must touch the chip boundary (reservoirs, waste
    /// and output ports are world-facing).
    pub boundary: bool,
}

impl PlacementRequest {
    /// Request with the conventional footprint for the kind: 2×2 mixers,
    /// 1×1 everything else; reservoirs/waste/output pinned to the boundary.
    pub fn conventional(name: impl Into<String>, kind: ModuleKind) -> Self {
        let (w, h) = match kind {
            ModuleKind::Mixer => (2, 2),
            _ => (1, 1),
        };
        let boundary = !matches!(kind, ModuleKind::Mixer | ModuleKind::Storage);
        PlacementRequest { name: name.into(), kind, w, h, boundary }
    }
}

/// Placement optimiser configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementConfig {
    /// Electrode-array width.
    pub width: i32,
    /// Electrode-array height.
    pub height: i32,
    /// Simulated-annealing iterations.
    pub iterations: u32,
    /// Initial annealing temperature (in cost units).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per iteration.
    pub cooling: f64,
    /// PRNG seed — placement is fully deterministic for a given seed.
    pub seed: u64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            width: 16,
            height: 16,
            iterations: 4000,
            initial_temperature: 50.0,
            cooling: 0.999,
            seed: 0xD01F_57E4,
        }
    }
}

/// Greedy + simulated-annealing module placer minimising total
/// droplet-transportation cost (paper §5, following the routing-aware
/// resource-allocation approach of Roy et al., ISVLSI 2013).
///
/// # Examples
///
/// ```
/// use dmf_chip::{FlowMatrix, ModuleKind, PlacementConfig, Placer};
/// use dmf_chip::PlacementRequest;
///
/// # fn main() -> Result<(), dmf_chip::ChipError> {
/// let requests = vec![
///     PlacementRequest::conventional("M1", ModuleKind::Mixer),
///     PlacementRequest::conventional("R1", ModuleKind::Reservoir { fluid: 0 }),
///     PlacementRequest::conventional("R2", ModuleKind::Reservoir { fluid: 1 }),
///     PlacementRequest::conventional("W1", ModuleKind::Waste),
///     PlacementRequest::conventional("O1", ModuleKind::Output),
/// ];
/// let mut flows = FlowMatrix::new();
/// flows.add(0, 1, 10.0); // R1 feeds M1 heavily
/// let chip = Placer::new(PlacementConfig::default()).place(&requests, &flows)?;
/// chip.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Placer {
    config: PlacementConfig,
}

impl Placer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacementConfig) -> Self {
        Placer { config }
    }

    /// Places all requested modules, minimising flow-weighted transport
    /// cost.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::PlacementFailed`] when a legal initial placement
    /// cannot be found (grid too small) and propagates grid-construction
    /// errors.
    pub fn place(
        &self,
        requests: &[PlacementRequest],
        flows: &FlowMatrix,
    ) -> Result<ChipSpec, ChipError> {
        self.place_with(requests, flows, &PlacementContext::default())
    }

    /// Like [`Placer::place`], but placement avoids the context's dead
    /// electrodes entirely (no footprint ever contains one) and pays
    /// `ctx.wear_weight · Σ footprint wear` for sitting on worn
    /// electrodes, steering modules away from actuation hot spots. Dead
    /// cells are marked on the produced chip.
    ///
    /// With the default context this is exactly [`Placer::place`]: the
    /// rejection and cost extensions are no-ops and consume no extra RNG
    /// draws, so outputs are identical.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::PlacementFailed`] when a legal initial placement
    /// cannot be found (grid too small or too dead) and propagates
    /// grid-construction errors.
    pub fn place_with(
        &self,
        requests: &[PlacementRequest],
        flows: &FlowMatrix,
        ctx: &PlacementContext,
    ) -> Result<ChipSpec, ChipError> {
        let _span = dmf_obs::span!("chip_place");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut rects = self.initial_placement(requests, ctx, &mut rng)?;
        let mut cost = placement_cost(&rects, flows) + ctx.wear_cost(&rects);
        let mut temperature = self.config.initial_temperature;
        for _ in 0..self.config.iterations {
            let victim = rng.gen_range(0..requests.len());
            let Some(candidate) =
                self.random_site(&requests[victim], &rects, victim, ctx, &mut rng)
            else {
                temperature *= self.config.cooling;
                continue;
            };
            let old = rects[victim];
            rects[victim] = candidate;
            let new_cost = placement_cost(&rects, flows) + ctx.wear_cost(&rects);
            let delta = new_cost - cost;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp();
            if accept {
                cost = new_cost;
            } else {
                rects[victim] = old;
            }
            temperature *= self.config.cooling;
        }
        let mut spec = ChipSpec::new(self.config.width, self.config.height)?;
        for (req, rect) in requests.iter().zip(&rects) {
            spec.add_module(req.name.clone(), req.kind, *rect)?;
        }
        for &cell in &ctx.dead {
            spec.mark_dead(cell);
        }
        Ok(spec)
    }

    fn initial_placement(
        &self,
        requests: &[PlacementRequest],
        ctx: &PlacementContext,
        rng: &mut StdRng,
    ) -> Result<Vec<Rect>, ChipError> {
        let mut rects: Vec<Rect> = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let mut placed = false;
            for _ in 0..4000 {
                if let Some(r) = self.sample_site(req, rng) {
                    if !ctx.blocks(&r) && rects.iter().all(|other| !other.touches(&r)) {
                        rects.push(r);
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                return Err(ChipError::PlacementFailed {
                    reason: format!("no legal site for module {} ({} placed)", req.name, i),
                });
            }
        }
        Ok(rects)
    }

    fn random_site(
        &self,
        req: &PlacementRequest,
        rects: &[Rect],
        skip: usize,
        ctx: &PlacementContext,
        rng: &mut StdRng,
    ) -> Option<Rect> {
        for _ in 0..64 {
            if let Some(r) = self.sample_site(req, rng) {
                let clear = !ctx.blocks(&r)
                    && rects.iter().enumerate().all(|(j, other)| j == skip || !other.touches(&r));
                if clear {
                    return Some(r);
                }
            }
        }
        None
    }

    fn sample_site(&self, req: &PlacementRequest, rng: &mut StdRng) -> Option<Rect> {
        let (gw, gh) = (self.config.width, self.config.height);
        if req.w > gw || req.h > gh {
            return None;
        }
        let (x, y) = if req.boundary {
            // Pick a boundary side, then a legal offset along it.
            match rng.gen_range(0..4u8) {
                0 => (rng.gen_range(0..=gw - req.w), 0),
                1 => (rng.gen_range(0..=gw - req.w), gh - req.h),
                2 => (0, rng.gen_range(0..=gh - req.h)),
                _ => (gw - req.w, rng.gen_range(0..=gh - req.h)),
            }
        } else {
            (rng.gen_range(0..=gw - req.w), rng.gen_range(0..=gh - req.h))
        };
        Some(Rect::new(x, y, req.w, req.h))
    }
}

fn placement_cost(rects: &[Rect], flows: &FlowMatrix) -> f64 {
    flows
        .iter()
        .map(|((a, b), f)| {
            let d = rects[a].center().manhattan(rects[b].center()) as f64;
            f * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcr_requests() -> Vec<PlacementRequest> {
        let mut reqs = Vec::new();
        for i in 0..3 {
            reqs.push(PlacementRequest::conventional(format!("M{}", i + 1), ModuleKind::Mixer));
        }
        for f in 0..7 {
            reqs.push(PlacementRequest::conventional(
                format!("R{}", f + 1),
                ModuleKind::Reservoir { fluid: f },
            ));
        }
        for i in 0..5 {
            reqs.push(PlacementRequest::conventional(format!("q{}", i + 1), ModuleKind::Storage));
        }
        reqs.push(PlacementRequest::conventional("W1", ModuleKind::Waste));
        reqs.push(PlacementRequest::conventional("W2", ModuleKind::Waste));
        reqs.push(PlacementRequest::conventional("O1", ModuleKind::Output));
        reqs
    }

    #[test]
    fn places_the_full_pcr_inventory_legally() {
        let config = PlacementConfig { width: 20, height: 14, ..Default::default() };
        let chip = Placer::new(config).place(&pcr_requests(), &FlowMatrix::new()).unwrap();
        chip.validate().unwrap();
        assert_eq!(chip.mixers().count(), 3);
        assert_eq!(chip.reservoirs().count(), 7);
        chip.validate_for_engine(7).unwrap();
    }

    #[test]
    fn optimisation_reduces_flow_cost() {
        let reqs = pcr_requests();
        let mut flows = FlowMatrix::new();
        // Heavy traffic between R1 and M1, R2 and M2.
        flows.add(3, 0, 40.0);
        flows.add(4, 1, 40.0);
        let cheap = Placer::new(PlacementConfig {
            width: 20,
            height: 14,
            iterations: 6000,
            ..Default::default()
        })
        .place(&reqs, &flows)
        .unwrap();
        let unoptimised = Placer::new(PlacementConfig {
            width: 20,
            height: 14,
            iterations: 0,
            ..Default::default()
        })
        .place(&reqs, &flows)
        .unwrap();
        let cost = |spec: &ChipSpec| {
            flows
                .iter()
                .map(|((a, b), f)| {
                    f * spec.modules()[a].port().manhattan(spec.modules()[b].port()) as f64
                })
                .sum::<f64>()
        };
        assert!(cost(&cheap) <= cost(&unoptimised), "SA must not hurt");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let reqs = pcr_requests();
        let config = PlacementConfig { width: 20, height: 14, ..Default::default() };
        let a = Placer::new(config.clone()).place(&reqs, &FlowMatrix::new()).unwrap();
        let b = Placer::new(config).place(&reqs, &FlowMatrix::new()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fails_gracefully_when_grid_too_small() {
        let config = PlacementConfig { width: 4, height: 4, ..Default::default() };
        let err = Placer::new(config).place(&pcr_requests(), &FlowMatrix::new()).unwrap_err();
        assert!(matches!(err, ChipError::PlacementFailed { .. }));
    }

    #[test]
    fn default_context_is_byte_identical_to_place() {
        let reqs = pcr_requests();
        let config = PlacementConfig { width: 20, height: 14, ..Default::default() };
        let plain = Placer::new(config.clone()).place(&reqs, &FlowMatrix::new()).unwrap();
        let ctx = Placer::new(config)
            .place_with(&reqs, &FlowMatrix::new(), &PlacementContext::default())
            .unwrap();
        assert_eq!(plain, ctx);
    }

    #[test]
    fn placement_never_overlaps_dead_cells() {
        // Kill a band through the middle of the grid; every module must
        // land clear of it and the chip must remember the diagnosis.
        let dead: Vec<Coord> = (0..20).map(|x| Coord::new(x, 7)).collect();
        let ctx = PlacementContext::with_dead(dead.iter().copied());
        let config = PlacementConfig { width: 20, height: 14, ..Default::default() };
        let chip =
            Placer::new(config).place_with(&pcr_requests(), &FlowMatrix::new(), &ctx).unwrap();
        chip.validate().unwrap();
        for m in chip.modules() {
            for &cell in &dead {
                assert!(!m.rect().contains(cell), "{} sits on dead electrode {cell}", m.name());
            }
        }
        assert_eq!(chip.dead_cells().count(), dead.len());
    }

    #[test]
    fn wear_map_steers_modules_off_hot_electrodes() {
        // Scorch the left half of the grid. With a heavy wear weight the
        // annealer should shift footprints toward the cool right half.
        let mut wear = WearMap::new();
        for y in 0..14 {
            for x in 0..10 {
                wear.add(Coord::new(x, y), 50.0);
            }
        }
        let reqs = pcr_requests();
        let config = PlacementConfig { width: 20, height: 14, ..Default::default() };
        let blind = Placer::new(config.clone()).place(&reqs, &FlowMatrix::new()).unwrap();
        let aware = Placer::new(config)
            .place_with(&reqs, &FlowMatrix::new(), &PlacementContext::with_wear(wear.clone(), 5.0))
            .unwrap();
        let footprint_wear =
            |spec: &ChipSpec| spec.modules().iter().map(|m| wear.rect_wear(&m.rect())).sum::<f64>();
        assert!(
            footprint_wear(&aware) < footprint_wear(&blind),
            "wear-aware placement must reduce footprint wear ({} vs {})",
            footprint_wear(&aware),
            footprint_wear(&blind)
        );
    }

    #[test]
    fn wear_map_accumulates_and_sums() {
        let mut wear = WearMap::new();
        assert!(wear.is_empty());
        wear.add(Coord::new(1, 1), 2.0);
        wear.add(Coord::new(1, 1), 3.0);
        wear.add(Coord::new(4, 2), 1.0);
        assert_eq!(wear.wear(Coord::new(1, 1)), 5.0);
        assert_eq!(wear.wear(Coord::new(0, 0)), 0.0);
        assert_eq!(wear.total(), 6.0);
        assert_eq!(wear.rect_wear(&Rect::new(0, 0, 3, 3)), 5.0);
        assert_eq!(wear.iter().count(), 2);
        let rebuilt: WearMap = wear.iter().collect();
        assert_eq!(rebuilt, wear);
    }

    #[test]
    fn boundary_modules_touch_the_edge() {
        let config = PlacementConfig { width: 20, height: 14, ..Default::default() };
        let chip = Placer::new(config).place(&pcr_requests(), &FlowMatrix::new()).unwrap();
        for m in chip.reservoirs() {
            let r = m.rect();
            let on_edge =
                r.x == 0 || r.y == 0 || r.x + r.w == chip.width() || r.y + r.h == chip.height();
            assert!(on_edge, "{} must touch the boundary", m.name());
        }
    }
}
