//! Randomized tests: placement legality and cost-matrix consistency over
//! random inventories and seeds, driven by a fixed-seed [`dmf_rng::StdRng`].

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_chip::{CostMatrix, FlowMatrix, ModuleKind, PlacementConfig, PlacementRequest, Placer};
use dmf_rng::{Rng, SeedableRng, StdRng};

fn inventory(fluids: usize, mixers: usize, storage: usize) -> Vec<PlacementRequest> {
    let mut reqs = Vec::new();
    for m in 0..mixers {
        reqs.push(PlacementRequest::conventional(format!("M{}", m + 1), ModuleKind::Mixer));
    }
    for f in 0..fluids {
        reqs.push(PlacementRequest::conventional(
            format!("R{}", f + 1),
            ModuleKind::Reservoir { fluid: f },
        ));
    }
    for s in 0..storage {
        reqs.push(PlacementRequest::conventional(format!("q{}", s + 1), ModuleKind::Storage));
    }
    reqs.push(PlacementRequest::conventional("W1", ModuleKind::Waste));
    reqs.push(PlacementRequest::conventional("O1", ModuleKind::Output));
    reqs
}

/// Random inventories place legally on a generous grid, with every
/// geometric rule intact and all world-facing modules on the boundary.
#[test]
fn placements_are_legal() {
    let mut rng = StdRng::seed_from_u64(0x914C);
    for _ in 0..24 {
        let fluids = rng.gen_range(1usize..6);
        let mixers = rng.gen_range(1usize..4);
        let storage = rng.gen_range(0usize..5);
        let seed = rng.gen_range(0u64..1000);
        let reqs = inventory(fluids, mixers, storage);
        let config =
            PlacementConfig { width: 24, height: 18, iterations: 300, seed, ..Default::default() };
        let chip =
            Placer::new(config).place(&reqs, &FlowMatrix::new()).expect("generous grid fits");
        chip.validate().expect("geometry holds");
        chip.validate_for_engine(fluids).expect("engine inventory present");
        for module in chip.reservoirs().chain(chip.waste_reservoirs()).chain(chip.outputs()) {
            let r = module.rect();
            let on_edge =
                r.x == 0 || r.y == 0 || r.x + r.w == chip.width() || r.y + r.h == chip.height();
            assert!(on_edge, "{} must be world-facing", module.name());
        }
    }
}

/// The derived cost matrix is symmetric in its mixer block, zero on
/// the diagonal, and agrees with port distances.
#[test]
fn cost_matrix_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0xC057);
    for _ in 0..24 {
        let seed = rng.gen_range(0u64..500);
        let reqs = inventory(3, 3, 2);
        let config =
            PlacementConfig { width: 24, height: 18, iterations: 100, seed, ..Default::default() };
        let chip = Placer::new(config).place(&reqs, &FlowMatrix::new()).expect("fits");
        let matrix = CostMatrix::from_spec(&chip);
        for (i, a) in chip.mixers().enumerate() {
            assert_eq!(matrix.cost(a.name(), i), Some(0));
            for (j, b) in chip.mixers().enumerate() {
                assert_eq!(matrix.cost(a.name(), j), matrix.cost(b.name(), i));
            }
        }
        for module in chip.modules() {
            for (j, mixer) in chip.mixers().enumerate() {
                assert_eq!(
                    matrix.cost(module.name(), j),
                    Some(module.port().manhattan(mixer.port()))
                );
            }
        }
    }
}
