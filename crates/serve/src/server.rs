//! The planning server: accept loop, connection threads, worker pool.
//!
//! ```text
//! clients ──TCP──▶ connection threads ──BoundedQueue──▶ workers
//!                       │  (parse, admission control)      │
//!                       ◀──────── mpsc reply channel ──────┘
//! ```
//!
//! Every thread is scoped ([`std::thread::scope`]), so [`Server::run`]
//! returns only after all connections and workers have exited — no
//! detached threads outlive the server. Control requests (`ping`,
//! `stats`, `shutdown`) are answered inline by the connection thread;
//! plan requests pass through the bounded queue so a planner stampede
//! degrades into fast `busy` rejections rather than unbounded memory.

use crate::protocol::{self, PlanSpec, Request};
use crate::queue::{BoundedQueue, PushError};
use dmf_engine::{PlanCache, PlanKey, StreamingEngine, DEFAULT_PLAN_CACHE_CAPACITY};
use dmf_obs::Recorder;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How often blocked I/O loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Per-connection socket read timeout; bounds shutdown latency.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Configuration of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (read it back with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing plan requests.
    pub workers: usize,
    /// Admission-control queue depth; a full queue answers `busy`.
    pub queue_depth: usize,
    /// Plan-cache capacity in entries (LRU beyond that).
    pub cache_capacity: usize,
    /// Default per-request queueing deadline, milliseconds. A request
    /// still queued after this long is answered with a `deadline` error
    /// instead of being planned; `"deadline_ms"` on the request overrides
    /// it.
    pub default_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()).min(4),
            queue_depth: 64,
            cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            default_deadline_ms: 10_000,
        }
    }
}

enum Work {
    Plan(PlanSpec),
    Stall { ms: u64 },
}

struct Job {
    work: Work,
    enqueued: Instant,
    deadline: Duration,
    reply: mpsc::Sender<String>,
}

/// A bound planning service; see the crate docs for the protocol.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    cache: Arc<PlanCache>,
    recorder: Recorder,
    shutdown: AtomicBool,
}

impl Server {
    /// Binds the listener and builds the shared plan cache.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, permission, …).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = config.addr.to_socket_addrs()?.next().map_or_else(
            || Err(io::Error::new(io::ErrorKind::InvalidInput, "empty bind address")),
            TcpListener::bind,
        )?;
        let cache = PlanCache::shared_with_capacity(config.cache_capacity);
        Ok(Server {
            listener,
            config,
            cache,
            recorder: Recorder::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The bound address — the way to learn the port after binding `:0`.
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The server-owned metric recorder backing `stats` responses.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Requests shutdown from outside the protocol (e.g. a signal
    /// handler); equivalent to a client sending `{"op":"shutdown"}`.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Serves until a shutdown request arrives, then drains: queued plan
    /// requests are still answered, every connection and worker thread is
    /// joined, and only then does `run` return.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener failures; per-connection I/O errors only
    /// terminate that connection.
    pub fn run(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let queue = BoundedQueue::new(self.config.queue_depth);
        let queue_ref = &queue;
        std::thread::scope(|s| {
            for _ in 0..self.config.workers.max(1) {
                s.spawn(move || self.worker_loop(queue_ref));
            }
            let result = self.accept_loop(s, queue_ref);
            // Closing on every exit path (including listener errors) is
            // what lets blocked workers drain and the scope join.
            queue.close();
            result
        })
    }

    fn accept_loop<'scope>(
        &'scope self,
        s: &'scope std::thread::Scope<'scope, '_>,
        queue: &'scope BoundedQueue<Job>,
    ) -> io::Result<()> {
        loop {
            if self.shutting_down() {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.recorder.count("serve.connections", 1);
                    s.spawn(move || self.handle_connection(stream, queue));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads newline-delimited requests off one socket and writes one
    /// response line per request. Partial lines survive read timeouts —
    /// the buffer is only consumed up to the last `\n`.
    fn handle_connection(&self, mut stream: TcpStream, queue: &BoundedQueue<Job>) {
        if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
            return;
        }
        let mut chunk = [0u8; 4096];
        let mut pending: Vec<u8> = Vec::new();
        'conn: loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    pending.extend_from_slice(&chunk[..n]);
                    while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                        let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&line_bytes);
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        let (response, stop) = self.process_line(line, queue);
                        if writeln!(stream, "{response}").and_then(|()| stream.flush()).is_err() {
                            break 'conn;
                        }
                        if stop {
                            break 'conn;
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shutting_down() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Turns one request line into one response line; the flag asks the
    /// connection loop to hang up (after a shutdown acknowledgement).
    fn process_line(&self, line: &str, queue: &BoundedQueue<Job>) -> (String, bool) {
        self.recorder.count("serve.requests", 1);
        match protocol::parse_request(line) {
            Err(e) => {
                self.recorder.count("serve.bad_request", 1);
                (protocol::error_response("bad_request", &e.to_string()), false)
            }
            Ok(Request::Ping) => (protocol::pong_response(), false),
            Ok(Request::Stats) => (self.stats_response(), false),
            Ok(Request::Shutdown) => {
                self.recorder.count("serve.shutdown", 1);
                self.shutdown.store(true, Ordering::Relaxed);
                (protocol::shutdown_response(), true)
            }
            Ok(Request::Plan(spec)) => {
                let deadline_ms = spec.deadline_ms;
                (self.enqueue_and_wait(Work::Plan(spec), deadline_ms, queue), false)
            }
            Ok(Request::Stall { ms }) => {
                (self.enqueue_and_wait(Work::Stall { ms }, None, queue), false)
            }
        }
    }

    /// Admission control: non-blocking push, then wait for the worker's
    /// reply. A full queue is an immediate `busy`; a closed queue an
    /// immediate `shutting_down`.
    fn enqueue_and_wait(
        &self,
        work: Work,
        deadline_ms: Option<u64>,
        queue: &BoundedQueue<Job>,
    ) -> String {
        let (reply, receive) = mpsc::channel();
        let deadline =
            Duration::from_millis(deadline_ms.unwrap_or(self.config.default_deadline_ms));
        let job = Job { work, enqueued: Instant::now(), deadline, reply };
        match queue.try_push(job) {
            Err(PushError::Full) => {
                self.recorder.count("serve.busy", 1);
                protocol::error_response(
                    "busy",
                    &format!("queue full ({} pending); retry later", queue.capacity()),
                )
            }
            Err(PushError::Closed) => {
                protocol::error_response("shutting_down", "server is draining; not accepting work")
            }
            Ok(()) => {
                self.recorder.count("serve.enqueued", 1);
                // Workers drain the queue even during shutdown, so every
                // admitted job is answered and this recv cannot dangle.
                receive.recv().unwrap_or_else(|_| {
                    protocol::error_response("internal", "worker dropped the reply channel")
                })
            }
        }
    }

    /// One worker: pop, check the queueing deadline, plan, reply.
    fn worker_loop(&self, queue: &BoundedQueue<Job>) {
        while let Some(job) = queue.pop() {
            self.recorder.count("serve.dequeued", 1);
            let waited = job.enqueued.elapsed();
            let response = if waited > job.deadline {
                self.recorder.count("serve.deadline", 1);
                protocol::error_response(
                    "deadline",
                    &format!(
                        "request waited {}ms in queue, past its {}ms deadline",
                        waited.as_millis(),
                        job.deadline.as_millis()
                    ),
                )
            } else {
                match job.work {
                    Work::Stall { ms } => {
                        std::thread::sleep(Duration::from_millis(ms));
                        protocol::stalled_response(ms)
                    }
                    Work::Plan(spec) => self.plan(&spec),
                }
            };
            self.recorder.record_duration("serve.latency", job.enqueued.elapsed());
            // The connection may have hung up while queued; nothing to do.
            let _ = job.reply.send(response);
        }
    }

    fn plan(&self, spec: &PlanSpec) -> String {
        let engine = StreamingEngine::new(spec.config).with_cache(Arc::clone(&self.cache));
        match engine.plan_shared(&spec.ratio, spec.demand) {
            Ok(plan) => {
                self.recorder.count("serve.planned", 1);
                let key = PlanKey::new(&spec.config, &spec.ratio, spec.demand);
                protocol::plan_response(&plan, key.fingerprint())
            }
            Err(e) => {
                self.recorder.count("serve.plan_failed", 1);
                protocol::error_response("plan_failed", &e.to_string())
            }
        }
    }

    /// The `stats` response: `serve.*` counters, request-latency summary
    /// and plan-cache statistics, as one flat JSON object.
    fn stats_response(&self) -> String {
        let snapshot = self.recorder.snapshot();
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let (latency_count, latency_mean_ns) =
            snapshot.histograms.get("serve.latency").map_or((0, 0), |h| (h.count, h.mean_ns()));
        let cache = self.cache.stats();
        format!(
            "{{\"ok\":true,\"type\":\"stats\",\
             \"requests\":{},\"connections\":{},\"planned\":{},\"plan_failed\":{},\
             \"bad_request\":{},\"busy\":{},\"deadline\":{},\
             \"enqueued\":{},\"dequeued\":{},\
             \"latency_count\":{latency_count},\"latency_mean_ns\":{latency_mean_ns},\
             \"workers\":{},\"queue_depth\":{},\
             \"cache_len\":{},\"cache_capacity\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"cache_evictions\":{}}}",
            counter("serve.requests"),
            counter("serve.connections"),
            counter("serve.planned"),
            counter("serve.plan_failed"),
            counter("serve.bad_request"),
            counter("serve.busy"),
            counter("serve.deadline"),
            counter("serve.enqueued"),
            counter("serve.dequeued"),
            self.config.workers.max(1),
            self.config.queue_depth.max(1),
            cache.len,
            cache.capacity,
            cache.hits,
            cache.misses,
            cache.evictions,
        )
    }
}
