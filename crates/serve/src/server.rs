//! The planning server: accept loop, connection threads, worker pool.
//!
//! ```text
//! clients ──TCP──▶ connection threads ──BoundedQueue──▶ workers
//!                       │  (parse, admission control)      │
//!                       ◀──────── mpsc reply channel ──────┘
//! ```
//!
//! Every thread is scoped ([`std::thread::scope`]), so [`Server::run`]
//! returns only after all connections and workers have exited — no
//! detached threads outlive the server. Control requests (`ping`,
//! `stats`, `shutdown`) are answered inline by the connection thread;
//! plan requests pass through the bounded queue so a planner stampede
//! degrades into fast `busy` rejections rather than unbounded memory.

use crate::protocol::{self, PlanSpec, Request};
use crate::queue::{BoundedQueue, PushError};
use dmf_engine::{PlanCache, PlanKey, StreamingEngine, DEFAULT_PLAN_CACHE_CAPACITY};
use dmf_obs::Recorder;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How often blocked I/O loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Per-connection socket read timeout; bounds shutdown latency.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Configuration of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (read it back with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing plan requests.
    pub workers: usize,
    /// Admission-control queue depth; a full queue answers `busy`.
    pub queue_depth: usize,
    /// Plan-cache capacity in entries (LRU beyond that).
    pub cache_capacity: usize,
    /// Plan-cache shard count: independently locked slices of the cache,
    /// selected by plan-key fingerprint, so concurrent workers contend
    /// only when they hit the same shard. Clamped to
    /// `1..=`[`dmf_engine::MAX_PLAN_CACHE_SHARDS`] and to the capacity.
    pub cache_shards: usize,
    /// Default per-request queueing deadline, milliseconds. A request
    /// still queued after this long is answered with a `deadline` error
    /// instead of being planned; `"deadline_ms"` on the request overrides
    /// it.
    pub default_deadline_ms: u64,
    /// Slow-request threshold, milliseconds: a queued request whose total
    /// latency (queue wait + work) reaches it is logged to stderr with its
    /// trace ID and counted under `serve.slow`. `None` disables the log.
    pub slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()).min(4),
            queue_depth: 64,
            cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            cache_shards: dmf_engine::default_shard_count(),
            default_deadline_ms: 10_000,
            slow_ms: None,
        }
    }
}

/// How many finished spans the server's recorder retains; old request
/// trees are evicted beyond this, which keeps a long-lived server's
/// memory bounded while leaving plenty of room to fetch the stage
/// breakdown of any in-flight trace.
const SERVE_SPAN_CAPACITY: usize = 8_192;

enum Work {
    Plan(PlanSpec),
    Stall { ms: u64 },
}

struct Job {
    work: Work,
    enqueued: Instant,
    deadline: Duration,
    reply: mpsc::Sender<String>,
    /// The request's trace and root-span IDs, captured from the
    /// connection thread's `serve_request` span so the worker can join
    /// the same tree from its own thread.
    trace_id: u64,
    parent_id: u64,
}

/// A bound planning service; see the crate docs for the protocol.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    cache: Arc<PlanCache>,
    recorder: Arc<Recorder>,
    shutdown: AtomicBool,
}

impl Server {
    /// Binds the listener and builds the shared plan cache.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, permission, …).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = config.addr.to_socket_addrs()?.next().map_or_else(
            || Err(io::Error::new(io::ErrorKind::InvalidInput, "empty bind address")),
            TcpListener::bind,
        )?;
        let cache =
            PlanCache::shared_with_capacity_and_shards(config.cache_capacity, config.cache_shards);
        let recorder = Arc::new(Recorder::new());
        recorder.set_span_capacity(SERVE_SPAN_CAPACITY);
        Ok(Server { listener, config, cache, recorder, shutdown: AtomicBool::new(false) })
    }

    /// The bound address — the way to learn the port after binding `:0`.
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The server-owned metric recorder backing `stats` responses.
    pub fn recorder(&self) -> &Recorder {
        self.recorder.as_ref()
    }

    /// Requests shutdown from outside the protocol (e.g. a signal
    /// handler); equivalent to a client sending `{"op":"shutdown"}`.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Serves until a shutdown request arrives, then drains: queued plan
    /// requests are still answered, every connection and worker thread is
    /// joined, and only then does `run` return.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener failures; per-connection I/O errors only
    /// terminate that connection.
    pub fn run(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let queue = BoundedQueue::new(self.config.queue_depth);
        let queue_ref = &queue;
        std::thread::scope(|s| {
            for _ in 0..self.config.workers.max(1) {
                s.spawn(move || self.worker_loop(queue_ref));
            }
            let result = self.accept_loop(s, queue_ref);
            // Closing on every exit path (including listener errors) is
            // what lets blocked workers drain and the scope join.
            queue.close();
            result
        })
    }

    fn accept_loop<'scope>(
        &'scope self,
        s: &'scope std::thread::Scope<'scope, '_>,
        queue: &'scope BoundedQueue<Job>,
    ) -> io::Result<()> {
        loop {
            if self.shutting_down() {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.recorder.count("serve.connections", 1);
                    s.spawn(move || self.handle_connection(stream, queue));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads newline-delimited requests off one socket and writes one
    /// response line per request. Partial lines survive read timeouts —
    /// the buffer is only consumed up to the last `\n`.
    fn handle_connection(&self, mut stream: TcpStream, queue: &BoundedQueue<Job>) {
        if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
            return;
        }
        let mut chunk = [0u8; 4096];
        let mut pending: Vec<u8> = Vec::new();
        'conn: loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    pending.extend_from_slice(&chunk[..n]);
                    while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                        let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&line_bytes);
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        let (response, stop) = self.process_line(line, queue);
                        if writeln!(stream, "{response}").and_then(|()| stream.flush()).is_err() {
                            break 'conn;
                        }
                        if stop {
                            break 'conn;
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shutting_down() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Turns one request line into one response line; the flag asks the
    /// connection loop to hang up (after a shutdown acknowledgement).
    ///
    /// Every request runs under a `serve_request` root span on the
    /// connection thread; decoding is a `serve_decode` child, and queued
    /// work joins the same tree from the worker thread (queue wait,
    /// planning stages, encode) via the job's captured trace IDs.
    fn process_line(&self, line: &str, queue: &BoundedQueue<Job>) -> (String, bool) {
        let root = self.recorder.span("serve_request");
        let (trace_id, root_id) = root.ids().unwrap_or((0, 0));
        self.recorder.count("serve.requests", 1);
        let parsed = {
            let _decode = self.recorder.span("serve_decode");
            protocol::parse_request(line)
        };
        match parsed {
            Err(e) => {
                // The rejection carries its own code: `infeasible` when
                // the mixability pre-pass proved no plan exists (the
                // request never reaches a worker), `unknown_algo` for an
                // algorithm name the registry does not know,
                // `bad_request` for malformed lines.
                self.recorder.count(
                    match e.code() {
                        "infeasible" => "serve.infeasible",
                        "unknown_algo" => "serve.unknown_algo",
                        _ => "serve.bad_request",
                    },
                    1,
                );
                (protocol::error_response(e.code(), &e.to_string()), false)
            }
            Ok(Request::Ping) => {
                self.recorder.count("serve.op.ping", 1);
                (protocol::pong_response(), false)
            }
            Ok(Request::Stats) => {
                self.recorder.count("serve.op.stats", 1);
                (self.stats_response(), false)
            }
            Ok(Request::Shutdown) => {
                self.recorder.count("serve.op.shutdown", 1);
                self.recorder.count("serve.shutdown", 1);
                self.shutdown.store(true, Ordering::Relaxed);
                (protocol::shutdown_response(), true)
            }
            Ok(Request::Plan(spec)) => {
                self.recorder.count("serve.op.plan", 1);
                let deadline_ms = spec.deadline_ms;
                (
                    self.enqueue_and_wait(Work::Plan(spec), deadline_ms, queue, trace_id, root_id),
                    false,
                )
            }
            Ok(Request::Stall { ms }) => {
                self.recorder.count("serve.op.stall", 1);
                (self.enqueue_and_wait(Work::Stall { ms }, None, queue, trace_id, root_id), false)
            }
        }
    }

    /// Admission control: non-blocking push, then wait for the worker's
    /// reply. A full queue is an immediate `busy`; a closed queue an
    /// immediate `shutting_down`. On admission the observed queue depth
    /// feeds the `serve.queue_depth` peak gauge.
    fn enqueue_and_wait(
        &self,
        work: Work,
        deadline_ms: Option<u64>,
        queue: &BoundedQueue<Job>,
        trace_id: u64,
        parent_id: u64,
    ) -> String {
        let (reply, receive) = mpsc::channel();
        let deadline =
            Duration::from_millis(deadline_ms.unwrap_or(self.config.default_deadline_ms));
        let job = Job { work, enqueued: Instant::now(), deadline, reply, trace_id, parent_id };
        match queue.try_push(job) {
            Err(PushError::Full) => {
                self.recorder.count("serve.busy", 1);
                protocol::error_response(
                    "busy",
                    &format!("queue full ({} pending); retry later", queue.capacity()),
                )
            }
            Err(PushError::Closed) => {
                protocol::error_response("shutting_down", "server is draining; not accepting work")
            }
            Ok(()) => {
                self.recorder.count("serve.enqueued", 1);
                // A worker may already have popped the job; at the moment
                // of admission the depth was at least 1.
                self.recorder.gauge_max("serve.queue_depth", queue.len().max(1) as u64);
                // Workers drain the queue even during shutdown, so every
                // admitted job is answered and this recv cannot dangle.
                receive.recv().unwrap_or_else(|_| {
                    protocol::error_response("internal", "worker dropped the reply channel")
                })
            }
        }
    }

    /// One worker: pop, record the queue wait as a first-class span,
    /// check the queueing deadline, plan, reply.
    fn worker_loop(&self, queue: &BoundedQueue<Job>) {
        while let Some(job) = queue.pop() {
            self.recorder.count("serve.dequeued", 1);
            // Adopt the request's trace for the duration of this job so
            // every span below — including `span!` call sites inside the
            // engine — lands in this server's recorder, under the
            // request's root.
            let ctx = self.recorder.trace_context(job.trace_id, job.parent_id);
            let adopted = ctx.enter();
            let dequeued = Instant::now();
            self.recorder.record_span_at(
                "serve_queue_wait",
                job.trace_id,
                job.parent_id,
                job.enqueued,
                dequeued,
            );
            let waited = dequeued.duration_since(job.enqueued);
            let response = if waited > job.deadline {
                self.recorder.count("serve.deadline", 1);
                protocol::error_response(
                    "deadline",
                    &format!(
                        "request waited {}ms in queue, past its {}ms deadline",
                        waited.as_millis(),
                        job.deadline.as_millis()
                    ),
                )
            } else {
                match &job.work {
                    Work::Stall { ms } => {
                        std::thread::sleep(Duration::from_millis(*ms));
                        protocol::stalled_response(*ms)
                    }
                    Work::Plan(spec) => self.plan(spec, job.trace_id),
                }
            };
            drop(adopted);
            let total = job.enqueued.elapsed();
            self.recorder.record_duration("serve.latency", total);
            if let Some(limit) = self.config.slow_ms {
                if total >= Duration::from_millis(limit) {
                    self.recorder.count("serve.slow", 1);
                    eprintln!(
                        "slow request: trace={:016x} total={}ms queue_wait={}ms (threshold {limit}ms)",
                        job.trace_id,
                        total.as_millis(),
                        waited.as_millis(),
                    );
                }
            }
            // The connection may have hung up while queued; nothing to do.
            let _ = job.reply.send(response);
        }
    }

    /// Plans one request under a `serve_plan` span and encodes the
    /// response under `serve_encode`; when the request asked for a trace,
    /// the response embeds the request's `trace_id` and the stage
    /// breakdown recorded so far.
    fn plan(&self, spec: &PlanSpec, trace_id: u64) -> String {
        let outcome = {
            let _planning = self.recorder.span("serve_plan");
            let engine = StreamingEngine::new(spec.config).with_cache(Arc::clone(&self.cache));
            engine.plan_shared(&spec.ratio, spec.demand)
        };
        let _encode = self.recorder.span("serve_encode");
        match outcome {
            Ok(plan) => {
                self.recorder.count("serve.planned", 1);
                let key = PlanKey::new(&spec.config, &spec.ratio, spec.demand);
                if spec.trace {
                    let stages = self.recorder.trace_spans(trace_id);
                    protocol::plan_response_traced(&plan, key.fingerprint(), trace_id, &stages)
                } else {
                    protocol::plan_response(&plan, key.fingerprint())
                }
            }
            Err(
                e @ (dmf_engine::EngineError::Infeasible { .. }
                | dmf_engine::EngineError::ZeroDemand),
            ) => {
                // Defense in depth: parse-time feasibility should have
                // caught this, but the engine's own preflight is
                // authoritative.
                self.recorder.count("serve.infeasible", 1);
                protocol::error_response("infeasible", &e.to_string())
            }
            Err(e) => {
                self.recorder.count("serve.plan_failed", 1);
                protocol::error_response("plan_failed", &e.to_string())
            }
        }
    }

    /// The `stats` response: `serve.*` counters (including per-op
    /// counts), request-latency summary with percentile estimates, queue
    /// pressure and plan-cache statistics, as one flat JSON object.
    fn stats_response(&self) -> String {
        let snapshot = self.recorder.snapshot();
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let latency = snapshot.histograms.get("serve.latency");
        let (latency_count, latency_mean_ns) = latency.map_or((0, 0), |h| (h.count, h.mean_ns()));
        let (p50, p90, p99) = latency
            .map_or((0, 0, 0), |h| (h.percentile(0.50), h.percentile(0.90), h.percentile(0.99)));
        let cache = self.cache.stats();
        format!(
            "{{\"ok\":true,\"type\":\"stats\",\
             \"requests\":{},\"connections\":{},\"planned\":{},\"plan_failed\":{},\
             \"bad_request\":{},\"infeasible\":{},\"unknown_algo\":{},\"busy\":{},\
             \"deadline\":{},\"slow\":{},\
             \"op_plan\":{},\"op_stats\":{},\"op_ping\":{},\"op_shutdown\":{},\"op_stall\":{},\
             \"enqueued\":{},\"dequeued\":{},\
             \"latency_count\":{latency_count},\"latency_mean_ns\":{latency_mean_ns},\
             \"latency_p50_ns\":{p50},\"latency_p90_ns\":{p90},\"latency_p99_ns\":{p99},\
             \"workers\":{},\"queue_depth\":{},\"queue_depth_peak\":{},\
             \"cache_len\":{},\"cache_capacity\":{},\"cache_shards\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"cache_evictions\":{}}}",
            counter("serve.requests"),
            counter("serve.connections"),
            counter("serve.planned"),
            counter("serve.plan_failed"),
            counter("serve.bad_request"),
            counter("serve.infeasible"),
            counter("serve.unknown_algo"),
            counter("serve.busy"),
            counter("serve.deadline"),
            counter("serve.slow"),
            counter("serve.op.plan"),
            counter("serve.op.stats"),
            counter("serve.op.ping"),
            counter("serve.op.shutdown"),
            counter("serve.op.stall"),
            counter("serve.enqueued"),
            counter("serve.dequeued"),
            self.config.workers.max(1),
            self.config.queue_depth.max(1),
            snapshot.gauges.get("serve.queue_depth").copied().unwrap_or(0),
            cache.len,
            cache.capacity,
            self.cache.shard_count(),
            cache.hits,
            cache.misses,
            cache.evictions,
        )
    }
}
