//! A concurrent planning service for the droplet-streaming engine.
//!
//! `dmf-serve` turns [`dmf_engine::StreamingEngine`] into a long-lived
//! TCP service speaking line-delimited JSON (the [`dmf_obs::json`]
//! subset — the workspace stays dependency-free). Each request names a
//! target CF ratio, a demand and optional engine-config overrides; the
//! response carries the plan summary (`Tms`, waste, passes, storage
//! peak) and the plan's content-addressed fingerprint, or a typed
//! error. See [`protocol`] for the grammar.
//!
//! The server is a [`std::thread::scope`]d worker pool behind a bounded
//! admission queue over one shared, bounded-LRU
//! [`dmf_engine::PlanCache`], so repeated requests for the same
//! `(config, target, demand)` key are answered from cache —
//! byte-identically, since a plan is a pure function of its key — while
//! the cache's memory stays capped under churn. Overload sheds as fast
//! `busy` rejections; a queueing deadline bounds how stale a served
//! plan request can be; `{"op":"shutdown"}` drains in-flight work
//! before [`Server::run`] returns.
//!
//! # Examples
//!
//! ```
//! use dmf_serve::{Client, ServeConfig, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind(ServeConfig::default())?; // 127.0.0.1:0
//! let addr = server.local_addr()?;
//! std::thread::scope(|s| -> std::io::Result<()> {
//!     let handle = s.spawn(|| server.run());
//!     let mut client = Client::connect(addr)?;
//!     let line = client.request(
//!         r#"{"op":"plan","ratio":"2:1:1:1:1:1:9","demand":20}"#,
//!     )?;
//!     assert!(line.contains("\"tms\":27")); // paper Fig. 3
//!     client.request(r#"{"op":"shutdown"}"#)?;
//!     handle.join().unwrap_or(Ok(()))
//! })
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod queue;

mod client;
mod server;

pub use client::Client;
pub use protocol::{PlanSpec, ProtocolError, Request};
pub use queue::{BoundedQueue, PushError};
pub use server::{ServeConfig, Server};
