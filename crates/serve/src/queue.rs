//! A bounded MPMC job queue: the server's admission-control point.
//!
//! `try_push` never blocks — a full queue is a [`PushError::Full`] the
//! connection thread turns into a `busy` response, which is what keeps a
//! flood of clients from building unbounded memory behind a slow planner.
//! `pop` blocks until an item arrives or the queue is closed **and**
//! drained, so every job admitted before shutdown is still answered.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why [`BoundedQueue::try_push`] rejected an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load.
    Full,
    /// The queue was closed; the server is shutting down.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared by connection threads (producers) and
/// workers (consumers).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (a capacity of 0
    /// is clamped to 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A producer/consumer that panicked mid-push cannot leave the
        // VecDeque half-mutated, so the poisoned state is still coherent.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of currently queued items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` only once the queue is closed **and** fully
    /// drained — consumers use this as their exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// already-queued items remain poppable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_when_full_then_accepts_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(7).unwrap();
        assert_eq!(q.try_push(8), Err(PushError::Full));
    }

    #[test]
    fn close_drains_then_signals_exhaustion() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut seen = 0;
                    while q.pop().is_some() {
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        for i in 0..10 {
            while q.try_push(i) == Err(PushError::Full) {
                std::thread::yield_now();
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 10);
    }
}
