//! A minimal blocking client for the line protocol.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking request/response client: one line out, one line back.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response lines are tiny; don't let Nagle batch them.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request line and reads the one response line (returned
    /// without its trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a connection closed before the response
    /// is [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.stream, "{line}")?;
        self.stream.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}
