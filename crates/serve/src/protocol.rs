//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order. The
//! grammar is the small JSON subset [`dmf_obs::json`] parses; every
//! response is a single object whose first member is `"ok"`.
//!
//! # Requests
//!
//! ```text
//! {"op":"plan","ratio":"2:1:1:1:1:1:9","demand":20}
//! {"op":"plan","ratio":"3:5","demand":8,"algorithm":"rma","scheduler":"mms",
//!  "mixers":3,"storage":4,"deadline_ms":5000}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! # Responses
//!
//! ```text
//! {"ok":true,"type":"plan","fingerprint":"<16 hex>","demand":20,"passes":1,
//!  "tc":11,"tms":27,"waste":5,"inputs":25,"storage_peak":5,"mixers":3,
//!  "summary":"D=20 passes=1 Tc=11 Tms=27 W=5 I=25 q=5 (Mc=3)"}
//! {"ok":false,"error":"busy","message":"..."}
//! {"ok":false,"error":"infeasible","message":"FEAS001: component sum 3 is not..."}
//! ```
//!
//! A plain plan response is a pure function of the request's
//! [`dmf_engine::PlanKey`] tuple: equal keys produce byte-identical
//! response lines whether they were served from the cache or planned
//! fresh — the protocol deliberately carries no hit/miss marker. A
//! request may opt out of that purity with `"trace":true`, which appends
//! the request's `trace_id` (16 hex digits) and a `stages` array of
//! `{name, start_ns, dur_ns}` span records — timings, by nature, differ
//! between runs.

use dmf_engine::{EngineConfig, StreamPlan};
use dmf_obs::json::{self, Json};
use dmf_obs::SpanRecord;
use dmf_ratio::TargetRatio;
use std::fmt;

/// Demand used when a plan request omits `"demand"` (matches the
/// `dmfstream` CLI default).
pub const DEFAULT_DEMAND: u64 = 32;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Plan a target; answered by a worker through the job queue.
    Plan(PlanSpec),
    /// Report `serve.*` metrics and plan-cache statistics.
    Stats,
    /// Liveness probe answered inline by the connection thread.
    Ping,
    /// Stop accepting connections and drain the queue.
    Shutdown,
    /// Test-only: occupy a worker for `ms` milliseconds. Used by the
    /// integration tests (and nothing else) to fill the queue
    /// deterministically; not part of the public grammar.
    Stall {
        /// How long the worker sleeps.
        ms: u64,
    },
}

/// A plan request: the target, demand and engine-config overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// The target CF ratio.
    pub ratio: TargetRatio,
    /// Demand `D` (defaults to [`DEFAULT_DEMAND`]).
    pub demand: u64,
    /// Engine configuration after applying the request's overrides.
    pub config: EngineConfig,
    /// Per-request queueing deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Whether the response should embed the request's trace ID and
    /// per-stage span breakdown (`"trace":true`; defaults to `false`).
    pub trace: bool,
}

/// Why a request line was rejected.
///
/// Carries the typed response code the connection thread answers with:
/// `bad_request` for malformed lines, `infeasible` when the request was
/// well-formed but the mixability pre-pass proved no plan can exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    code: &'static str,
    message: String,
}

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        ProtocolError::bad_request(message)
    }

    /// A malformed request line (bad JSON, unknown op, ill-typed member).
    pub fn bad_request(message: impl Into<String>) -> Self {
        ProtocolError { code: "bad_request", message: message.into() }
    }

    /// A well-formed request the feasibility pre-pass rejected: the CF
    /// vector is unreachable, so the server fails fast instead of
    /// burning a worker on it.
    pub fn infeasible(message: impl Into<String>) -> Self {
        ProtocolError { code: "infeasible", message: message.into() }
    }

    /// A well-formed request naming a mixing algorithm the
    /// [`dmf_mixalgo::MixingAlgorithmRegistry`] does not know. Its own
    /// code (rather than `bad_request`) so clients can tell a typo'd
    /// algorithm from a malformed line — the message lists the
    /// registered keys.
    pub fn unknown_algo(message: impl Into<String>) -> Self {
        ProtocolError { code: "unknown_algo", message: message.into() }
    }

    /// The response code this rejection is answered with.
    pub fn code(&self) -> &'static str {
        self.code
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn member_u64(obj: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("{key:?} must be a non-negative integer"))),
    }
}

fn member_bool(obj: &Json, key: &str) -> Result<Option<bool>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(ProtocolError::new(format!("{key:?} must be a boolean"))),
    }
}

fn member_str<'a>(obj: &'a Json, key: &str) -> Result<Option<&'a str>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("{key:?} must be a string"))),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ProtocolError`] describing the first problem: malformed
/// JSON, a missing/unknown `"op"`, a bad ratio or an ill-typed member.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let value = json::parse(line).map_err(|e| ProtocolError::new(format!("bad JSON: {e}")))?;
    let op = member_str(&value, "op")?.ok_or_else(|| {
        ProtocolError::new("missing \"op\" (expected plan, stats, ping or shutdown)")
    })?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "stall" => Ok(Request::Stall { ms: member_u64(&value, "ms")?.unwrap_or(100) }),
        "plan" => {
            let ratio_text = member_str(&value, "ratio")?
                .ok_or_else(|| ProtocolError::new("plan needs a \"ratio\" string"))?;
            let parts: Vec<u64> = ratio_text
                .split(':')
                .map(|p| p.trim().parse::<u64>())
                .collect::<Result<_, _>>()
                .map_err(|e| ProtocolError::new(format!("bad ratio {ratio_text:?}: {e}")))?;
            let demand = member_u64(&value, "demand")?.unwrap_or(DEFAULT_DEMAND);
            // The mixability pre-pass runs on the raw parts, before
            // TargetRatio construction: unsatisfiable requests are
            // rejected here on the connection thread and never enqueued.
            dmf_check::assert_feasible(&parts, demand)
                .map_err(|e| ProtocolError::infeasible(e.to_string()))?;
            let ratio = TargetRatio::new(parts)
                .map_err(|e| ProtocolError::new(format!("bad ratio {ratio_text:?}: {e}")))?;
            let mut config = EngineConfig::default();
            // "algo" is accepted as an alias for "algorithm" (the CLI's
            // --algo shorthand); "algorithm" wins when both are present.
            let algo_name = match member_str(&value, "algorithm")? {
                Some(name) => Some(name),
                None => member_str(&value, "algo")?,
            };
            if let Some(name) = algo_name {
                let id = dmf_mixalgo::MixingAlgorithmRegistry::resolve(name)
                    .map_err(|e| ProtocolError::unknown_algo(e.to_string()))?;
                config = config.with_algorithm(id);
            }
            if let Some(name) = member_str(&value, "scheduler")? {
                let id = dmf_sched::SchedulerRegistry::resolve(name)
                    .map_err(|e| ProtocolError::new(e.to_string()))?;
                config = config.with_scheduler(id);
            }
            if let Some(mixers) = member_u64(&value, "mixers")? {
                let mixers = usize::try_from(mixers)
                    .map_err(|_| ProtocolError::new("\"mixers\" out of range"))?;
                config = config.with_mixers(mixers);
            }
            if let Some(storage) = member_u64(&value, "storage")? {
                let storage = usize::try_from(storage)
                    .map_err(|_| ProtocolError::new("\"storage\" out of range"))?;
                config = config.with_storage_limit(storage);
            }
            let deadline_ms = member_u64(&value, "deadline_ms")?;
            let trace = member_bool(&value, "trace")?.unwrap_or(false);
            Ok(Request::Plan(PlanSpec { ratio, demand, config, deadline_ms, trace }))
        }
        other => Err(ProtocolError::new(format!(
            "unknown op {other:?} (expected plan, stats, ping or shutdown)"
        ))),
    }
}

fn plan_response_body(plan: &StreamPlan, fingerprint: u64) -> String {
    format!(
        "\"ok\":true,\"type\":\"plan\",\"fingerprint\":\"{fingerprint:016x}\",\
         \"demand\":{},\"passes\":{},\"tc\":{},\"tms\":{},\"waste\":{},\"inputs\":{},\
         \"storage_peak\":{},\"mixers\":{},\"summary\":\"{}\"",
        plan.demand,
        plan.passes.len(),
        plan.total_cycles,
        plan.total_mix_splits,
        plan.total_waste,
        plan.total_inputs,
        plan.storage_peak,
        plan.mixers,
        json::escape(&plan.to_string()),
    )
}

/// The success response for a planned request.
///
/// `fingerprint` is the request's [`dmf_engine::PlanKey::fingerprint`],
/// rendered as 16 lowercase hex digits.
pub fn plan_response(plan: &StreamPlan, fingerprint: u64) -> String {
    format!("{{{}}}", plan_response_body(plan, fingerprint))
}

/// Like [`plan_response`], but for requests that asked for a trace
/// (`"trace":true`): appends the request's `trace_id` as 16 hex digits
/// and a `stages` array with the span breakdown recorded so far
/// (queue wait, pipeline stages, …), each as
/// `{"name":…,"start_ns":…,"dur_ns":…}` relative to the recorder epoch.
pub fn plan_response_traced(
    plan: &StreamPlan,
    fingerprint: u64,
    trace_id: u64,
    stages: &[SpanRecord],
) -> String {
    let mut out = format!("{{{}", plan_response_body(plan, fingerprint));
    out.push_str(&format!(",\"trace_id\":\"{trace_id:016x}\",\"stages\":["));
    for (i, s) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
            json::escape(s.name),
            s.start_ns,
            s.dur_ns,
        ));
    }
    out.push_str("]}");
    out
}

/// A typed error response; `code` is one of `bad_request`, `infeasible`,
/// `unknown_algo`, `busy`, `deadline`, `plan_failed`, `shutting_down` or
/// `internal`.
pub fn error_response(code: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        json::escape(code),
        json::escape(message)
    )
}

/// The response to `{"op":"ping"}`.
pub fn pong_response() -> String {
    "{\"ok\":true,\"type\":\"pong\"}".to_owned()
}

/// The response to `{"op":"shutdown"}`.
pub fn shutdown_response() -> String {
    "{\"ok\":true,\"type\":\"shutdown\"}".to_owned()
}

/// The response to a test-only stall request.
pub fn stalled_response(ms: u64) -> String {
    format!("{{\"ok\":true,\"type\":\"stalled\",\"ms\":{ms}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_engine::MixerBudget;
    use dmf_mixalgo::BaseAlgorithm;
    use dmf_sched::SchedulerKind;

    #[test]
    fn parses_a_minimal_plan_request() {
        let r = parse_request(r#"{"op":"plan","ratio":"2:1:1:1:1:1:9"}"#).unwrap();
        let Request::Plan(spec) = r else { panic!("expected a plan request") };
        assert_eq!(spec.demand, DEFAULT_DEMAND);
        assert_eq!(spec.config, EngineConfig::default());
        assert_eq!(spec.deadline_ms, None);
        assert!(!spec.trace);
        assert_eq!(spec.ratio.parts(), &[2, 1, 1, 1, 1, 1, 9]);
    }

    #[test]
    fn parses_the_trace_flag() {
        let r = parse_request(r#"{"op":"plan","ratio":"1:1","trace":true}"#).unwrap();
        let Request::Plan(spec) = r else { panic!("expected a plan request") };
        assert!(spec.trace);
        assert!(parse_request(r#"{"op":"plan","ratio":"1:1","trace":"yes"}"#).is_err());
    }

    #[test]
    fn parses_all_config_overrides() {
        let r = parse_request(
            r#"{"op":"plan","ratio":"3:5","demand":8,"algorithm":"rma","scheduler":"mms","mixers":3,"storage":4,"deadline_ms":250}"#,
        )
        .unwrap();
        let Request::Plan(spec) = r else { panic!("expected a plan request") };
        assert_eq!(spec.demand, 8);
        assert_eq!(spec.config.algorithm, BaseAlgorithm::Rma);
        assert_eq!(spec.config.scheduler, SchedulerKind::Mms);
        assert_eq!(spec.config.mixers, MixerBudget::Fixed(3));
        assert_eq!(spec.config.storage_limit, Some(4));
        assert_eq!(spec.deadline_ms, Some(250));
    }

    #[test]
    fn parses_control_ops() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#).unwrap(), Request::Shutdown);
        assert_eq!(parse_request(r#"{"op":"stall","ms":7}"#).unwrap(), Request::Stall { ms: 7 });
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"ratio":"1:1"}"#).is_err());
        assert!(parse_request(r#"{"op":"teleport"}"#).is_err());
        assert!(parse_request(r#"{"op":"plan"}"#).is_err());
        assert!(parse_request(r#"{"op":"plan","ratio":"1:2"}"#).is_err()); // sum not 2^d
        assert!(parse_request(r#"{"op":"plan","ratio":"1:1","demand":"many"}"#).is_err());
        assert!(parse_request(r#"{"op":"plan","ratio":"1:1","algorithm":"magic"}"#).is_err());
    }

    #[test]
    fn infeasible_requests_carry_their_own_code() {
        // Sum 3 is not a power of two: well-formed but unsatisfiable.
        let err = parse_request(r#"{"op":"plan","ratio":"1:2"}"#).unwrap_err();
        assert_eq!(err.code(), "infeasible");
        assert!(err.to_string().contains("FEAS001"), "{err}");
        // A single pure fluid has nothing to mix.
        let err = parse_request(r#"{"op":"plan","ratio":"16"}"#).unwrap_err();
        assert_eq!(err.code(), "infeasible");
        assert!(err.to_string().contains("FEAS002"), "{err}");
        // Zero demand is degenerate, caught before any worker sees it.
        let err = parse_request(r#"{"op":"plan","ratio":"1:1","demand":0}"#).unwrap_err();
        assert_eq!(err.code(), "infeasible");
        // Malformed components stay bad_request: "1:x" is not even a ratio.
        let err = parse_request(r#"{"op":"plan","ratio":"1:x"}"#).unwrap_err();
        assert_eq!(err.code(), "bad_request");
    }

    #[test]
    fn unknown_algorithms_carry_their_own_code() {
        let err = parse_request(r#"{"op":"plan","ratio":"1:1","algorithm":"magic"}"#).unwrap_err();
        assert_eq!(err.code(), "unknown_algo");
        assert!(err.to_string().contains("mm"), "{err}");
        // The short "algo" alias resolves through the same registry.
        let err = parse_request(r#"{"op":"plan","ratio":"1:1","algo":"magic"}"#).unwrap_err();
        assert_eq!(err.code(), "unknown_algo");
        let r = parse_request(r#"{"op":"plan","ratio":"1:1","algo":"rma"}"#).unwrap();
        let Request::Plan(spec) = r else { panic!("expected a plan request") };
        assert_eq!(spec.config.algorithm, BaseAlgorithm::Rma);
        // Unknown schedulers stay bad_request: the scheduler set is closed
        // at the protocol level until a streaming scheduler registers.
        let err = parse_request(r#"{"op":"plan","ratio":"1:1","scheduler":"fifo"}"#).unwrap_err();
        assert_eq!(err.code(), "bad_request");
    }

    #[test]
    fn responses_parse_back() {
        let err = error_response("busy", "queue full \"now\"");
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("busy"));
        assert_eq!(v.get("message").and_then(Json::as_str), Some("queue full \"now\""));
        assert!(json::parse(&pong_response()).is_ok());
        assert!(json::parse(&shutdown_response()).is_ok());
        assert!(json::parse(&stalled_response(3)).is_ok());
    }

    #[test]
    fn traced_plan_response_parses_back_with_stages() {
        let plan = dmf_engine::StreamingEngine::new(EngineConfig::default())
            .plan(&"2:1:1:1:1:1:9".parse::<TargetRatio>().unwrap(), 20)
            .unwrap();
        let stages = vec![
            SpanRecord {
                name: "serve_queue_wait",
                trace_id: 0xabc,
                span_id: 1,
                parent_id: 0xabc,
                tid: 1,
                start_ns: 10,
                dur_ns: 5,
            },
            SpanRecord {
                name: "stage_schedule",
                trace_id: 0xabc,
                span_id: 2,
                parent_id: 1,
                tid: 2,
                start_ns: 20,
                dur_ns: 7,
            },
        ];
        let line = plan_response_traced(&plan, 0x1234, 0xabc, &stages);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("trace_id").and_then(Json::as_str), Some("0000000000000abc"));
        let Some(Json::Arr(out)) = v.get("stages") else { panic!("stages must be an array") };
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].get("name").and_then(Json::as_str), Some("stage_schedule"));
        assert_eq!(out[1].get("dur_ns").and_then(Json::as_u64), Some(7));
        // The untraced response is the traced one minus the trace members.
        let plain = plan_response(&plan, 0x1234);
        assert!(line.starts_with(&plain[..plain.len() - 1]));
    }
}
