//! End-to-end tests of the planning service over real loopback sockets.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dmf_engine::{EngineConfig, PlanKey};
use dmf_obs::json::{self, Json};
use dmf_ratio::TargetRatio;
use dmf_serve::{Client, ServeConfig, Server};
use std::time::{Duration, Instant};

const PCR: &str = "2:1:1:1:1:1:9";

fn test_config() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".to_owned(), ..ServeConfig::default() }
}

/// Runs `body` against a live server and asserts a clean drain: the
/// shutdown op is sent by the harness, and `run` must return Ok.
fn with_server(config: ServeConfig, body: impl FnOnce(&Server, std::net::SocketAddr)) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.run());
        body(&server, addr);
        let mut control = Client::connect(addr).unwrap();
        let line = control.request(r#"{"op":"shutdown"}"#).unwrap();
        assert!(line.contains("\"shutdown\""), "unexpected shutdown ack: {line}");
        handle.join().unwrap().unwrap();
    });
}

/// Polls the server-side counter until it reaches `at_least`; panics
/// after 5 seconds. This is what makes the concurrency tests
/// deterministic without sleeping for fixed amounts.
fn await_counter(server: &Server, name: &str, at_least: u64) {
    let started = Instant::now();
    while server.recorder().counter(name) < at_least {
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timed out waiting for {name} >= {at_least} (now {})",
            server.recorder().counter(name)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn plan_round_trip_matches_the_paper_and_the_cache_key() {
    with_server(test_config(), |_, addr| {
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.request(r#"{"op":"ping"}"#).unwrap(), r#"{"ok":true,"type":"pong"}"#);

        let line =
            client.request(&format!(r#"{{"op":"plan","ratio":"{PCR}","demand":20}}"#)).unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "not ok: {line}");
        // Paper Figs. 2–3: D=20 PCR streams in one pass, Tc=11, Tms=27,
        // W=5, I=25, q=5 on Mc=3 mixers.
        assert_eq!(v.get("demand").unwrap().as_u64(), Some(20));
        assert_eq!(v.get("passes").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("tc").unwrap().as_u64(), Some(11));
        assert_eq!(v.get("tms").unwrap().as_u64(), Some(27));
        assert_eq!(v.get("waste").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("inputs").unwrap().as_u64(), Some(25));
        assert_eq!(v.get("storage_peak").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("mixers").unwrap().as_u64(), Some(3));
        assert_eq!(
            v.get("summary").unwrap().as_str(),
            Some("D=20 passes=1 Tc=11 Tms=27 W=5 I=25 q=5 (Mc=3)")
        );

        // The advertised fingerprint is the engine's content address for
        // this (config, target, demand) tuple.
        let target: TargetRatio = PCR.parse().unwrap();
        let key = PlanKey::new(&EngineConfig::default(), &target, 20);
        assert_eq!(
            v.get("fingerprint").unwrap().as_str(),
            Some(format!("{:016x}", key.fingerprint()).as_str())
        );
    });
}

#[test]
fn config_overrides_change_the_fingerprint_and_plan() {
    with_server(test_config(), |_, addr| {
        let mut client = Client::connect(addr).unwrap();
        let base =
            client.request(&format!(r#"{{"op":"plan","ratio":"{PCR}","demand":20}}"#)).unwrap();
        let constrained = client
            .request(&format!(r#"{{"op":"plan","ratio":"{PCR}","demand":20,"storage":3}}"#))
            .unwrap();
        let a = json::parse(&base).unwrap();
        let b = json::parse(&constrained).unwrap();
        assert_ne!(a.get("fingerprint"), b.get("fingerprint"));
        // Paper Table 4: the q'=3 budget forces multi-pass streaming.
        assert!(
            b.get("passes").unwrap().as_u64().unwrap() > 1,
            "expected multi-pass: {constrained}"
        );
    });
}

#[test]
fn bad_requests_get_typed_errors_and_do_not_kill_the_connection() {
    with_server(test_config(), |_, addr| {
        let mut client = Client::connect(addr).unwrap();
        for (request, expected) in [
            ("definitely not json", "bad_request"),
            (r#"{"op":"teleport"}"#, "bad_request"),
            (r#"{"op":"plan","ratio":"1:x"}"#, "bad_request"),
            (r#"{"op":"plan","ratio":"1:2"}"#, "infeasible"),
            (r#"{"op":"plan","ratio":"1:1","demand":0}"#, "infeasible"),
        ] {
            let line = client.request(request).unwrap();
            let v = json::parse(&line).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "for {request}: {line}");
            assert_eq!(v.get("error").and_then(Json::as_str), Some(expected), "for {request}");
        }
        // The connection is still usable afterwards.
        assert!(client.request(r#"{"op":"ping"}"#).unwrap().contains("pong"));
    });
}

#[test]
fn infeasible_requests_fail_fast_with_the_feasibility_rule() {
    with_server(test_config(), |server, addr| {
        let mut client = Client::connect(addr).unwrap();
        // Sum 3 is not a power of two: rejected on the connection thread
        // with the FEAS001 rule in the message, before any worker runs.
        let line = client.request(r#"{"op":"plan","ratio":"1:2","demand":8}"#).unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("error").and_then(Json::as_str), Some("infeasible"), "{line}");
        let message = v.get("message").and_then(Json::as_str).unwrap_or_default();
        assert!(message.contains("FEAS001"), "{line}");
        // A single pure fluid is degenerate (FEAS002).
        let line = client.request(r#"{"op":"plan","ratio":"16","demand":4}"#).unwrap();
        assert!(line.contains("FEAS002"), "{line}");
        // The rejections are accounted under their own counter, not
        // bad_request or plan_failed — and no planning work ever ran.
        let stats = client.request(r#"{"op":"stats"}"#).unwrap();
        let v = json::parse(&stats).unwrap();
        assert_eq!(v.get("infeasible").and_then(Json::as_u64), Some(2), "{stats}");
        assert_eq!(v.get("bad_request").and_then(Json::as_u64), Some(0), "{stats}");
        assert_eq!(v.get("plan_failed").and_then(Json::as_u64), Some(0), "{stats}");
        assert_eq!(v.get("planned").and_then(Json::as_u64), Some(0), "{stats}");
        assert_eq!(server.cache().stats().len, 0, "infeasible requests never warm the cache");
    });
}

#[test]
fn eight_concurrent_clients_get_byte_identical_summaries_for_equal_keys() {
    with_server(test_config(), |server, addr| {
        let responses = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        client
                            .request(&format!(r#"{{"op":"plan","ratio":"{PCR}","demand":20}}"#))
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<String>>()
        });
        assert_eq!(responses.len(), 8);
        for response in &responses {
            assert_eq!(
                response, &responses[0],
                "equal plan keys must serve byte-identical response lines"
            );
        }
        assert_eq!(server.recorder().counter("serve.planned"), 8);
        // All eight collapse onto one cache entry. Concurrent first
        // requests may each miss (plan_shared has no single-flight), but
        // a plan is a pure function of its key, so duplicated work still
        // yields byte-identical responses — which is what matters.
        let stats = server.cache().stats();
        assert_eq!(stats.len, 1);
        assert_eq!(stats.hits + stats.misses, 8);
        assert!(stats.misses >= 1);
    });
}

#[test]
fn a_traced_plan_request_yields_one_connected_span_tree() {
    with_server(test_config(), |server, addr| {
        let mut client = Client::connect(addr).unwrap();
        let line = client
            .request(&format!(r#"{{"op":"plan","ratio":"{PCR}","demand":20,"trace":true}}"#))
            .unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "not ok: {line}");
        assert_eq!(v.get("tc").unwrap().as_u64(), Some(11), "plan differs under tracing");

        // The response carries the trace ID and a stage breakdown that
        // includes the queue wait and every pipeline stage.
        let trace_hex = v.get("trace_id").and_then(Json::as_str).unwrap();
        assert_eq!(trace_hex.len(), 16);
        let trace_id = u64::from_str_radix(trace_hex, 16).unwrap();
        assert_ne!(trace_id, 0);
        let Some(Json::Arr(stages)) = v.get("stages") else { panic!("no stages: {line}") };
        let stage_names: Vec<&str> =
            stages.iter().filter_map(|s| s.get("name").and_then(Json::as_str)).collect();
        for expected in [
            "serve_queue_wait",
            "serve_plan",
            "engine_plan",
            "stage_build_tree",
            "stage_build_forest",
            "stage_schedule",
            "stage_split_passes",
        ] {
            assert!(stage_names.contains(&expected), "missing {expected} in {stage_names:?}");
        }

        // Server-side, the same trace is one connected tree rooted at the
        // connection thread's serve_request span. The root itself is still
        // open while the response is being built, so wait for the request
        // to fully finish before asserting tree shape.
        await_counter(server, "serve.planned", 1);
        let spans = server.recorder().trace_spans(trace_id);
        let root: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
        assert_eq!(root.len(), 1, "one root per trace: {spans:?}");
        assert_eq!(root[0].name, "serve_request");
        assert_eq!(root[0].trace_id, root[0].span_id);
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        for s in &spans {
            assert_eq!(s.trace_id, trace_id);
            if s.parent_id != 0 {
                assert!(ids.contains(&s.parent_id), "orphan parent on {}", s.name);
            }
        }
        let wait = spans.iter().find(|s| s.name == "serve_queue_wait").unwrap();
        assert_eq!(wait.parent_id, root[0].span_id, "queue wait hangs off the request root");
        // The connection thread decoded; a worker thread planned.
        let decode = spans.iter().find(|s| s.name == "serve_decode").unwrap();
        let plan_span = spans.iter().find(|s| s.name == "serve_plan").unwrap();
        assert_eq!(decode.tid, root[0].tid);
        assert_ne!(plan_span.tid, root[0].tid, "planning happens on a worker thread");
    });
}

#[test]
fn lru_cache_stays_bounded_under_churn_and_reports_evictions() {
    // One shard: the exact eviction counts below assume a single global
    // LRU domain, not per-shard slices.
    let config = ServeConfig { cache_capacity: 2, cache_shards: 1, ..test_config() };
    with_server(config, |server, addr| {
        let mut client = Client::connect(addr).unwrap();
        for demand in [10, 11, 12, 13] {
            let line = client
                .request(&format!(r#"{{"op":"plan","ratio":"{PCR}","demand":{demand}}}"#))
                .unwrap();
            assert!(line.contains("\"ok\":true"), "demand {demand} failed: {line}");
        }
        let line = client.request(r#"{"op":"stats"}"#).unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("cache_capacity").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("cache_len").unwrap().as_u64(), Some(2), "cache unbounded: {line}");
        assert_eq!(v.get("cache_evictions").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("planned").unwrap().as_u64(), Some(4));
        assert_eq!(server.cache().stats().evictions, 2);
    });
}

#[test]
fn a_full_queue_rejects_with_busy_instead_of_queueing_unboundedly() {
    // One worker, one queue slot: a stalled worker plus one queued stall
    // leaves no room, so a third request must bounce immediately.
    let config = ServeConfig { workers: 1, queue_depth: 1, ..test_config() };
    with_server(config, |server, addr| {
        std::thread::scope(|s| {
            let occupant = s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.request(r#"{"op":"stall","ms":1500}"#).unwrap()
            });
            // The worker has picked up the first stall...
            await_counter(server, "serve.dequeued", 1);
            let queued = s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.request(r#"{"op":"stall","ms":0}"#).unwrap()
            });
            // ...and the second stall now fills the single queue slot.
            await_counter(server, "serve.enqueued", 2);

            let mut client = Client::connect(addr).unwrap();
            let line =
                client.request(&format!(r#"{{"op":"plan","ratio":"{PCR}","demand":20}}"#)).unwrap();
            let v = json::parse(&line).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "expected rejection: {line}");
            assert_eq!(v.get("error").and_then(Json::as_str), Some("busy"));
            assert!(server.recorder().counter("serve.busy") >= 1);

            // Control ops bypass the queue and stay responsive.
            assert!(client.request(r#"{"op":"stats"}"#).unwrap().contains("\"busy\":1"));

            assert!(occupant.join().unwrap().contains("stalled"));
            assert!(queued.join().unwrap().contains("stalled"));
        });
    });
}

#[test]
fn an_expired_queueing_deadline_is_answered_with_a_deadline_error() {
    let config = ServeConfig { workers: 1, queue_depth: 4, ..test_config() };
    with_server(config, |server, addr| {
        std::thread::scope(|s| {
            let occupant = s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.request(r#"{"op":"stall","ms":400}"#).unwrap()
            });
            await_counter(server, "serve.dequeued", 1);
            // Queued behind a 400ms stall with a 50ms deadline: by the
            // time a worker reaches it, it is already stale.
            let mut client = Client::connect(addr).unwrap();
            let line = client
                .request(&format!(
                    r#"{{"op":"plan","ratio":"{PCR}","demand":20,"deadline_ms":50}}"#
                ))
                .unwrap();
            let v = json::parse(&line).unwrap();
            assert_eq!(v.get("error").and_then(Json::as_str), Some("deadline"), "{line}");
            assert_eq!(server.recorder().counter("serve.deadline"), 1);
            occupant.join().unwrap();
        });
    });
}

#[test]
fn shutdown_drains_queued_work_before_run_returns() {
    let config = ServeConfig { workers: 1, queue_depth: 8, ..test_config() };
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| server.run());
        let occupant = s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.request(r#"{"op":"stall","ms":400}"#).unwrap()
        });
        await_counter(&server, "serve.dequeued", 1);
        // This plan request sits in the queue behind the stall...
        let queued = s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.request(&format!(r#"{{"op":"plan","ratio":"{PCR}","demand":20}}"#)).unwrap()
        });
        await_counter(&server, "serve.enqueued", 2);
        // ...when the shutdown lands.
        let mut control = Client::connect(addr).unwrap();
        control.request(r#"{"op":"shutdown"}"#).unwrap();
        handle.join().unwrap().unwrap();

        // Both in-flight requests were still answered, not dropped.
        assert!(occupant.join().unwrap().contains("stalled"));
        let line = queued.join().unwrap();
        assert!(line.contains("\"tms\":27"), "queued plan lost in shutdown: {line}");
    });
}
