use crate::engine::DilutionError;
use dmf_mixalgo::{dilution_ratio, rebuild_tree, MinMix, MixingAlgorithm, WastePool};
use dmf_mixgraph::{GraphBuilder, MixGraph};
use dmf_ratio::TargetRatio;

/// Result of a dilution-gradient run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradientReport {
    /// The CF numerators realised (one droplet pair each).
    pub cf_numerators: Vec<u64>,
    /// Mix-splits of the shared gradient graph.
    pub mix_splits: u64,
    /// Input droplets of the shared gradient graph.
    pub inputs: u64,
    /// Waste droplets of the shared gradient graph.
    pub waste: u64,
    /// Input droplets if every CF were prepared independently.
    pub separate_inputs: u64,
}

/// Prepares one droplet pair for *each* of several dilution CFs, sharing
/// waste droplets across the targets through a single eager pool — the
/// SDMT objective (single droplet, multiple targets) of the multi-target
/// dilution literature ([5, 11, 23] in the paper's Table 1), built from
/// the same rebuild machinery as the MDST engine.
///
/// CFs are processed in the given order; a CF whose content was already
/// produced as someone's waste costs nothing beyond its final mix.
///
/// # Errors
///
/// Returns [`DilutionError::Ratio`] for out-of-range CFs and propagates
/// construction failures. Duplicate CFs are allowed.
///
/// # Examples
///
/// ```
/// use dmf_dilution::dilution_gradient;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 4-point gradient at d = 4.
/// let (_, report) = dilution_gradient(&[3, 5, 7, 9], 4)?;
/// assert!(report.inputs <= report.separate_inputs);
/// # Ok(())
/// # }
/// ```
pub fn dilution_gradient(
    cf_numerators: &[u64],
    accuracy: u32,
) -> Result<(MixGraph, GradientReport), DilutionError> {
    if cf_numerators.is_empty() {
        return Err(DilutionError::Ratio(dmf_ratio::RatioError::Empty));
    }
    let mut targets: Vec<TargetRatio> = Vec::with_capacity(cf_numerators.len());
    let mut templates = Vec::with_capacity(cf_numerators.len());
    let mut separate_inputs = 0u64;
    for &k in cf_numerators {
        let target = dilution_ratio(k, accuracy)?;
        let template = MinMix.build_template(&target)?;
        separate_inputs += template.leaf_counts().iter().sum::<u64>();
        targets.push(target);
        templates.push(template);
    }
    let mut builder = GraphBuilder::new(2);
    let mut pool = WastePool::new();
    for template in &templates {
        let root = rebuild_tree(template, &mut builder, &mut pool, true)?;
        builder.finish_tree(root);
    }
    let graph = builder
        .finish_multi(&targets)
        .map_err(|e| DilutionError::Algo(dmf_mixalgo::MixAlgoError::Graph(e)))?;
    let stats = graph.stats();
    let report = GradientReport {
        cf_numerators: cf_numerators.to_vec(),
        mix_splits: stats.mix_splits as u64,
        inputs: stats.input_total,
        waste: stats.waste as u64,
        separate_inputs,
    };
    Ok((graph, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_shares_across_targets() {
        let (graph, report) = dilution_gradient(&[3, 5, 7, 9, 11, 13], 4).unwrap();
        graph.validate().unwrap();
        assert_eq!(graph.tree_count(), 6);
        assert!(
            report.inputs < report.separate_inputs,
            "{} vs {}",
            report.inputs,
            report.separate_inputs
        );
        assert_eq!(report.inputs, 2 * 6 + report.waste);
    }

    #[test]
    fn single_cf_gradient_equals_plain_tree() {
        let (graph, report) = dilution_gradient(&[5], 4).unwrap();
        assert_eq!(graph.tree_count(), 1);
        assert_eq!(report.inputs, report.separate_inputs);
    }

    #[test]
    fn duplicate_cfs_reuse_heavily() {
        let (_, twice) = dilution_gradient(&[5, 5], 4).unwrap();
        let (_, once) = dilution_gradient(&[5], 4).unwrap();
        // The second copy rebuilds from the first one's waste droplets.
        assert!(twice.inputs < 2 * once.inputs);
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert!(dilution_gradient(&[], 4).is_err());
        assert!(dilution_gradient(&[0], 4).is_err());
        assert!(dilution_gradient(&[99], 4).is_err());
    }

    #[test]
    fn targets_are_individually_correct() {
        let ks = [1u64, 6, 10, 15];
        let (graph, _) = dilution_gradient(&ks, 4).unwrap();
        for (i, &k) in ks.iter().enumerate() {
            let root = graph.roots()[i];
            let reduced = dilution_ratio(k, 4).unwrap().reduced();
            assert_eq!(graph.node(root).mixture().parts(), reduced.parts());
        }
    }
}
