use dmf_mixalgo::{Capabilities, MixAlgoError, MixingAlgorithm, Template};
use dmf_ratio::{FluidId, TargetRatio};

/// Index convention for two-fluid dilution targets `[sample, buffer]`.
const SAMPLE: usize = 0;
const BUFFER: usize = 1;

fn dilution_parts(target: &TargetRatio) -> Result<(u64, u32), MixAlgoError> {
    let active = target.active_fluid_count();
    if active <= 1 {
        return Err(MixAlgoError::PureTarget);
    }
    if target.fluid_count() != 2 || active != 2 {
        return Err(MixAlgoError::NotADilution { active });
    }
    let reduced = target.reduced();
    Ok((reduced.parts()[SAMPLE], reduced.accuracy()))
}

/// The d-step binary-scan dilution chain (Thies et al. 2008): start from
/// pure buffer and fold in one pure droplet per bit of the (reduced) sample
/// CF numerator, LSB first. Exactly `d` mix-splits, `d + 1` input droplets.
///
/// # Examples
///
/// ```
/// use dmf_dilution::BitScan;
/// use dmf_mixalgo::{dilution_ratio, MixingAlgorithm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = dilution_ratio(5, 4)?; // CF 5/16
/// let tree = BitScan.build_graph(&target)?;
/// assert_eq!(tree.stats().mix_splits, 4); // d mixes
/// assert_eq!(tree.stats().input_total, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitScan;

impl MixingAlgorithm for BitScan {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            sdst_dilution: true,
            sdst_mixing: false,
            mdst_dilution: false,
            mdst_mixing: false,
            sdmt_dilution: false,
            sdmt_mixing: false,
        }
    }

    fn build_template(&self, target: &TargetRatio) -> Result<Template, MixAlgoError> {
        let (k, d) = dilution_parts(target)?;
        // v_0 = pure buffer; v_{j+1} = (v_j + pure(bit_j ? sample : buffer)) / 2.
        // After d steps the sample CF is Σ bit_j 2^j / 2^d = k / 2^d.
        let mut chain = Template::leaf(FluidId(BUFFER), 2);
        for j in 0..d {
            let fluid = if (k >> j) & 1 == 1 { SAMPLE } else { BUFFER };
            chain = Template::mix(chain, Template::leaf(FluidId(fluid), 2))?;
        }
        Ok(chain)
    }
}

/// Dilution by binary search of the CF interval — `DMRW`
/// (Roy et al., IEEE TCAD 2010).
///
/// Maintains the invariant `lo/2^d < k/2^d < hi/2^d` with droplets of both
/// boundary CFs on hand; each step produces the midpoint by mixing the two
/// boundaries and halves the interval toward the target. Boundary droplets
/// recur across steps, so the algorithm shares subgraphs
/// ([`MixingAlgorithm::shares_subgraphs`]) and typically beats the plain
/// [`BitScan`] chain on reactant for CFs whose binary expansion alternates.
///
/// # Examples
///
/// ```
/// use dmf_dilution::Dmrw;
/// use dmf_mixalgo::{dilution_ratio, MixingAlgorithm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = dilution_ratio(5, 4)?;
/// let graph = Dmrw.build_graph(&target)?;
/// graph.stats().assert_conservation();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dmrw;

impl MixingAlgorithm for Dmrw {
    fn name(&self) -> &'static str {
        "DMRW"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            sdst_dilution: true,
            sdst_mixing: false,
            mdst_dilution: false,
            mdst_mixing: false,
            sdmt_dilution: false,
            sdmt_mixing: false,
        }
    }

    fn shares_subgraphs(&self) -> bool {
        true
    }

    fn build_template(&self, target: &TargetRatio) -> Result<Template, MixAlgoError> {
        let (k, d) = dilution_parts(target)?;
        // The interval-bisection template re-derives each boundary from the
        // top, so its size grows roughly like Fibonacci in d (the sharing
        // that keeps the *graph* small only happens at materialisation).
        // Cap the accuracy to keep template construction tractable.
        if d > DMRW_MAX_ACCURACY {
            return Err(MixAlgoError::Ratio(dmf_ratio::RatioError::AccuracyTooLarge {
                accuracy: d,
            }));
        }
        let total = 1u64 << d;
        build_interval(k, 0, total, d, 2)
    }
}

/// Largest (reduced) accuracy level [`Dmrw`] accepts; beyond this the
/// bisection template would blow up exponentially before sharing applies.
pub const DMRW_MAX_ACCURACY: u32 = 24;

/// Recursive DMRW template: the droplet at `k/2^d` is the mix of the
/// current interval boundaries; boundaries are themselves interval
/// midpoints (or pure fluids at 0 and 2^d).
fn build_interval(
    k: u64,
    lo: u64,
    hi: u64,
    d: u32,
    fluid_count: usize,
) -> Result<Template, MixAlgoError> {
    if k == 0 {
        return Ok(Template::leaf(FluidId(BUFFER), fluid_count));
    }
    if k == 1u64 << d {
        return Ok(Template::leaf(FluidId(SAMPLE), fluid_count));
    }
    let mid = (lo + hi) / 2;
    if k == mid {
        let left = boundary(lo, d, fluid_count)?;
        let right = boundary(hi, d, fluid_count)?;
        return Template::mix(left, right);
    }
    if k < mid {
        build_interval(k, lo, mid, d, fluid_count)
    } else {
        build_interval(k, mid, hi, d, fluid_count)
    }
}

/// A boundary droplet is either pure or the midpoint of the dyadic
/// interval that generated it; rebuild it from the top-level search.
fn boundary(value: u64, d: u32, fluid_count: usize) -> Result<Template, MixAlgoError> {
    if value == 0 {
        return Ok(Template::leaf(FluidId(BUFFER), fluid_count));
    }
    if value == 1u64 << d {
        return Ok(Template::leaf(FluidId(SAMPLE), fluid_count));
    }
    build_interval(value, 0, 1u64 << d, d, fluid_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_mixalgo::dilution_ratio;

    #[test]
    fn bitscan_realises_every_cf() {
        for d in 2..=6u32 {
            for k in 1..(1u64 << d) {
                let target = dilution_ratio(k, d).unwrap();
                let graph = BitScan.build_graph(&target).unwrap();
                graph.validate().unwrap();
                let reduced = target.reduced();
                assert_eq!(graph.stats().mix_splits as u32, reduced.accuracy(), "k={k} d={d}");
            }
        }
    }

    #[test]
    fn dmrw_realises_every_cf() {
        for d in 2..=6u32 {
            for k in 1..(1u64 << d) {
                let target = dilution_ratio(k, d).unwrap();
                let graph = Dmrw.build_graph(&target).unwrap();
                graph.validate().unwrap();
                graph.stats().assert_conservation();
            }
        }
    }

    #[test]
    fn dmrw_sharing_saves_reagent_on_alternating_cfs() {
        // 5/16 = 0101b alternates, so boundary droplets recur.
        let target = dilution_ratio(5, 4).unwrap();
        let dmrw = Dmrw.build_graph(&target).unwrap().stats();
        let chain = BitScan.build_graph(&target).unwrap().stats();
        assert!(dmrw.input_total <= chain.input_total);
    }

    #[test]
    fn dmrw_caps_accuracy_to_stay_tractable() {
        // 1 : 2^30 - 1 is a valid dilution target but its bisection
        // template would be astronomically large.
        let target = dilution_ratio(1, 30).unwrap();
        assert!(matches!(
            Dmrw.build_template(&target),
            Err(MixAlgoError::Ratio(dmf_ratio::RatioError::AccuracyTooLarge { accuracy: 30 }))
        ));
        // BitScan has no such limit (its chain is linear in d).
        assert!(BitScan.build_template(&target).is_ok());
    }

    #[test]
    fn rejects_non_dilution_targets() {
        let target = TargetRatio::new(vec![1, 1, 2]).unwrap();
        assert!(matches!(
            BitScan.build_template(&target),
            Err(MixAlgoError::NotADilution { active: 3 })
        ));
        let pure = TargetRatio::new(vec![8, 0]).unwrap();
        assert!(matches!(BitScan.build_template(&pure), Err(MixAlgoError::PureTarget)));
    }

    #[test]
    fn reduced_cfs_shrink_the_chain() {
        // 8/16 reduces to 1/2: a single mix.
        let target = dilution_ratio(8, 4).unwrap();
        let graph = BitScan.build_graph(&target).unwrap();
        assert_eq!(graph.stats().mix_splits, 1);
    }
}
