//! Two-fluid dilution algorithms and the high-throughput dilution engine —
//! the `N = 2` corner of the sample-preparation landscape that the DAC 2014
//! paper's Table 1 surveys and that its streaming engine subsumes.
//!
//! Dilution prepares a *sample* at concentration factor `k / 2^d` in
//! *buffer*. Three classic constructions are provided, all emitting the
//! standard [`dmf_mixalgo::Template`] so they compose with the forest
//! builder and schedulers:
//!
//! * [`BitScan`] — the d-step binary-scan chain (Thies et al. 2008;
//!   Griffith et al. 2006): start from pure buffer and fold in sample or
//!   buffer per bit of `k`, LSB first. Always `d` mix-splits.
//! * [`Dmrw`] — dilution by binary search of the CF interval
//!   (Roy et al., TCAD 2010): each step mixes the droplets bounding the
//!   current interval; repeated boundary droplets are shared, so the graph
//!   form saves reactant over the plain chain.
//! * [`dmf_mixalgo::MinMix`] on a [`dmf_mixalgo::dilution_ratio`] — the
//!   popcount-optimal dilution tree (for reference).
//!
//! On top of these, two engines:
//!
//! * [`stream_dilution`] — the *dilution engine* of Roy et al.
//!   (IET-CDT 2013): a stream of `D` droplets of one CF, realised as a
//!   mixing forest over the chosen dilution template (MDST with `N = 2`);
//! * [`dilution_gradient`] — one droplet pair per CF across a list of
//!   CFs (the SDMT objective of the multi-target dilution literature),
//!   sharing waste droplets across targets through one eager pool.
//!
//! # Examples
//!
//! ```
//! use dmf_dilution::{stream_dilution, DilutionAlgorithm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 16 droplets of a 5/16 dilution on 2 mixers.
//! let report = stream_dilution(DilutionAlgorithm::BitScan, 5, 4, 16, 2)?;
//! assert!(report.targets >= 16);
//! assert!(report.inputs < report.repeated_inputs);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithms;
mod engine;
mod gradient;

pub use algorithms::{BitScan, Dmrw};
pub use engine::{stream_dilution, DilutionAlgorithm, DilutionError, DilutionStreamReport};
pub use gradient::{dilution_gradient, GradientReport};
