use crate::{BitScan, Dmrw};
use dmf_forest::{build_forest, ForestError, ReusePolicy};
use dmf_mixalgo::{dilution_ratio, MinMix, MixAlgoError, MixingAlgorithm};
use dmf_ratio::RatioError;
use dmf_sched::{repeated_baseline, srs_schedule, SchedError};
use std::error::Error;
use std::fmt;

/// Which dilution-tree construction seeds the streaming forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DilutionAlgorithm {
    /// The d-step binary-scan chain ([`BitScan`]).
    BitScan,
    /// Interval bisection with shared boundaries ([`Dmrw`]).
    Dmrw,
    /// The popcount-optimal [`MinMix`] dilution tree.
    MinMix,
}

impl DilutionAlgorithm {
    fn algorithm(self) -> &'static dyn MixingAlgorithm {
        match self {
            DilutionAlgorithm::BitScan => &BitScan,
            DilutionAlgorithm::Dmrw => &Dmrw,
            DilutionAlgorithm::MinMix => &MinMix,
        }
    }
}

/// Error raised by the dilution engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DilutionError {
    /// Ratio construction failed (CF out of range, accuracy too large).
    Ratio(RatioError),
    /// Template construction failed.
    Algo(MixAlgoError),
    /// Forest construction failed.
    Forest(ForestError),
    /// Scheduling failed.
    Sched(SchedError),
}

impl fmt::Display for DilutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DilutionError::Ratio(e) => write!(f, "invalid dilution target: {e}"),
            DilutionError::Algo(e) => write!(f, "dilution tree failed: {e}"),
            DilutionError::Forest(e) => write!(f, "dilution forest failed: {e}"),
            DilutionError::Sched(e) => write!(f, "dilution scheduling failed: {e}"),
        }
    }
}

impl Error for DilutionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DilutionError::Ratio(e) => Some(e),
            DilutionError::Algo(e) => Some(e),
            DilutionError::Forest(e) => Some(e),
            DilutionError::Sched(e) => Some(e),
        }
    }
}

impl From<RatioError> for DilutionError {
    fn from(e: RatioError) -> Self {
        DilutionError::Ratio(e)
    }
}
impl From<MixAlgoError> for DilutionError {
    fn from(e: MixAlgoError) -> Self {
        DilutionError::Algo(e)
    }
}
impl From<ForestError> for DilutionError {
    fn from(e: ForestError) -> Self {
        DilutionError::Forest(e)
    }
}
impl From<SchedError> for DilutionError {
    fn from(e: SchedError) -> Self {
        DilutionError::Sched(e)
    }
}

/// Result of one dilution-engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DilutionStreamReport {
    /// Sample CF numerator `k` (target CF is `k / 2^d`).
    pub cf_numerator: u64,
    /// Accuracy level `d`.
    pub accuracy: u32,
    /// Requested droplet demand.
    pub demand: u64,
    /// Target droplets actually emitted.
    pub targets: u64,
    /// Mix-split operations.
    pub mix_splits: u64,
    /// Input droplets (sample + buffer).
    pub inputs: u64,
    /// Waste droplets.
    pub waste: u64,
    /// Completion time under SRS with the given mixers.
    pub cycles: u32,
    /// Storage units the SRS schedule needs.
    pub storage: usize,
    /// Inputs the repeated (two-droplets-per-pass) baseline would need.
    pub repeated_inputs: u64,
    /// Cycles the repeated baseline would need.
    pub repeated_cycles: u64,
}

/// The high-throughput *dilution engine* (Roy et al., IET-CDT 2013) as a
/// special case of the paper's MDST streaming engine: a mixing forest over
/// a two-fluid dilution template, scheduled by SRS.
///
/// # Errors
///
/// Returns [`DilutionError::Ratio`] for out-of-range CFs (`k` must satisfy
/// `0 < k < 2^d` for a mixable target) and propagates construction and
/// scheduling failures.
pub fn stream_dilution(
    algorithm: DilutionAlgorithm,
    cf_numerator: u64,
    accuracy: u32,
    demand: u64,
    mixers: usize,
) -> Result<DilutionStreamReport, DilutionError> {
    let target = dilution_ratio(cf_numerator, accuracy)?;
    let algo = algorithm.algorithm();
    let template = algo.build_template(&target)?;
    let policy =
        if algo.shares_subgraphs() { ReusePolicy::Eager } else { ReusePolicy::AcrossTrees };
    let forest = build_forest(&template, &target, demand, policy)?;
    let schedule = srs_schedule(&forest, mixers)?;
    let stats = forest.stats();
    let base = algo.build_graph(&target)?;
    let baseline = repeated_baseline(&base, demand, mixers)?;
    Ok(DilutionStreamReport {
        cf_numerator,
        accuracy,
        demand,
        targets: stats.targets() as u64,
        mix_splits: stats.mix_splits as u64,
        inputs: stats.input_total,
        waste: stats.waste as u64,
        cycles: schedule.makespan(),
        storage: schedule.storage(&forest).peak,
        repeated_inputs: baseline.total_inputs,
        repeated_cycles: baseline.total_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_beats_repetition_for_all_algorithms() {
        for algorithm in
            [DilutionAlgorithm::BitScan, DilutionAlgorithm::Dmrw, DilutionAlgorithm::MinMix]
        {
            let report = stream_dilution(algorithm, 5, 4, 16, 2).unwrap();
            assert!(report.targets >= 16);
            assert!(
                report.inputs <= report.repeated_inputs,
                "{algorithm:?}: {} vs {}",
                report.inputs,
                report.repeated_inputs
            );
            assert!(u64::from(report.cycles) <= report.repeated_cycles);
        }
    }

    #[test]
    fn full_cycle_dilution_demand_is_waste_free() {
        // d(reduced) = 4 for 5/16: demand 16 consumes every droplet.
        let report = stream_dilution(DilutionAlgorithm::BitScan, 5, 4, 16, 2).unwrap();
        assert_eq!(report.waste, 0);
        assert_eq!(report.inputs, 16);
    }

    #[test]
    fn rejects_unmixable_cfs() {
        assert!(stream_dilution(DilutionAlgorithm::BitScan, 0, 4, 8, 1).is_err());
        assert!(stream_dilution(DilutionAlgorithm::BitScan, 16, 4, 8, 1).is_err());
        assert!(stream_dilution(DilutionAlgorithm::BitScan, 17, 4, 8, 1).is_err());
    }

    #[test]
    fn report_is_droplet_conserving() {
        let report = stream_dilution(DilutionAlgorithm::Dmrw, 7, 5, 20, 3).unwrap();
        assert_eq!(report.inputs, report.targets + report.waste);
    }
}
