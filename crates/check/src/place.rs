//! Placement rules (`PLC001`–`PLC004`).
//!
//! Geometry is re-derived from the raw module rectangles with local
//! coordinate arithmetic — the checker does not call
//! [`dmf_chip::ChipSpec::validate`] or the `Rect` adjacency helpers, so it
//! stays an independent second opinion on the layout.

use crate::{CheckReport, Location, RuleCode};
use dmf_chip::{ChipSpec, ModuleKind, Rect};

fn rects_within_guard_band(a: &Rect, b: &Rect) -> bool {
    // Two footprints conflict when their bounding boxes come within one
    // cell of each other (overlap or missing guard band).
    a.x < b.x + b.w + 1 && b.x < a.x + a.w + 1 && a.y < b.y + b.h + 1 && b.y < a.y + a.h + 1
}

fn on_boundary(chip: &ChipSpec, r: &Rect) -> bool {
    r.x == 0 || r.y == 0 || r.x + r.w == chip.width() || r.y + r.h == chip.height()
}

/// Checks a chip layout. Covers rules `PLC001`–`PLC004`.
pub fn check_placement(chip: &ChipSpec) -> CheckReport {
    let mut report = CheckReport::new();
    let modules = chip.modules();
    for module in modules {
        let r = module.rect();
        let loc = || Location::Module(module.name().to_string());
        if r.x < 0 || r.y < 0 || r.x + r.w > chip.width() || r.y + r.h > chip.height() {
            report.report(
                RuleCode::Plc001,
                loc(),
                format!(
                    "footprint {}x{} at ({},{}) leaves the {}x{} array",
                    r.w,
                    r.h,
                    r.x,
                    r.y,
                    chip.width(),
                    chip.height()
                ),
            );
        }
        for dead in chip.dead_cells() {
            if dead.x >= r.x && dead.x < r.x + r.w && dead.y >= r.y && dead.y < r.y + r.h {
                report.report(
                    RuleCode::Plc003,
                    loc(),
                    format!("dead electrode ({},{}) under the footprint", dead.x, dead.y),
                );
            }
        }
        let world_facing = matches!(
            module.kind(),
            ModuleKind::Reservoir { .. } | ModuleKind::Waste | ModuleKind::Output
        );
        if world_facing && !on_boundary(chip, &r) {
            report.report(
                RuleCode::Plc004,
                loc(),
                "world-facing module placed in the chip interior".to_string(),
            );
        }
    }
    for (i, a) in modules.iter().enumerate() {
        for b in &modules[i + 1..] {
            if rects_within_guard_band(&a.rect(), &b.rect()) {
                report.report(
                    RuleCode::Plc002,
                    Location::Module(a.name().to_string()),
                    format!("within one cell of {}", b.name()),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_chip::{Coord, ModuleKind};

    #[test]
    fn streaming_presets_are_clean() {
        for (f, m, s) in [(7, 3, 5), (2, 1, 1), (10, 5, 8)] {
            let chip = dmf_chip::presets::streaming_chip(f, m, s).expect("preset fits");
            let report = check_placement(&chip);
            assert!(report.is_empty(), "({f},{m},{s}): {report}");
        }
    }

    #[test]
    fn guard_band_violation_trips_plc002() {
        let mut chip = ChipSpec::new(12, 12).expect("grid");
        chip.add_module("M1", ModuleKind::Mixer, Rect::new(0, 0, 2, 2)).expect("fits");
        chip.add_module("M2", ModuleKind::Mixer, Rect::new(6, 6, 2, 2)).expect("fits");
        // The spec constructor would reject an adjacent module, so corrupt
        // the check input by testing the raw predicate.
        assert!(rects_within_guard_band(&Rect::new(0, 0, 2, 2), &Rect::new(2, 0, 2, 2)));
        assert!(!rects_within_guard_band(&Rect::new(0, 0, 2, 2), &Rect::new(3, 0, 2, 2)));
        assert!(check_placement(&chip).is_empty());
    }

    #[test]
    fn dead_electrode_under_module_trips_plc003() {
        let mut chip = ChipSpec::new(12, 12).expect("grid");
        chip.add_module("M1", ModuleKind::Mixer, Rect::new(4, 4, 2, 2)).expect("fits");
        chip.mark_dead(Coord::new(5, 5));
        let report = check_placement(&chip);
        assert!(report.has(RuleCode::Plc003), "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn interior_reservoir_is_a_warning_only() {
        let mut chip = ChipSpec::new(12, 12).expect("grid");
        chip.add_module("R1", ModuleKind::Reservoir { fluid: 0 }, Rect::new(5, 5, 1, 1))
            .expect("fits");
        let report = check_placement(&chip);
        assert!(report.has(RuleCode::Plc004), "{report}");
        assert!(report.is_clean(), "PLC004 is warning-severity");
    }
}
