//! Mixability feasibility pre-pass (`FEAS001` / `FEAS002`).
//!
//! Every droplet a DMF biochip can produce by (1:1) mix-splits of pure
//! reagents has a *dyadic* CF vector: each concentration factor is
//! `a / 2^d` for the mixing depth `d`, because every mix halves both
//! operand volumes. A requested ratio is therefore reachable iff its
//! component sum is a power of two — the perfect-mixability
//! characterization the ROADMAP cites (arXiv:1806.08875) specialized to
//! the paper's single-target (1:1) algebra. This module re-derives that
//! predicate from the **raw integer parts** of a request — deliberately
//! not from a constructed [`dmf_ratio::TargetRatio`], which already
//! rejects some of these shapes — so the CLI, the batch planner and the
//! serve front end can all reject unsatisfiable requests *before* any
//! planning work starts.

use crate::diag::{CheckReport, Location, RuleCode};
use std::fmt;

/// The first feasibility violation of a request, as a typed error the
/// engine and server can carry (`EngineError::Infeasible`, the serve
/// `infeasible` response code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Infeasibility {
    /// The violated rule (`Feas001` or `Feas002`).
    pub rule: RuleCode,
    /// Human-readable detail, matching the diagnostic's message.
    pub message: String,
}

impl fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.message)
    }
}

impl std::error::Error for Infeasibility {}

/// Runs the feasibility pre-pass over the raw parts of a requested ratio
/// and the demanded droplet count, reporting every violation.
///
/// `FEAS001` fires when the component sum is not a power of two (the CF
/// vector is unreachable under the (1:1)-mix algebra at any depth);
/// `FEAS002` fires for degenerate requests: no components, an all-zero
/// vector, a sum beyond `2^62` (accuracy out of the dyadic range), fewer
/// than two active fluids (nothing to mix), or a zero demand.
pub fn check_feasibility(parts: &[u64], demand: u64) -> CheckReport {
    let mut report = CheckReport::new();
    let at = Location::Artifact;
    if demand == 0 {
        report.report(RuleCode::Feas002, at.clone(), "demand is zero: nothing to prepare");
    }
    if parts.is_empty() {
        report.report(RuleCode::Feas002, at, "ratio has no components");
        return report;
    }
    let active = parts.iter().filter(|&&p| p > 0).count();
    if active == 0 {
        report.report(RuleCode::Feas002, at, "all ratio components are zero");
        return report;
    }
    let Some(sum) = parts.iter().try_fold(0u64, |acc, &p| acc.checked_add(p)) else {
        report.report(RuleCode::Feas002, at, "component sum overflows u64");
        return report;
    };
    // Accuracy d satisfies sum == 2^d; d >= 63 leaves no headroom for the
    // dyadic arithmetic (see dmf-ratio's AccuracyTooLarge).
    if sum > 1 << 62 {
        report.report(
            RuleCode::Feas002,
            at.clone(),
            format!("component sum {sum} exceeds 2^62: accuracy out of the dyadic range"),
        );
    }
    if !sum.is_power_of_two() {
        report.report(
            RuleCode::Feas001,
            at.clone(),
            format!(
                "component sum {sum} is not a power of two: the CF vector is unreachable \
                 under (1:1) mix-splits at any depth"
            ),
        );
    }
    if active < 2 {
        report.report(
            RuleCode::Feas002,
            at,
            "target is a single pure fluid: dispense it, nothing to mix",
        );
    }
    report
}

/// Like [`check_feasibility`], but returns the first violation as a typed
/// [`Infeasibility`] error — the shape the planning layers consume.
///
/// # Errors
///
/// The first `FEAS001`/`FEAS002` finding, if any.
pub fn assert_feasible(parts: &[u64], demand: u64) -> Result<(), Infeasibility> {
    let report = check_feasibility(parts, demand);
    match report.diagnostics().first() {
        None => Ok(()),
        Some(d) => Err(Infeasibility { rule: d.rule, message: d.message.clone() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_requests_pass() {
        assert!(check_feasibility(&[2, 1, 1, 1, 1, 1, 9], 20).is_empty());
        assert!(check_feasibility(&[1, 3], 4).is_empty());
        assert!(check_feasibility(&[0, 1, 1, 0], 2).is_empty(), "inactive fluids are fine");
        assert!(assert_feasible(&[1, 1], 1).is_ok());
    }

    #[test]
    fn non_power_of_two_sum_is_feas001() {
        let report = check_feasibility(&[1, 2], 4);
        assert!(report.has(RuleCode::Feas001));
        assert!(!report.has(RuleCode::Feas002));
        let err = assert_feasible(&[1, 2], 4).unwrap_err();
        assert_eq!(err.rule, RuleCode::Feas001);
        assert!(err.to_string().contains("FEAS001"));
    }

    #[test]
    fn degenerate_requests_are_feas002() {
        for (parts, demand) in
            [(&[][..], 4), (&[0, 0][..], 4), (&[16][..], 4), (&[0, 16, 0][..], 4), (&[1, 3][..], 0)]
        {
            let report = check_feasibility(parts, demand);
            assert!(report.has(RuleCode::Feas002), "parts {parts:?} demand {demand}");
            assert!(!report.has(RuleCode::Feas001), "parts {parts:?} demand {demand}");
        }
        let report = check_feasibility(&[u64::MAX, 2], 4);
        assert!(report.has(RuleCode::Feas002), "overflowing sum");
    }

    #[test]
    fn accuracy_beyond_dyadic_range_is_feas002() {
        let report = check_feasibility(&[1 << 62, 1 << 62], 4);
        assert!(report.has(RuleCode::Feas002));
    }

    #[test]
    fn combined_violations_all_reported() {
        let report = check_feasibility(&[3], 0);
        assert!(report.has(RuleCode::Feas001), "sum 3 is not a power of two");
        assert!(report.has(RuleCode::Feas002), "zero demand and single fluid");
        assert!(report.len() >= 3);
    }
}
