//! Pin-backend rules (`PIN001`–`PIN004`).
//!
//! `PIN001`/`PIN002` audit a [`PinAssignment`] itself; `PIN003` audits a
//! set of concurrent timed routes against one. Following the checker's
//! translation-validation stance, the ghost-hazard arithmetic here is
//! re-derived from the raw group data (coordinate differences over
//! [`PinAssignment::group_of`]) — it never calls
//! [`PinAssignment::co_activation_conflict`] or the router's own
//! bookkeeping, so a bug in the shared predicate cannot hide itself.
//!
//! `PIN004` is the exception by necessity: realized programs move
//! droplets with `TransportTo`, whose concrete paths exist only at
//! execution time, so the program audit replays the program through the
//! strict pinned simulator and reports any co-activation hazard it
//! raises. The simulator's hazard gate is itself exercised against the
//! independent `PIN003` math by the route-level tests.

use crate::{CheckReport, Location, RuleCode};
use dmf_chip::{ChipSpec, Coord};
use dmf_pins::PinAssignment;
use dmf_route::{Grid, RouteRequest, TimedPath};
use dmf_sim::{ChipProgram, SimError, Simulator};

/// Minimum Chebyshev distance between two electrodes sharing a pin, below
/// which a droplet's own motion would drag its ghost into its own zone.
/// Mirrors (but does not import) the backend constructors' lower bound.
const MIN_SELF_SAFE_SPACING: i32 = 3;

/// Whether two electrodes are within one cell of each other — the fluidic
/// exclusion zone, re-derived locally.
fn within_one_cell(a: Coord, b: Coord) -> bool {
    (a.x - b.x).abs() <= 1 && (a.y - b.y).abs() <= 1
}

fn chebyshev(a: Coord, b: Coord) -> i32 {
    (a.x - b.x).abs().max((a.y - b.y).abs())
}

/// Checks a pin assignment against the chip it claims to drive. Covers
/// `PIN001` (coverage and partition integrity) and `PIN002` (self-safe
/// group spacing).
pub fn check_pins(chip: &ChipSpec, pins: &PinAssignment) -> CheckReport {
    let _span = dmf_obs::span!("check_pins");
    let mut report = CheckReport::new();
    if pins.width() != chip.width() || pins.height() != chip.height() {
        report.report(
            RuleCode::Pin001,
            Location::Artifact,
            format!(
                "assignment covers {}x{} but the chip is {}x{}",
                pins.width(),
                pins.height(),
                chip.width(),
                chip.height()
            ),
        );
        return report;
    }
    let mut covered = 0usize;
    for y in 0..chip.height() {
        for x in 0..chip.width() {
            let cell = Coord::new(x, y);
            let Some(pin) = pins.pin_of(cell) else {
                report.report(RuleCode::Pin001, Location::Cell { x, y }, "electrode has no pin");
                continue;
            };
            covered += 1;
            let group = pins.group(pin);
            if !group.contains(&cell) {
                report.report(
                    RuleCode::Pin001,
                    Location::Cell { x, y },
                    format!("electrode maps to {pin} but is missing from that pin's group"),
                );
            }
            for &mate in group {
                if mate != cell && chebyshev(cell, mate) < MIN_SELF_SAFE_SPACING {
                    // Report each unordered pair once, from its lexically
                    // first member.
                    if (cell.y, cell.x) < (mate.y, mate.x) {
                        report.report(
                            RuleCode::Pin002,
                            Location::Cell { x, y },
                            format!(
                                "shares {pin} with {mate} at distance {} (< {MIN_SELF_SAFE_SPACING})",
                                chebyshev(cell, mate)
                            ),
                        );
                    }
                }
            }
        }
    }
    let cells = (chip.width() as usize) * (chip.height() as usize);
    if covered == cells && pins.electrode_count() != cells {
        report.report(
            RuleCode::Pin001,
            Location::Artifact,
            format!("{} electrodes assigned on a {cells}-electrode chip", pins.electrode_count()),
        );
    }
    report
}

/// Position of droplet `index` at step `t`, parking at the destination
/// after arrival (same convention as the `RT*` rules).
fn position(paths: &[TimedPath], index: usize, t: usize) -> Option<Coord> {
    let cells = paths[index].cells();
    cells.get(t).or_else(|| cells.last()).copied()
}

/// Checks concurrent timed routes under a pin backend: the `RT*` rules
/// plus `PIN003` — at no step may an actuation's ghost electrode fire
/// within one cell of another droplet's position at that step or the one
/// before, except exactly on the cell being driven for that droplet.
pub fn check_routes_pinned(
    grid: &Grid,
    requests: &[RouteRequest],
    paths: &[TimedPath],
    pins: &PinAssignment,
) -> CheckReport {
    let _span = dmf_obs::span!("check_routes_pinned");
    let mut report = crate::check_routes(grid, requests, paths);
    if requests.len() != paths.len() {
        return report;
    }
    let steps = paths.iter().map(|p| p.cells().len().saturating_sub(1)).max().unwrap_or(0);
    for t in 1..=steps {
        for i in 0..paths.len() {
            let (Some(now), Some(prev)) = (position(paths, i, t), position(paths, i, t - 1)) else {
                continue;
            };
            if now == prev {
                // Parked droplets hold no new electrode; only actuations
                // cast ghosts.
                continue;
            }
            for j in 0..paths.len() {
                if j == i {
                    continue;
                }
                let (Some(o_now), Some(o_prev)) =
                    (position(paths, j, t), position(paths, j, t - 1))
                else {
                    continue;
                };
                for &g in pins.group_of(now) {
                    if g == now || g == o_now {
                        continue;
                    }
                    if within_one_cell(g, o_now) || within_one_cell(g, o_prev) {
                        report.report(
                            RuleCode::Pin003,
                            Location::Droplet { index: i, step: t },
                            format!(
                                "moving onto {now} ghost-fires {g} inside droplet {j}'s zone \
                                 ({o_prev} -> {o_now})"
                            ),
                        );
                    }
                }
            }
        }
    }
    report
}

/// Replays a realized program through the strict pinned simulator and
/// reports `PIN004` for any co-activation hazard (or any other replay
/// failure — a program that cannot even execute has no pin-safety story).
///
/// Leftover droplets are tolerated: partial programs are still auditable.
pub fn check_program_pins(
    chip: &ChipSpec,
    pins: &PinAssignment,
    program: &ChipProgram,
) -> CheckReport {
    let _span = dmf_obs::span!("check_program_pins");
    let mut report = CheckReport::new();
    match Simulator::new(chip).with_pins(pins).allow_leftovers().run(program) {
        Ok(_) => {}
        Err(SimError::PinConflict { moving, parked, actuated, at }) => {
            report.report(
                RuleCode::Pin004,
                Location::Cell { x: actuated.x, y: actuated.y },
                format!(
                    "actuating {actuated} for droplet {moving} ghost-fires next to droplet \
                     {parked} at {at}"
                ),
            );
        }
        Err(err) => {
            report.report(
                RuleCode::Pin004,
                Location::Artifact,
                format!("program does not replay under the backend: {err}"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_pins::{BackendKind, Broadcast, ChipBackend, RowColumn};
    use dmf_route::{route_concurrent, route_concurrent_pinned};

    #[test]
    fn backend_assignments_pass_their_own_audit() {
        let chip = dmf_chip::presets::pcr_chip();
        for kind in BackendKind::ALL {
            let pins = kind.assign(&chip).expect("assignable");
            let report = check_pins(&chip, &pins);
            assert!(report.is_empty(), "{kind}: {report}");
        }
    }

    #[test]
    fn wrong_dims_and_tight_groups_are_flagged() {
        let chip = dmf_chip::presets::pcr_chip();
        let small = RowColumn::default().assign(5, 5).expect("assignable");
        assert!(check_pins(&chip, &small).has(RuleCode::Pin001));
        // A hand-built assignment with two adjacent cells on one pin.
        let mut raw: Vec<u32> = (0..(chip.width() * chip.height()) as u32).collect();
        raw[1] = 0; // (1,0) joins (0,0)'s pin at distance 1
        let tight =
            PinAssignment::from_pins(chip.width(), chip.height(), raw).expect("well-formed");
        let report = check_pins(&chip, &tight);
        assert!(report.has(RuleCode::Pin002), "{report}");
    }

    #[test]
    fn pinned_router_output_passes_pin003() {
        let grid = Grid::new(16, 12);
        let requests = [
            RouteRequest { from: Coord::new(2, 5), to: Coord::new(2, 5) },
            RouteRequest { from: Coord::new(8, 2), to: Coord::new(8, 10) },
        ];
        let pins = RowColumn::new(5).unwrap().assign(16, 12).unwrap();
        let paths = route_concurrent_pinned(&grid, &requests, &pins).expect("routable");
        let report = check_routes_pinned(&grid, &requests, &paths, &pins);
        assert!(report.is_empty(), "{report}");
        // The pin-blind router's solution for the same scenario is caught.
        let blind = route_concurrent(&grid, &requests).expect("routable");
        let report = check_routes_pinned(&grid, &requests, &blind, &pins);
        assert!(report.has(RuleCode::Pin003), "{report}");
    }

    #[test]
    fn broadcast_routes_audit_clean() {
        let grid = Grid::new(16, 16);
        let requests = [
            RouteRequest { from: Coord::new(1, 5), to: Coord::new(1, 5) },
            RouteRequest { from: Coord::new(7, 0), to: Coord::new(7, 13) },
        ];
        let pins = Broadcast::default().assign(16, 16).unwrap();
        let paths = route_concurrent_pinned(&grid, &requests, &pins).expect("routable");
        let report = check_routes_pinned(&grid, &requests, &paths, &pins);
        assert!(report.is_empty(), "{report}");
    }

    #[test]
    fn program_replay_reports_pin004() {
        use dmf_chip::{ModuleKind, Rect};
        use dmf_sim::{DropletId, Instruction};
        let mut chip = ChipSpec::new(13, 3).unwrap();
        let ra = chip
            .add_module("R1", ModuleKind::Reservoir { fluid: 0 }, Rect::new(0, 1, 1, 1))
            .unwrap();
        let rb = chip
            .add_module("R2", ModuleKind::Reservoir { fluid: 1 }, Rect::new(12, 1, 1, 1))
            .unwrap();
        let pins = RowColumn::new(5).unwrap().assign_chip(&chip).unwrap();
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: rb, droplet: DropletId(1) });
        p.push(Instruction::Transport {
            droplet: DropletId(1),
            path: vec![Coord::new(12, 1), Coord::new(12, 2)],
        });
        p.push(Instruction::Dispense { reservoir: ra, droplet: DropletId(0) });
        p.push(Instruction::Transport {
            droplet: DropletId(0),
            path: (0..=6).map(|x| Coord::new(x, 1)).collect(),
        });
        let report = check_program_pins(&chip, &pins, &p);
        assert!(report.has(RuleCode::Pin004), "{report}");
        // The same program is clean under direct addressing.
        let direct = BackendKind::DirectAddress.assign(&chip).unwrap();
        assert!(check_program_pins(&chip, &direct, &p).is_empty());
    }
}
