use std::fmt;

/// How bad a finding is.
///
/// `Error` diagnostics mean the artifact violates a hard invariant of the
/// paper's synthesis flow and must not be executed; `Warning` diagnostics
/// flag conventions whose violation degrades quality but not correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Convention violated; the artifact is still executable.
    Warning,
    /// Hard invariant violated; the artifact is unsound.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifiers for every rule the checker knows, grouped by the
/// artifact family the rule inspects (`CF*` mixing forest, `SCH*` schedule,
/// `PLC*` placement, `RT*` timed routes, `PLN*` whole-plan aggregates).
///
/// Codes are append-only: a code, once published, keeps its meaning so that
/// JSONL exports remain comparable across versions. See DESIGN.md §11 for
/// the full catalogue and the procedure for adding a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum RuleCode {
    /// Mix node's stored mixture differs from the (1:1) mix of its operands.
    Cf001,
    /// CF denominator does not divide `2^d` (dyadic level exceeds accuracy).
    Cf002,
    /// Root mixture differs from the target ratio.
    Cf003,
    /// Droplet conservation broken: over-consumed, dangling or root-consumed
    /// droplets, or an operand referencing a node outside the graph.
    Cf004,
    /// Zero-waste theorem violated: `W > 0` although `D = p·2^d` (§4.1).
    Cf005,
    /// Forest shape wrong: tree count differs from `⌈D/2⌉`.
    Cf006,
    /// Schedule does not cover the graph (size mismatch / unscheduled node).
    Sch001,
    /// Precedence violated: a node runs no later than one of its operands.
    Sch002,
    /// Mixer occupancy exceeds the mixer budget `Mc` in some cycle.
    Sch003,
    /// Mixer double-booked in a cycle, or mixer index out of range.
    Sch004,
    /// Independent storage recount disagrees with the claimed `q'`
    /// (Algorithm 3 cross-check).
    Sch005,
    /// Module footprint outside the electrode array.
    Plc001,
    /// Module footprints overlap or violate the one-cell guard band.
    Plc002,
    /// Dead electrode under a module footprint.
    Plc003,
    /// World-facing module (reservoir / waste / output) not on the chip
    /// boundary (warning).
    Plc004,
    /// Route leaves the grid, crosses a blocked cell, or is empty /
    /// mismatched against its request.
    Rt001,
    /// Route teleports: consecutive cells are not equal or orthogonally
    /// adjacent.
    Rt002,
    /// Static fluidic constraint violated: two droplets within one cell of
    /// each other at the same step.
    Rt003,
    /// Dynamic fluidic constraint violated: a droplet within one cell of
    /// another droplet's position at `t ± 1`.
    Rt004,
    /// Pin assignment malformed: wrong grid dimensions for the chip, or
    /// groups that do not partition the electrode array.
    Pin001,
    /// Pin group self-hazard: two electrodes sharing a pin closer than the
    /// minimum self-safe spacing (a droplet would drag its own ghost).
    Pin002,
    /// Concurrent-route co-activation hazard: an actuation's ghost fires
    /// inside another droplet's fluidic exclusion zone at some step.
    Pin003,
    /// Program replay under the pin backend hits a co-activation hazard
    /// (or fails to replay at all).
    Pin004,
    /// Pass demands do not cover the plan demand.
    Pln001,
    /// Plan aggregates (`Tc`, `Tms`, `W`, `I`, `q`) disagree with an
    /// independent recount over the passes.
    Pln002,
    /// Cross-contamination: two reagent-disjoint droplet lineages occupy
    /// the same module cell with overlapping residency (no wash window).
    Flow001,
    /// Dataflow malformed: the program's droplet lineage graph cannot be
    /// constructed soundly (use-before-dispense, double-consume, misplaced
    /// operand, wrong module kind, or a same-lineage collision).
    Flow002,
    /// Volume conservation broken: the per-pass droplet ledger does not
    /// prove dispensed = emitted + discarded (a droplet leaked on-array or
    /// the program disagrees with the pass's declared aggregates).
    Flow003,
    /// Mixability: the CF vector is unreachable under the (1:1)-mix
    /// algebra (component sum is not a power of two).
    Feas001,
    /// Unpreparable request: degenerate target or demand (empty/all-zero
    /// parts, accuracy beyond `2^62`, fewer than two active fluids, or a
    /// zero demand).
    Feas002,
}

impl RuleCode {
    /// Every rule, in catalogue order.
    pub const ALL: [RuleCode; 30] = [
        RuleCode::Cf001,
        RuleCode::Cf002,
        RuleCode::Cf003,
        RuleCode::Cf004,
        RuleCode::Cf005,
        RuleCode::Cf006,
        RuleCode::Sch001,
        RuleCode::Sch002,
        RuleCode::Sch003,
        RuleCode::Sch004,
        RuleCode::Sch005,
        RuleCode::Plc001,
        RuleCode::Plc002,
        RuleCode::Plc003,
        RuleCode::Plc004,
        RuleCode::Rt001,
        RuleCode::Rt002,
        RuleCode::Rt003,
        RuleCode::Rt004,
        RuleCode::Pin001,
        RuleCode::Pin002,
        RuleCode::Pin003,
        RuleCode::Pin004,
        RuleCode::Pln001,
        RuleCode::Pln002,
        RuleCode::Flow001,
        RuleCode::Flow002,
        RuleCode::Flow003,
        RuleCode::Feas001,
        RuleCode::Feas002,
    ];

    /// Parses a stable textual code (`"FLOW001"`, case-insensitive) back
    /// into its rule; `None` for unknown codes.
    pub fn parse(text: &str) -> Option<RuleCode> {
        let upper = text.to_ascii_uppercase();
        RuleCode::ALL.into_iter().find(|rule| rule.code() == upper)
    }

    /// The stable textual code (`"CF001"`, `"SCH003"`, …).
    pub fn code(self) -> &'static str {
        match self {
            RuleCode::Cf001 => "CF001",
            RuleCode::Cf002 => "CF002",
            RuleCode::Cf003 => "CF003",
            RuleCode::Cf004 => "CF004",
            RuleCode::Cf005 => "CF005",
            RuleCode::Cf006 => "CF006",
            RuleCode::Sch001 => "SCH001",
            RuleCode::Sch002 => "SCH002",
            RuleCode::Sch003 => "SCH003",
            RuleCode::Sch004 => "SCH004",
            RuleCode::Sch005 => "SCH005",
            RuleCode::Plc001 => "PLC001",
            RuleCode::Plc002 => "PLC002",
            RuleCode::Plc003 => "PLC003",
            RuleCode::Plc004 => "PLC004",
            RuleCode::Rt001 => "RT001",
            RuleCode::Rt002 => "RT002",
            RuleCode::Rt003 => "RT003",
            RuleCode::Rt004 => "RT004",
            RuleCode::Pin001 => "PIN001",
            RuleCode::Pin002 => "PIN002",
            RuleCode::Pin003 => "PIN003",
            RuleCode::Pin004 => "PIN004",
            RuleCode::Pln001 => "PLN001",
            RuleCode::Pln002 => "PLN002",
            RuleCode::Flow001 => "FLOW001",
            RuleCode::Flow002 => "FLOW002",
            RuleCode::Flow003 => "FLOW003",
            RuleCode::Feas001 => "FEAS001",
            RuleCode::Feas002 => "FEAS002",
        }
    }

    /// One-line summary of what the rule enforces.
    pub fn summary(self) -> &'static str {
        match self {
            RuleCode::Cf001 => "mix node content must equal the 1:1 mix of its operands",
            RuleCode::Cf002 => "CF denominators must divide 2^d",
            RuleCode::Cf003 => "root mixtures must equal the target ratio",
            RuleCode::Cf004 => "every droplet pair feeds 1..=2 consumers; roots feed none",
            RuleCode::Cf005 => "W = 0 whenever D = p*2^d (zero-waste theorem)",
            RuleCode::Cf006 => "a demand-D forest has ceil(D/2) component trees",
            RuleCode::Sch001 => "every mix node is scheduled exactly once",
            RuleCode::Sch002 => "operands execute strictly before their consumer",
            RuleCode::Sch003 => "per-cycle mixer occupancy stays within Mc",
            RuleCode::Sch004 => "one node per mixer per cycle, mixers within range",
            RuleCode::Sch005 => "independent storage recount equals the claimed q'",
            RuleCode::Plc001 => "module footprints stay on the electrode array",
            RuleCode::Plc002 => "module footprints keep a one-cell guard band",
            RuleCode::Plc003 => "no module sits on a diagnosed-dead electrode",
            RuleCode::Plc004 => "world-facing modules sit on the chip boundary",
            RuleCode::Rt001 => "routes stay on passable cells and match their request",
            RuleCode::Rt002 => "routes move at most one orthogonal cell per step",
            RuleCode::Rt003 => "droplets keep one cell apart at every step",
            RuleCode::Rt004 => "droplets keep one cell apart across adjacent steps",
            RuleCode::Pin001 => "pin assignments cover the chip and partition its electrodes",
            RuleCode::Pin002 => "pin-sharing electrodes keep the minimum self-safe spacing",
            RuleCode::Pin003 => "no route step ghost-fires inside another droplet's zone",
            RuleCode::Pin004 => "programs replay cleanly under the pin backend",
            RuleCode::Pln001 => "pass demands cover the plan demand exactly",
            RuleCode::Pln002 => "plan aggregates match an independent recount",
            RuleCode::Flow001 => "reagent-disjoint lineages never share a cell without a wash",
            RuleCode::Flow002 => "programs replay as a sound droplet dataflow graph",
            RuleCode::Flow003 => "dispensed volume equals emitted + discarded (no leaks)",
            RuleCode::Feas001 => "CF vectors are reachable under the (1:1)-mix algebra",
            RuleCode::Feas002 => "requests name a preparable target and a positive demand",
        }
    }

    /// The severity this rule reports at.
    pub fn severity(self) -> Severity {
        match self {
            RuleCode::Plc004 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Long-form documentation of the rule: what it enforces, why the
    /// invariant matters for the paper's synthesis flow, and what a
    /// violation usually indicates. Rendered by `dmfstream check
    /// --explain CODE`; every rule has non-empty text (a meta-test
    /// enforces this).
    pub fn explain(self) -> &'static str {
        match self {
            RuleCode::Cf001 => {
                "Every internal vertex of a mixing graph is one (1:1) mix-split: its stored \
                 mixture must be exactly (a + b) / 2 of its two operand mixtures, computed in \
                 the dyadic CF arithmetic the checker re-implements from scratch. A mismatch \
                 means the forest does not compute the chemistry it claims — the resulting \
                 droplets would carry a different concentration vector than the plan reports."
            }
            RuleCode::Cf002 => {
                "All concentration factors in a depth-d synthesis are dyadic rationals with \
                 denominator dividing 2^d: each (1:1) mix halves volumes, so no other \
                 denominators can arise. A CF whose reduced denominator does not divide 2^d \
                 cannot be produced by any sequence of balanced mix-splits and indicates a \
                 corrupted or hand-edited node mixture."
            }
            RuleCode::Cf003 => {
                "The root of every component tree must store exactly the target ratio. Roots \
                 are what the plan emits as target droplets; a root holding any other mixture \
                 means the assay receives the wrong fluid even if every intermediate step is \
                 internally consistent."
            }
            RuleCode::Cf004 => {
                "Droplet conservation inside the forest: every non-root vertex produces two \
                 droplets consumed by one or two later mix vertices (the unconsumed one, if \
                 any, is waste), roots feed no one, and every operand reference points inside \
                 the graph. Violations (over-consumed, dangling or root-consumed droplets) \
                 mean the forest's droplet bookkeeping is inconsistent and its W/I statistics \
                 are meaningless."
            }
            RuleCode::Cf005 => {
                "The paper's zero-waste theorem (§4.1): when the demand D is p·2^d for the \
                 target's accuracy d, the mixing forest can and must consume every \
                 intermediate droplet — W = 0. Positive waste under such a demand means the \
                 forest constructor failed to chain its trees through the waste pool."
            }
            RuleCode::Cf006 => {
                "A demand-D mixing forest streams two target droplets per component tree, so \
                 it must contain exactly ceil(D/2) trees. Any other count means the forest \
                 either under-produces the demand or silently over-produces (wasting \
                 reactant)."
            }
            RuleCode::Sch001 => {
                "The schedule must cover the forest exactly: every mix vertex appears in \
                 exactly one (cycle, mixer) slot and the schedule contains no vertices \
                 outside the graph. An unscheduled vertex would never execute; a duplicated \
                 one would execute twice."
            }
            RuleCode::Sch002 => {
                "Dataflow precedence: a mix vertex consumes its operands' droplets, so it \
                 must be scheduled strictly after both operand vertices. An inversion means \
                 the schedule asks a mixer to mix droplets that do not exist yet."
            }
            RuleCode::Sch003 => {
                "In any cycle, the number of concurrently executing mix vertices must stay \
                 within the mixer budget Mc the plan claims. Exceeding it means the schedule \
                 cannot run on the chip the plan was costed for."
            }
            RuleCode::Sch004 => {
                "Mixer slots are exclusive: one vertex per mixer per cycle, and every mixer \
                 index must lie within the budget. Double-booking a mixer or addressing a \
                 mixer outside the chip means the schedule is physically unexecutable."
            }
            RuleCode::Sch005 => {
                "Storage accounting: the checker re-counts storage units with an independent \
                 event sweep (a second implementation of the paper's Algorithm 3) and the \
                 result must equal the claimed q'. A mismatch means the plan under- or \
                 over-reports its storage footprint — the quantity multi-pass splitting is \
                 budgeted against."
            }
            RuleCode::Plc001 => {
                "Every module footprint must lie fully on the electrode array. A module \
                 hanging off the edge has electrodes that do not exist; droplets routed into \
                 it would leave the chip."
            }
            RuleCode::Plc002 => {
                "Module footprints must not overlap and must keep a one-cell guard band so \
                 a droplet inside one module cannot accidentally merge with a droplet in an \
                 adjacent module. Guard-band violations are latent cross-contamination sites."
            }
            RuleCode::Plc003 => {
                "No module may sit on an electrode diagnosed dead: a dead electrode cannot \
                 actuate, so droplets entering the footprint would strand. Placements must \
                 route around the chip's current fault map."
            }
            RuleCode::Plc004 => {
                "Convention (warning): world-facing modules — reservoirs, waste ports, \
                 output ports — belong on the chip boundary where tubing can reach them. An \
                 interior reservoir still simulates correctly but cannot be built."
            }
            RuleCode::Rt001 => {
                "A timed route must start at its request's source, end at its sink, stay on \
                 the grid and avoid blocked cells (module interiors, dead electrodes). Any \
                 excursion means the route does not implement its transport request."
            }
            RuleCode::Rt002 => {
                "Electrode actuation moves a droplet to an orthogonally adjacent cell (or \
                 holds it). A route step that jumps farther is a teleport the hardware \
                 cannot perform."
            }
            RuleCode::Rt003 => {
                "Static fluidic constraint: two concurrently routed droplets must never be \
                 within one cell of each other at the same timestep, or they would merge on \
                 contact."
            }
            RuleCode::Rt004 => {
                "Dynamic fluidic constraint: a droplet must also keep one cell of clearance \
                 against every other droplet's position one step earlier and later, or \
                 trailing charge can drag the pair together between steps."
            }
            RuleCode::Pin001 => {
                "A pin assignment must cover the chip exactly: the pin grid has the chip's \
                 dimensions and the pin groups partition the electrode set. Anything else \
                 means some electrode is unaddressable or doubly driven."
            }
            RuleCode::Pin002 => {
                "Electrodes sharing one pin must keep the minimum self-safe spacing (3 \
                 cells): actuating a droplet on one electrode ghost-actuates every \
                 group-mate, and a ghost within two cells of the droplet itself would drag \
                 it off its route."
            }
            RuleCode::Pin003 => {
                "Under shared pins, each actuation of one route fires ghost electrodes \
                 elsewhere; none may land inside another concurrently moving droplet's \
                 fluidic exclusion zone. The checker re-derives ghost sets from raw group \
                 data, independent of the backend that produced them."
            }
            RuleCode::Pin004 => {
                "Whole-program replay under the pin backend: executing the realized \
                 instruction stream with ghost semantics must never put a harmful \
                 co-activation next to a parked or moving droplet, and must replay at all. \
                 This is the end-to-end pin-safety gate over a full pass."
            }
            RuleCode::Pln001 => {
                "The per-pass demands of a streaming plan must sum to exactly the requested \
                 demand D. A shortfall under-delivers the assay; an overshoot silently burns \
                 reactant."
            }
            RuleCode::Pln002 => {
                "The plan's headline aggregates (Tc, Tms, W, I, I[], q) must equal an \
                 independent recount over its passes' forests and schedules. These numbers \
                 are what tables, benchmarks and the serve API report — they must not drift \
                 from the artifacts."
            }
            RuleCode::Flow001 => {
                "Cross-contamination: the dataflow analysis tracks every droplet's reagent \
                 set (its lineage) and its residency on module cells. Two droplets whose \
                 reagent sets are disjoint must never occupy one module cell with \
                 overlapping residency — between a departure and the next arrival the \
                 executor gets a wash window, but simultaneous residency of foreign \
                 lineages means residue of one assay chemical is carried into another. The \
                 diagnostic names both droplets with their full module trails and reagent \
                 sets."
            }
            RuleCode::Flow002 => {
                "Sound dataflow: replaying the instruction stream must define every droplet \
                 before use (dispense or mix-split output), consume it at most once, find \
                 mix operands at the executing mixer, match store/fetch cells, address the \
                 right module kinds (dispense at reservoirs, discard at waste, emit at \
                 outputs), and never collide two droplets of a shared lineage on one cell. \
                 Any violation makes the lineage graph — and therefore every other flow \
                 guarantee — unsound."
            }
            RuleCode::Flow003 => {
                "Volume conservation: a (1:1) mix-split consumes two unit droplets and \
                 produces two, so over a whole pass every dispensed droplet must end \
                 emitted, discarded to waste, or consumed into another droplet — the ledger \
                 proves dispensed = emitted + discarded, with nothing left on-array. A \
                 leftover droplet is a leak (an off-by-one in the pass compiler); a ledger \
                 that disagrees with the pass's declared I/W/D' means the program and the \
                 plan tell different stories."
            }
            RuleCode::Feas001 => {
                "Mixability pre-pass: every droplet produced by (1:1) mix-splits of pure \
                 reagents has CF vector a/2^d — dyadic coordinates over a power-of-two \
                 denominator. A ratio whose component sum is not a power of two therefore \
                 names a mixture no mixing tree can reach, at any depth; the request is \
                 rejected before planning instead of failing deep inside tree construction."
            }
            RuleCode::Feas002 => {
                "Preparable-request pre-pass: a target must have at least one component, a \
                 non-zero component vector, an accuracy within the dyadic range (sum ≤ \
                 2^62), at least two active fluids (a pure reagent needs dispensing, not \
                 mixing), and a demand of at least one droplet. Degenerate requests are \
                 rejected up front with this code rather than surfacing as internal \
                 planner errors."
            }
        }
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Span-like location of a finding inside its artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The whole artifact (no finer location applies).
    Artifact,
    /// A mix-split vertex, by arena index (renders as `n3`).
    Node(u32),
    /// A schedule timestep (1-based, renders as `t=4`).
    Cycle(u32),
    /// A chip module, by name.
    Module(String),
    /// An electrode.
    Cell {
        /// Column.
        x: i32,
        /// Row.
        y: i32,
    },
    /// A step of one timed route (droplet = request index).
    Droplet {
        /// Index of the route request.
        index: usize,
        /// Time step within the route.
        step: usize,
    },
    /// A pass of a streaming plan (0-based).
    Pass(usize),
    /// An instruction of a realized chip program, by stream index
    /// (renders as `i42`).
    Instr(usize),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Artifact => write!(f, "-"),
            Location::Node(i) => write!(f, "n{i}"),
            Location::Cycle(t) => write!(f, "t={t}"),
            Location::Module(name) => f.write_str(name),
            Location::Cell { x, y } => write!(f, "({x},{y})"),
            Location::Droplet { index, step } => write!(f, "d{index}@t{step}"),
            Location::Pass(i) => write!(f, "pass {}", i + 1),
            Location::Instr(i) => write!(f, "i{i}"),
        }
    }
}

/// One finding: a violated rule, where it was observed and a human-readable
/// explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleCode,
    /// Severity (defaults to the rule's own severity).
    pub severity: Severity,
    /// Where the violation was observed.
    pub location: Location,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic at the rule's default severity.
    pub fn new(rule: RuleCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic { rule, severity: rule.severity(), location, message: message.into() }
    }

    /// One JSON object (single line, no trailing newline) for JSONL export.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"location\":\"{}\",\"message\":\"{}\"}}",
            self.rule,
            self.severity,
            dmf_obs::json::escape(&self.location.to_string()),
            dmf_obs::json::escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] at {}: {}", self.severity, self.rule, self.location, self.message)
    }
}

/// The outcome of a checker pass: an ordered list of [`Diagnostic`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        CheckReport::default()
    }

    /// Records a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Records a finding at the rule's default severity.
    pub fn report(&mut self, rule: RuleCode, location: Location, message: impl Into<String>) {
        self.push(Diagnostic::new(rule, location, message));
    }

    /// Absorbs another report's findings.
    pub fn merge(&mut self, other: CheckReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in discovery order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether no finding at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether no *error*-severity finding was recorded (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether some finding carries the given rule code.
    pub fn has(&self, rule: RuleCode) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Renders the findings through the shared [`dmf_obs::Table`] writer.
    pub fn table(&self) -> dmf_obs::Table {
        let mut table = dmf_obs::Table::new(["severity", "rule", "location", "message"]);
        for d in &self.diagnostics {
            table.row([
                d.severity.to_string(),
                d.rule.to_string(),
                d.location.to_string(),
                d.message.clone(),
            ]);
        }
        table
    }

    /// All findings as JSON lines (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "check: clean (0 diagnostics)");
        }
        writeln!(f, "check: {} error(s), {} warning(s)", self.error_count(), self.warning_count())?;
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for rule in RuleCode::ALL {
            assert!(seen.insert(rule.code()), "duplicate code {}", rule.code());
            assert!(!rule.summary().is_empty());
        }
        assert_eq!(RuleCode::Cf001.code(), "CF001");
        assert_eq!(RuleCode::Sch005.code(), "SCH005");
        assert_eq!(RuleCode::Flow001.code(), "FLOW001");
        assert_eq!(RuleCode::Feas002.code(), "FEAS002");
        assert_eq!(RuleCode::Plc004.severity(), Severity::Warning);
        assert_eq!(RuleCode::Rt002.severity(), Severity::Error);
        assert_eq!(RuleCode::Feas001.severity(), Severity::Error);
    }

    #[test]
    fn codes_parse_back() {
        for rule in RuleCode::ALL {
            assert_eq!(RuleCode::parse(rule.code()), Some(rule));
            assert_eq!(RuleCode::parse(&rule.code().to_lowercase()), Some(rule));
        }
        assert_eq!(RuleCode::parse("FLOW999"), None);
        assert_eq!(RuleCode::parse(""), None);
    }

    #[test]
    fn report_counts_and_rendering() {
        let mut report = CheckReport::new();
        assert!(report.is_clean() && report.is_empty());
        report.report(RuleCode::Plc004, Location::Module("R1".into()), "not on boundary");
        assert!(report.is_clean(), "warnings leave the report clean");
        report.report(RuleCode::Cf001, Location::Node(3), "got <1:1>/2, stored <3:1>/4");
        assert!(!report.is_clean());
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has(RuleCode::Cf001));
        assert!(!report.has(RuleCode::Rt001));
        let text = report.table().to_string();
        assert!(text.contains("CF001") && text.contains("n3"));
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            dmf_obs::json::parse(line).expect("valid JSON");
        }
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(RuleCode::Rt003, Location::Droplet { index: 1, step: 4 }, "x");
        assert_eq!(d.to_string(), "error[RT003] at d1@t4: x");
        assert_eq!(Location::Cell { x: 2, y: 5 }.to_string(), "(2,5)");
        assert_eq!(Location::Cycle(7).to_string(), "t=7");
        assert_eq!(Location::Pass(0).to_string(), "pass 1");
    }
}
