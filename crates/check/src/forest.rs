//! Mixing-forest rules (`CF001`–`CF006`).
//!
//! Everything here is re-derived from the raw node operands: the dyadic
//! (1:1)-mix arithmetic is re-implemented locally rather than calling
//! [`dmf_ratio::Mixture::mix`], and consumer lists come from scanning the
//! operands rather than from [`dmf_mixgraph::MixGraph::consumers`], so a bug
//! in the producer's accounting cannot hide from the checker.

use crate::{CheckReport, Location, RuleCode};
use dmf_mixgraph::{MixGraph, Operand};
use dmf_ratio::TargetRatio;

/// A CF vector re-derived by the checker: `parts[i] / 2^level`, kept in the
/// same canonical form as [`dmf_ratio::Mixture`] (no common factor of two).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Vector {
    level: u32,
    parts: Vec<u64>,
}

impl Vector {
    fn pure(fluid: usize, fluid_count: usize) -> Option<Vector> {
        if fluid >= fluid_count {
            return None;
        }
        let mut parts = vec![0u64; fluid_count];
        parts[fluid] = 1;
        Some(Vector { level: 0, parts })
    }

    fn canonicalise(mut self) -> Vector {
        while self.level > 0 && self.parts.iter().all(|p| p % 2 == 0) {
            for p in &mut self.parts {
                *p /= 2;
            }
            self.level -= 1;
        }
        self
    }

    /// The checker's own (1:1)-mix: scale both operands to the common
    /// level, add component-wise, bump the level. `None` on overflow or a
    /// fluid-set mismatch.
    fn mix(&self, other: &Vector) -> Option<Vector> {
        if self.parts.len() != other.parts.len() {
            return None;
        }
        let common = self.level.max(other.level);
        if common + 1 >= 63 {
            return None;
        }
        let ls = common - self.level;
        let rs = common - other.level;
        let parts =
            self.parts.iter().zip(&other.parts).map(|(&a, &b)| (a << ls) + (b << rs)).collect();
        Some(Vector { level: common + 1, parts }.canonicalise())
    }

    fn render(&self) -> String {
        let cells: Vec<String> = self.parts.iter().map(u64::to_string).collect();
        format!("<{}>/{}", cells.join(":"), 1u64 << self.level)
    }
}

/// Independent recount of a forest's aggregate droplet bookkeeping, derived
/// purely from the node operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestCounts {
    /// Mix-split operations `Tms` (one per node).
    pub mix_splits: u64,
    /// Waste droplets `W`: unconsumed outputs of non-root nodes.
    pub waste: u64,
    /// Input droplets per fluid, `I[]`.
    pub inputs: Vec<u64>,
    /// Total input droplets `I`.
    pub input_total: u64,
    /// Component trees `|F|`.
    pub trees: u64,
}

/// Recounts `Tms`, `W`, `I[]`, `I` and `|F|` from the operand lists alone.
///
/// This is the checker's second implementation of the bookkeeping that
/// [`dmf_mixgraph::MixGraph::stats`] performs; the two must agree on any
/// valid graph, and plan-level rules (`PLN002`) compare producers against
/// this recount.
pub fn recount_forest(graph: &MixGraph) -> ForestCounts {
    let n = graph.node_count();
    let mut consumed = vec![0u64; n];
    let mut inputs = vec![0u64; graph.fluid_count()];
    for (_, node) in graph.iter() {
        for op in node.operands() {
            match op {
                Operand::Input(f) => {
                    if let Some(slot) = inputs.get_mut(f.0) {
                        *slot += 1;
                    }
                }
                Operand::Droplet(src) => {
                    if let Some(slot) = consumed.get_mut(src.index()) {
                        *slot += 1;
                    }
                }
            }
        }
    }
    let mut waste = 0u64;
    for (id, _) in graph.iter() {
        if !graph.is_root(id) {
            waste += 2u64.saturating_sub(consumed[id.index()]);
        }
    }
    let input_total = inputs.iter().sum();
    ForestCounts {
        mix_splits: n as u64,
        waste,
        inputs,
        input_total,
        trees: graph.tree_count() as u64,
    }
}

/// Checks a mixing forest against the target it claims to prepare and the
/// demand it was built for. Covers rules `CF001`–`CF006`.
pub fn check_forest(graph: &MixGraph, target: &TargetRatio, demand: u64) -> CheckReport {
    let mut report = CheckReport::new();
    let n = graph.node_count();
    let d = target.accuracy();
    let fluid_count = graph.fluid_count();

    // Re-derive every node's content bottom-up. The arena is in
    // construction order, so operands of a well-formed graph precede their
    // consumer; a forward (or self) reference is a conservation defect.
    let mut derived: Vec<Option<Vector>> = vec![None; n];
    let mut consumed = vec![0u32; n];
    for (id, node) in graph.iter() {
        let mut operand_vec = |op: Operand| -> Option<Vector> {
            match op {
                Operand::Input(f) => {
                    let v = Vector::pure(f.0, fluid_count);
                    if v.is_none() {
                        report.report(
                            RuleCode::Cf004,
                            Location::Node(id.index() as u32),
                            format!("operand references fluid x{} outside the fluid set", f.0 + 1),
                        );
                    }
                    v
                }
                Operand::Droplet(src) => {
                    if src.index() >= id.index() {
                        report.report(
                            RuleCode::Cf004,
                            Location::Node(id.index() as u32),
                            format!("operand {src} is not an earlier node (cycle or dangling ref)"),
                        );
                        return None;
                    }
                    consumed[src.index()] += 1;
                    derived[src.index()].clone()
                }
            }
        };
        let left = operand_vec(node.left());
        let right = operand_vec(node.right());
        if let (Some(left), Some(right)) = (left, right) {
            match left.mix(&right) {
                Some(mixed) => {
                    let stored = Vector {
                        level: node.mixture().level(),
                        parts: node.mixture().parts().to_vec(),
                    }
                    .canonicalise();
                    if mixed != stored {
                        report.report(
                            RuleCode::Cf001,
                            Location::Node(id.index() as u32),
                            format!(
                                "stored {} but operands mix to {}",
                                stored.render(),
                                mixed.render()
                            ),
                        );
                    }
                    if mixed.level > d {
                        report.report(
                            RuleCode::Cf002,
                            Location::Node(id.index() as u32),
                            format!("denominator 2^{} does not divide 2^{d}", mixed.level),
                        );
                    }
                    derived[id.index()] = Some(mixed);
                }
                None => report.report(
                    RuleCode::Cf002,
                    Location::Node(id.index() as u32),
                    "mix result overflows the dyadic level range".to_string(),
                ),
            }
        }
    }

    // Root/target agreement, re-deriving the target CF vector from the raw
    // ratio parts.
    let target_vec = Vector { level: d, parts: target.parts().to_vec() }.canonicalise();
    for &root in graph.roots() {
        if root.index() >= n {
            report.report(
                RuleCode::Cf004,
                Location::Artifact,
                format!("root {root} is outside the graph"),
            );
            continue;
        }
        if let Some(derived_root) = &derived[root.index()] {
            if *derived_root != target_vec {
                report.report(
                    RuleCode::Cf003,
                    Location::Node(root.index() as u32),
                    format!(
                        "root prepares {} but the target is {}",
                        derived_root.render(),
                        target_vec.render()
                    ),
                );
            }
        }
    }

    // Droplet conservation: each node's two outputs feed at most two
    // consumers; roots feed none (their droplets are emitted targets);
    // non-roots feed at least one (else the node is dead weight).
    let mut waste = 0u64;
    for (id, _) in graph.iter() {
        let uses = consumed[id.index()];
        let loc = Location::Node(id.index() as u32);
        if graph.is_root(id) {
            if uses != 0 {
                report.report(
                    RuleCode::Cf004,
                    loc,
                    format!("root droplets are targets but {uses} operand(s) consume them"),
                );
            }
        } else {
            if uses == 0 {
                report.report(RuleCode::Cf004, loc, "non-root node feeds no consumer");
            } else if uses > 2 {
                report.report(
                    RuleCode::Cf004,
                    loc,
                    format!("droplet pair consumed {uses} times (max 2)"),
                );
            }
            waste += u64::from(2u32.saturating_sub(uses));
        }
    }

    // Forest shape and the zero-waste theorem (§4.1).
    let expected_trees = demand.div_ceil(2);
    if graph.tree_count() as u64 != expected_trees {
        report.report(
            RuleCode::Cf006,
            Location::Artifact,
            format!(
                "demand {demand} needs ceil(D/2) = {expected_trees} trees, found {}",
                graph.tree_count()
            ),
        );
    }
    let full_cycle = d < 63 && demand.is_multiple_of(1u64 << d);
    if full_cycle && waste > 0 {
        report.report(
            RuleCode::Cf005,
            Location::Artifact,
            format!("D = {demand} is a multiple of 2^{d} yet the forest wastes {waste} droplets"),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::BaseAlgorithm;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("valid ratio")
    }

    fn forest(demand: u64) -> MixGraph {
        let target = pcr_d4();
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).expect("template");
        build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).expect("forest")
    }

    #[test]
    fn good_forests_are_clean() {
        for demand in [2, 16, 20, 32] {
            let graph = forest(demand);
            let report = check_forest(&graph, &pcr_d4(), demand);
            assert!(report.is_empty(), "D={demand}: {report}");
        }
    }

    #[test]
    fn recount_agrees_with_producer_stats() {
        for demand in [2, 16, 20, 32] {
            let graph = forest(demand);
            let counts = recount_forest(&graph);
            let stats = graph.stats();
            assert_eq!(counts.mix_splits, stats.mix_splits as u64);
            assert_eq!(counts.waste, stats.waste as u64);
            assert_eq!(counts.input_total, stats.input_total);
            assert_eq!(counts.inputs, stats.inputs);
            assert_eq!(counts.trees, stats.trees as u64);
        }
    }

    #[test]
    fn zero_waste_holds_at_full_cycle_demand() {
        let graph = forest(16);
        assert_eq!(recount_forest(&graph).waste, 0);
        assert!(check_forest(&graph, &pcr_d4(), 16).is_empty());
    }

    #[test]
    fn wrong_demand_trips_cf006() {
        let graph = forest(20);
        let report = check_forest(&graph, &pcr_d4(), 18);
        assert!(report.has(RuleCode::Cf006), "{report}");
    }

    #[test]
    fn wrong_target_trips_cf003() {
        let graph = forest(4);
        let other = TargetRatio::new(vec![1, 1, 1, 1, 1, 1, 10]).expect("valid ratio");
        let report = check_forest(&graph, &other, 4);
        assert!(report.has(RuleCode::Cf003), "{report}");
    }
}
