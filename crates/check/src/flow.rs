//! Whole-program droplet dataflow analysis (`FLOW001`–`FLOW003`).
//!
//! A realized [`ChipProgram`] is a straight-line instruction stream; this
//! module replays it symbolically, building a **lineage graph**: every
//! droplet carries the set of reagents that ever entered its ancestry and
//! the trail of module cells it visited. Three analyses run over that
//! graph, re-deriving every fact from the raw instruction stream and the
//! chip geometry alone (never from the engine that produced the program —
//! the translation-validation stance of DESIGN.md §11):
//!
//! * **Contamination** (`FLOW001`): two droplets whose reagent sets are
//!   disjoint must never occupy one module cell with *overlapping*
//!   residency. The wash model is *wash-after-departure*: transports are
//!   serialized, so after a droplet leaves a cell the executor has a wash
//!   window before the next arrival; only simultaneous residency carries
//!   residue across lineages. Mixer cells host only the outputs of the
//!   mix that produced them (incoming operands wait on guard-band staging
//!   cells, whose spacing the route rules `RT003`/`RT004` already check);
//!   single-cell modules (reservoirs, storage, waste, output ports) host
//!   a droplet from arrival to departure.
//! * **Soundness** (`FLOW002`): the replay itself must be well-formed —
//!   droplets defined before use, consumed at most once, mix operands
//!   located at the executing mixer, store/fetch cells matching, module
//!   kinds respected. Same-lineage cell collisions also land here (a
//!   collision, not a contamination).
//! * **Conservation** (`FLOW003`): a (1:1) mix-split consumes two unit
//!   droplets and produces two, so over a pass the volume ledger must
//!   prove `dispensed = emitted + discarded` with nothing left on-array;
//!   a caller-supplied [`FlowExpectation`] additionally pins the ledger
//!   to the pass's declared `I`/`W`/tree counts.

use crate::diag::{CheckReport, Location, RuleCode};
use dmf_chip::{ChipSpec, Coord, ModuleId, ModuleKind};
use dmf_sim::{ChipProgram, DropletId, Instruction};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Pass-level droplet counts the program is expected to realize,
/// re-derived by the caller from the pass's forest (e.g. via
/// [`crate::recount_forest`]: `dispensed = I`, `discarded = W`,
/// `emitted = 2·|F|`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowExpectation {
    /// Droplets the pass dispenses (`I`).
    pub dispensed: u64,
    /// Target droplets the pass emits off-chip (two per component tree).
    pub emitted: u64,
    /// Waste droplets the pass discards (`W`).
    pub discarded: u64,
}

/// The abstract volume ledger the conservation analysis re-derives from
/// the instruction stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowLedger {
    /// Droplets dispensed from reservoirs.
    pub dispensed: u64,
    /// Droplets emitted off-chip at output ports.
    pub emitted: u64,
    /// Droplets discarded to waste reservoirs.
    pub discarded: u64,
    /// Mix-split operations executed.
    pub mix_splits: u64,
    /// Droplets still on-array when the program ends (leaks).
    pub leaked: u64,
}

impl fmt::Display for FlowLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dispensed={} emitted={} discarded={} mix_splits={} leaked={}",
            self.dispensed, self.emitted, self.discarded, self.mix_splits, self.leaked
        )
    }
}

/// What happened to a droplet, in replay order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// On the array (possibly parked in storage).
    Active,
    /// Consumed as a mix-split operand.
    Consumed,
    /// Emitted off-chip.
    Emitted,
    /// Discarded to waste.
    Discarded,
}

#[derive(Debug, Clone)]
struct Droplet {
    /// Fluid indices anywhere in this droplet's ancestry.
    reagents: BTreeSet<usize>,
    /// Module names visited, oldest first.
    trail: Vec<String>,
    /// Current module, when on the array.
    at: Option<ModuleId>,
    /// Whether the droplet occupies its module's cell proper (counts for
    /// contamination) as opposed to a mixer's staging area.
    resident: bool,
    /// Parked in a storage cell (must be fetched before moving).
    stored: bool,
    phase: Phase,
}

impl Droplet {
    fn lineage(&self, id: DropletId) -> String {
        let reagents: Vec<String> = self.reagents.iter().map(|f| format!("f{f}")).collect();
        format!("{id}{{{}}} via {}", reagents.join(","), self.trail.join("→"))
    }
}

struct FlowAnalyzer<'c> {
    chip: &'c ChipSpec,
    port_of: HashMap<Coord, ModuleId>,
    droplets: BTreeMap<DropletId, Droplet>,
    /// Droplets currently resident on each module's cell.
    residents: HashMap<ModuleId, Vec<DropletId>>,
    ledger: FlowLedger,
    report: CheckReport,
}

impl<'c> FlowAnalyzer<'c> {
    fn new(chip: &'c ChipSpec) -> Self {
        let port_of = chip.modules().iter().map(|m| (m.port(), m.id())).collect();
        FlowAnalyzer {
            chip,
            port_of,
            droplets: BTreeMap::new(),
            residents: HashMap::new(),
            ledger: FlowLedger::default(),
            report: CheckReport::new(),
        }
    }

    fn module_name(&self, id: ModuleId) -> String {
        self.chip.try_module(id).map_or_else(|_| format!("{id}"), |module| module.name().to_owned())
    }

    fn kind(&self, id: ModuleId) -> Option<ModuleKind> {
        self.chip.try_module(id).map(|m| m.kind()).ok()
    }

    fn flow2(&mut self, i: usize, message: impl Into<String>) {
        self.report.report(RuleCode::Flow002, Location::Instr(i), message);
    }

    /// Registers `droplet` as resident on `module`'s cell, reporting the
    /// contamination (`FLOW001`) or collision (`FLOW002`) that any
    /// already-resident droplet implies.
    fn become_resident(&mut self, i: usize, module: ModuleId, droplet: DropletId) {
        let lingering: Vec<DropletId> = self.residents.entry(module).or_default().clone();
        self.become_resident_among(i, module, droplet, &lingering);
    }

    /// [`Self::become_resident`] with an explicit overlap set: the two
    /// outputs of one mix-split land on the split pad pair together and
    /// must only be checked against droplets that predate the split.
    fn become_resident_among(
        &mut self,
        i: usize,
        module: ModuleId,
        droplet: DropletId,
        lingering: &[DropletId],
    ) {
        let name = self.module_name(module);
        for &other in lingering {
            if other == droplet {
                continue;
            }
            let (Some(new), Some(old)) = (self.droplets.get(&droplet), self.droplets.get(&other))
            else {
                continue;
            };
            if new.reagents.is_disjoint(&old.reagents) {
                self.report.report(
                    RuleCode::Flow001,
                    Location::Module(name.clone()),
                    format!(
                        "reagent-disjoint lineages share {name} with no wash window: \
                         {} overlaps {}",
                        new.lineage(droplet),
                        old.lineage(other)
                    ),
                );
            } else {
                self.flow2(
                    i,
                    format!(
                        "droplet collision on {name}: {} overlaps {}",
                        new.lineage(droplet),
                        old.lineage(other)
                    ),
                );
            }
        }
        let cell = self.residents.entry(module).or_default();
        if !cell.contains(&droplet) {
            cell.push(droplet);
        }
        if let Some(d) = self.droplets.get_mut(&droplet) {
            d.resident = true;
        }
    }

    /// Removes a droplet from its module's cell (its departure opens the
    /// wash window for the next arrival).
    fn depart(&mut self, droplet: DropletId) {
        let Some(d) = self.droplets.get_mut(&droplet) else { return };
        d.resident = false;
        if let Some(module) = d.at {
            if let Some(cell) = self.residents.get_mut(&module) {
                cell.retain(|&r| r != droplet);
            }
        }
    }

    /// Defines a fresh droplet, flagging id reuse.
    fn define(&mut self, i: usize, id: DropletId, droplet: Droplet) {
        if self.droplets.contains_key(&id) {
            self.flow2(i, format!("droplet id {id} redefined while already known"));
        }
        self.droplets.insert(id, droplet);
    }

    /// Fetches an *active* droplet for a move/consume, reporting
    /// use-before-definition and use-after-consumption.
    fn active(&mut self, i: usize, id: DropletId, what: &str) -> bool {
        match self.droplets.get(&id) {
            None => {
                self.flow2(i, format!("{what} uses {id}, which was never dispensed or produced"));
                false
            }
            Some(d) if d.phase != Phase::Active => {
                let fate = match d.phase {
                    Phase::Consumed => "already consumed by a mix-split",
                    Phase::Emitted => "already emitted off-chip",
                    Phase::Discarded => "already discarded to waste",
                    Phase::Active => unreachable!("guarded above"),
                };
                self.flow2(i, format!("{what} uses {id}, {fate}"));
                false
            }
            Some(_) => true,
        }
    }

    fn arrive(&mut self, i: usize, droplet: DropletId, module: ModuleId) {
        let name = self.module_name(module);
        let is_mixer = self.kind(module) == Some(ModuleKind::Mixer);
        if let Some(d) = self.droplets.get_mut(&droplet) {
            d.at = Some(module);
            d.trail.push(name);
        }
        if is_mixer {
            // Operands wait on staging cells; the mixer cell itself stays
            // clear until the mix-split claims it.
            if let Some(d) = self.droplets.get_mut(&droplet) {
                d.resident = false;
            }
        } else {
            self.become_resident(i, module, droplet);
        }
    }

    fn step(&mut self, i: usize, instruction: &Instruction) {
        match instruction {
            Instruction::CycleMarker { .. } => {}
            Instruction::Dispense { reservoir, droplet } => {
                let reagents = match self.kind(*reservoir) {
                    Some(ModuleKind::Reservoir { fluid }) => BTreeSet::from([fluid]),
                    other => {
                        self.flow2(
                            i,
                            format!(
                                "dispense of {droplet} targets {} ({other:?}), not a reservoir",
                                self.module_name(*reservoir)
                            ),
                        );
                        BTreeSet::new()
                    }
                };
                self.ledger.dispensed += 1;
                self.define(
                    i,
                    *droplet,
                    Droplet {
                        reagents,
                        trail: Vec::new(),
                        at: None,
                        resident: false,
                        stored: false,
                        phase: Phase::Active,
                    },
                );
                self.arrive(i, *droplet, *reservoir);
            }
            Instruction::TransportTo { droplet, module } => {
                if !self.active(i, *droplet, "transport") {
                    return;
                }
                if self.droplets.get(droplet).is_some_and(|d| d.stored) {
                    self.flow2(i, format!("{droplet} transported while still parked in storage"));
                }
                self.depart(*droplet);
                if self.chip.try_module(*module).is_err() {
                    self.flow2(
                        i,
                        format!("transport of {droplet} targets unknown module {module}"),
                    );
                    if let Some(d) = self.droplets.get_mut(droplet) {
                        d.at = None;
                    }
                    return;
                }
                self.arrive(i, *droplet, *module);
            }
            Instruction::Transport { droplet, path } => {
                if !self.active(i, *droplet, "transport") {
                    return;
                }
                if self.droplets.get(droplet).is_some_and(|d| d.stored) {
                    self.flow2(i, format!("{droplet} transported while still parked in storage"));
                }
                self.depart(*droplet);
                match path.last().and_then(|cell| self.port_of.get(cell).copied()) {
                    Some(module) => self.arrive(i, *droplet, module),
                    None => {
                        // Parked loose on the array; only module cells carry
                        // residency, so the droplet is simply in transit.
                        if let Some(d) = self.droplets.get_mut(droplet) {
                            d.at = None;
                        }
                    }
                }
            }
            Instruction::MixSplit { mixer, a, b, out_a, out_b } => {
                if self.kind(*mixer) != Some(ModuleKind::Mixer) {
                    self.flow2(
                        i,
                        format!("mix-split addresses {}, not a mixer", self.module_name(*mixer)),
                    );
                }
                if a == b {
                    self.flow2(i, format!("mix-split consumes {a} twice"));
                }
                let mut merged: BTreeSet<usize> = BTreeSet::new();
                for operand in [a, b] {
                    if !self.active(i, *operand, "mix-split") {
                        continue;
                    }
                    let d = &self.droplets[operand];
                    if d.at != Some(*mixer) {
                        let at = d.at.map_or_else(
                            || "loose on the array".to_owned(),
                            |m| format!("at {}", self.module_name(m)),
                        );
                        self.flow2(
                            i,
                            format!(
                                "mix-split operand {operand} is {at}, not at {}",
                                self.module_name(*mixer)
                            ),
                        );
                    }
                    merged.extend(self.droplets[operand].reagents.iter().copied());
                    self.depart(*operand);
                    if let Some(d) = self.droplets.get_mut(operand) {
                        d.phase = Phase::Consumed;
                    }
                }
                self.ledger.mix_splits += 1;
                // The merge claims the mixer cell: any droplet still parked
                // there (an undeparted output of an earlier mix) is touched
                // by the new merged droplet.
                let trail = vec![self.module_name(*mixer)];
                let lingering: Vec<DropletId> = self.residents.entry(*mixer).or_default().clone();
                for out in [out_a, out_b] {
                    self.define(
                        i,
                        *out,
                        Droplet {
                            reagents: merged.clone(),
                            trail: trail.clone(),
                            at: Some(*mixer),
                            resident: false,
                            stored: false,
                            phase: Phase::Active,
                        },
                    );
                    self.become_resident_among(i, *mixer, *out, &lingering);
                }
            }
            Instruction::Store { droplet, cell } => {
                if !matches!(self.kind(*cell), Some(ModuleKind::Storage)) {
                    self.flow2(
                        i,
                        format!("store addresses {}, not a storage cell", self.module_name(*cell)),
                    );
                }
                if !self.active(i, *droplet, "store") {
                    return;
                }
                let (stored, at) = {
                    let d = &self.droplets[droplet];
                    (d.stored, d.at)
                };
                if stored {
                    self.flow2(i, format!("{droplet} stored twice"));
                }
                if at != Some(*cell) {
                    self.flow2(
                        i,
                        format!(
                            "store parks {droplet} at {}, but it is not at that cell",
                            self.module_name(*cell)
                        ),
                    );
                }
                if let Some(d) = self.droplets.get_mut(droplet) {
                    d.stored = true;
                }
            }
            Instruction::Fetch { droplet, cell } => {
                if !self.active(i, *droplet, "fetch") {
                    return;
                }
                let (stored, at) = {
                    let d = &self.droplets[droplet];
                    (d.stored, d.at)
                };
                if !stored {
                    self.flow2(i, format!("fetch releases {droplet}, which is not stored"));
                } else if at != Some(*cell) {
                    self.flow2(
                        i,
                        format!(
                            "fetch releases {droplet} from {}, but it is parked elsewhere",
                            self.module_name(*cell)
                        ),
                    );
                }
                if let Some(d) = self.droplets.get_mut(droplet) {
                    d.stored = false;
                }
            }
            Instruction::Discard { droplet, waste } => {
                if !matches!(self.kind(*waste), Some(ModuleKind::Waste)) {
                    self.flow2(
                        i,
                        format!(
                            "discard addresses {}, not a waste reservoir",
                            self.module_name(*waste)
                        ),
                    );
                }
                if !self.active(i, *droplet, "discard") {
                    return;
                }
                if self.droplets[droplet].at != Some(*waste) {
                    self.flow2(i, format!("discard of {droplet} away from its waste port"));
                }
                self.depart(*droplet);
                if let Some(d) = self.droplets.get_mut(droplet) {
                    d.phase = Phase::Discarded;
                }
                self.ledger.discarded += 1;
            }
            Instruction::Emit { droplet, output } => {
                if !matches!(self.kind(*output), Some(ModuleKind::Output)) {
                    self.flow2(
                        i,
                        format!("emit addresses {}, not an output port", self.module_name(*output)),
                    );
                }
                if !self.active(i, *droplet, "emit") {
                    return;
                }
                if self.droplets[droplet].at != Some(*output) {
                    self.flow2(i, format!("emit of {droplet} away from its output port"));
                }
                self.depart(*droplet);
                if let Some(d) = self.droplets.get_mut(droplet) {
                    d.phase = Phase::Emitted;
                }
                self.ledger.emitted += 1;
            }
        }
    }

    fn finish(mut self, expected: Option<&FlowExpectation>) -> (CheckReport, FlowLedger) {
        for (id, droplet) in &self.droplets {
            if droplet.phase == Phase::Active {
                self.ledger.leaked += 1;
                self.report.report(
                    RuleCode::Flow003,
                    Location::Artifact,
                    format!(
                        "droplet leak: {} is still on-array when the program ends \
                         (not emitted, discarded or consumed)",
                        droplet.lineage(*id)
                    ),
                );
            }
        }
        let ledger = self.ledger;
        let balanced = ledger.emitted + ledger.discarded + ledger.leaked;
        if ledger.dispensed != balanced {
            self.report.report(
                RuleCode::Flow003,
                Location::Artifact,
                format!(
                    "volume ledger broken: {} dispensed droplets but \
                     emitted + discarded + leaked = {balanced} ({ledger})",
                    ledger.dispensed
                ),
            );
        }
        if let Some(want) = expected {
            for (what, got, want) in [
                ("dispenses", ledger.dispensed, want.dispensed),
                ("emits", ledger.emitted, want.emitted),
                ("discards", ledger.discarded, want.discarded),
            ] {
                if got != want {
                    self.report.report(
                        RuleCode::Flow003,
                        Location::Artifact,
                        format!("program {what} {got} droplets but the pass declares {want}"),
                    );
                }
            }
        }
        (self.report, ledger)
    }
}

/// Replays `program` on `chip`, building the droplet-lineage graph and
/// running the contamination (`FLOW001`), soundness (`FLOW002`) and
/// conservation (`FLOW003`) analyses; returns the findings together with
/// the re-derived [`FlowLedger`].
///
/// `expected`, when given, additionally pins the ledger to the pass's
/// declared droplet counts (see [`FlowExpectation`]).
pub fn analyze_program_flow(
    chip: &ChipSpec,
    program: &ChipProgram,
    expected: Option<&FlowExpectation>,
) -> (CheckReport, FlowLedger) {
    let _span = dmf_obs::span!("check_flow");
    let mut analyzer = FlowAnalyzer::new(chip);
    for (i, instruction) in program.instructions().iter().enumerate() {
        analyzer.step(i, instruction);
    }
    analyzer.finish(expected)
}

/// [`analyze_program_flow`], reporting findings only.
pub fn check_program_flow(
    chip: &ChipSpec,
    program: &ChipProgram,
    expected: Option<&FlowExpectation>,
) -> CheckReport {
    analyze_program_flow(chip, program, expected).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_chip::presets::streaming_chip;

    fn two_fluid_chip() -> ChipSpec {
        streaming_chip(2, 1, 2).expect("chip")
    }

    fn ids(chip: &ChipSpec) -> (ModuleId, ModuleId, ModuleId, ModuleId, ModuleId, ModuleId) {
        let reservoir = |fluid| {
            chip.reservoir_for(fluid).unwrap_or_else(|| panic!("reservoir for fluid {fluid}")).id()
        };
        let mixer = chip.mixers().next().expect("mixer").id();
        let storage = chip.storage_cells().next().expect("storage").id();
        let waste = chip.waste_reservoirs().next().expect("waste").id();
        let output = chip.outputs().next().expect("output").id();
        (reservoir(0), reservoir(1), mixer, storage, waste, output)
    }

    fn d(n: u64) -> DropletId {
        DropletId(n)
    }

    #[test]
    fn clean_mix_program_is_clean() {
        let chip = two_fluid_chip();
        let (r0, r1, mixer, _, waste, output) = ids(&chip);
        let program: ChipProgram = vec![
            Instruction::Dispense { reservoir: r0, droplet: d(0) },
            Instruction::TransportTo { droplet: d(0), module: mixer },
            Instruction::Dispense { reservoir: r1, droplet: d(1) },
            Instruction::TransportTo { droplet: d(1), module: mixer },
            Instruction::MixSplit { mixer, a: d(0), b: d(1), out_a: d(2), out_b: d(3) },
            Instruction::TransportTo { droplet: d(2), module: output },
            Instruction::Emit { droplet: d(2), output },
            Instruction::TransportTo { droplet: d(3), module: waste },
            Instruction::Discard { droplet: d(3), waste },
        ]
        .into_iter()
        .collect();
        let (report, ledger) = analyze_program_flow(&chip, &program, None);
        assert!(report.is_empty(), "{report}");
        assert_eq!(
            ledger,
            FlowLedger { dispensed: 2, emitted: 1, discarded: 1, mix_splits: 1, leaked: 0 }
        );
        let expectation = FlowExpectation { dispensed: 2, emitted: 1, discarded: 1 };
        assert!(check_program_flow(&chip, &program, Some(&expectation)).is_empty());
    }

    #[test]
    fn disjoint_lineages_on_one_cell_is_flow001() {
        let chip = two_fluid_chip();
        let (r0, r1, _, storage, waste, _) = ids(&chip);
        let program: ChipProgram = vec![
            Instruction::Dispense { reservoir: r0, droplet: d(0) },
            Instruction::TransportTo { droplet: d(0), module: storage },
            Instruction::Dispense { reservoir: r1, droplet: d(1) },
            // Arrives while d0 is still resident: no wash window.
            Instruction::TransportTo { droplet: d(1), module: storage },
            Instruction::TransportTo { droplet: d(0), module: waste },
            Instruction::Discard { droplet: d(0), waste },
            Instruction::TransportTo { droplet: d(1), module: waste },
            Instruction::Discard { droplet: d(1), waste },
        ]
        .into_iter()
        .collect();
        let report = check_program_flow(&chip, &program, None);
        assert!(report.has(RuleCode::Flow001), "{report}");
        assert!(!report.has(RuleCode::Flow002));
        assert!(!report.has(RuleCode::Flow003));
        let message = &report.diagnostics()[0].message;
        assert!(message.contains("via"), "trails in the diagnostic: {message}");
    }

    #[test]
    fn wash_window_between_visits_is_clean() {
        let chip = two_fluid_chip();
        let (r0, r1, _, storage, waste, _) = ids(&chip);
        let program: ChipProgram = vec![
            Instruction::Dispense { reservoir: r0, droplet: d(0) },
            Instruction::TransportTo { droplet: d(0), module: storage },
            // d0 departs before d1 arrives: the executor washes the cell.
            Instruction::TransportTo { droplet: d(0), module: waste },
            Instruction::Discard { droplet: d(0), waste },
            Instruction::Dispense { reservoir: r1, droplet: d(1) },
            Instruction::TransportTo { droplet: d(1), module: storage },
            Instruction::TransportTo { droplet: d(1), module: waste },
            Instruction::Discard { droplet: d(1), waste },
        ]
        .into_iter()
        .collect();
        assert!(check_program_flow(&chip, &program, None).is_empty());
    }

    #[test]
    fn misplaced_operand_is_flow002() {
        let chip = two_fluid_chip();
        let (r0, r1, mixer, _, waste, _) = ids(&chip);
        let program: ChipProgram = vec![
            Instruction::Dispense { reservoir: r0, droplet: d(0) },
            Instruction::TransportTo { droplet: d(0), module: mixer },
            Instruction::Dispense { reservoir: r1, droplet: d(1) },
            // d1 never transported to the mixer.
            Instruction::MixSplit { mixer, a: d(0), b: d(1), out_a: d(2), out_b: d(3) },
            Instruction::TransportTo { droplet: d(2), module: waste },
            Instruction::Discard { droplet: d(2), waste },
            Instruction::TransportTo { droplet: d(3), module: waste },
            Instruction::Discard { droplet: d(3), waste },
        ]
        .into_iter()
        .collect();
        let report = check_program_flow(&chip, &program, None);
        assert!(report.has(RuleCode::Flow002), "{report}");
        assert!(!report.has(RuleCode::Flow001));
        assert!(!report.has(RuleCode::Flow003), "best-effort replay keeps the ledger sound");
    }

    #[test]
    fn use_after_consumption_is_flow002() {
        let chip = two_fluid_chip();
        let (r0, r1, mixer, _, waste, _) = ids(&chip);
        let program: ChipProgram = vec![
            Instruction::Dispense { reservoir: r0, droplet: d(0) },
            Instruction::TransportTo { droplet: d(0), module: mixer },
            Instruction::Dispense { reservoir: r1, droplet: d(1) },
            Instruction::TransportTo { droplet: d(1), module: mixer },
            Instruction::MixSplit { mixer, a: d(0), b: d(1), out_a: d(2), out_b: d(3) },
            // d0 was consumed by the mix above.
            Instruction::TransportTo { droplet: d(0), module: waste },
        ]
        .into_iter()
        .collect();
        let report = check_program_flow(&chip, &program, None);
        assert!(report.has(RuleCode::Flow002));
    }

    #[test]
    fn leaked_droplet_is_flow003() {
        let chip = two_fluid_chip();
        let (r0, _, _, storage, _, _) = ids(&chip);
        let program: ChipProgram = vec![
            Instruction::Dispense { reservoir: r0, droplet: d(0) },
            Instruction::TransportTo { droplet: d(0), module: storage },
            Instruction::Store { droplet: d(0), cell: storage },
        ]
        .into_iter()
        .collect();
        let (report, ledger) = analyze_program_flow(&chip, &program, None);
        assert!(report.has(RuleCode::Flow003), "{report}");
        assert!(!report.has(RuleCode::Flow001));
        assert!(!report.has(RuleCode::Flow002));
        assert_eq!(ledger.leaked, 1);
    }

    #[test]
    fn expectation_mismatch_is_flow003() {
        let chip = two_fluid_chip();
        let (r0, _, _, _, waste, _) = ids(&chip);
        let program: ChipProgram = vec![
            Instruction::Dispense { reservoir: r0, droplet: d(0) },
            Instruction::TransportTo { droplet: d(0), module: waste },
            Instruction::Discard { droplet: d(0), waste },
        ]
        .into_iter()
        .collect();
        let expectation = FlowExpectation { dispensed: 2, emitted: 1, discarded: 0 };
        let report = check_program_flow(&chip, &program, Some(&expectation));
        assert!(report.has(RuleCode::Flow003));
        assert_eq!(report.len(), 3, "each ledger line mismatches: {report}");
    }
}
