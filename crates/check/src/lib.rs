//! Independent static verification of DMF synthesis artifacts.
//!
//! The paper's central claims are invariants: CF-vector conservation at
//! every mix-split, zero waste for `D = p·2^d` forests (§4.1), mixer
//! occupancy within `Mc` under MMS/SRS (Algorithms 1–2), storage within the
//! `Counting_Storage_Units` bound `q'` (Algorithm 3), guard-banded
//! placements and fluidically safe timed routes. The producing crates each
//! enforce their own invariants — but a producer bug and its "validation"
//! then share one implementation. Following the translation-validation
//! stance, this crate re-derives every invariant from first principles:
//!
//! * **Forests** ([`check_forest`]) re-implement the dyadic (1:1)-mix
//!   arithmetic and re-derive consumer lists from the node operands —
//!   no calls into [`dmf_mixgraph::MixGraph::validate`] or `stats`.
//! * **Schedules** ([`check_schedule`]) re-derive precedence and occupancy
//!   from raw assignments, and [`recount_storage_units`] is an event-sweep
//!   second implementation of Algorithm 3.
//! * **Placements** ([`check_placement`]) re-check bounds, guard bands and
//!   dead electrodes with local coordinate arithmetic.
//! * **Routes** ([`check_routes`]) re-check grid membership, hop legality
//!   and the static + dynamic fluidic constraints cell by cell.
//! * **Pin backends** ([`check_pins`], [`check_routes_pinned`],
//!   [`check_program_pins`]) audit shared-pin assignments and re-derive
//!   the ghost co-activation hazard from raw group data (`PIN001`–
//!   `PIN004`).
//! * **Program dataflow** ([`check_program_flow`]) replays a realized
//!   instruction stream into a droplet-lineage graph and runs the
//!   contamination, soundness and conservation analyses (`FLOW001`–
//!   `FLOW003`) over it — whole-program properties no per-artifact rule
//!   can see.
//! * **Feasibility** ([`check_feasibility`] / [`assert_feasible`]) is a
//!   mixability pre-pass over the *raw* parts of a requested ratio
//!   (`FEAS001`/`FEAS002`), run by the CLI, `StreamingEngine::plan`,
//!   `plan_batch` and dmf-serve before any planning work starts.
//!
//! Every violation is a typed [`Diagnostic`] with a [`Severity`], a stable
//! [`RuleCode`] (`CF001`, `SCH003`, `RT002`, …) and a span-like
//! [`Location`]; a [`CheckReport`] renders them through the shared
//! [`dmf_obs::Table`] writer and exports JSONL. The `dmfstream check` CLI
//! verb and the engine's debug-assertion hook wire the checker over every
//! plan the system emits; `tests/check_mutations.rs` pits it against
//! deliberately corrupted artifacts.
//!
//! The independence requirement is deliberate and load-bearing: see
//! DESIGN.md §11 before adding a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod feas;
mod flow;
mod forest;
mod pins;
mod place;
mod route;
mod sched;

pub use diag::{CheckReport, Diagnostic, Location, RuleCode, Severity};
pub use feas::{assert_feasible, check_feasibility, Infeasibility};
pub use flow::{analyze_program_flow, check_program_flow, FlowExpectation, FlowLedger};
pub use forest::{check_forest, recount_forest, ForestCounts};
pub use pins::{check_pins, check_program_pins, check_routes_pinned};
pub use place::check_placement;
pub use route::check_routes;
pub use sched::{check_schedule, recount_storage_units};

use dmf_mixgraph::MixGraph;
use dmf_ratio::TargetRatio;
use dmf_sched::Schedule;

/// Checks one pass of a streaming plan: its forest against the target and
/// pass demand, and its schedule (with the claimed storage peak `q'`)
/// against the forest.
///
/// This is the per-pass composition the engine's debug hook and the
/// `dmfstream check` verb run; placement and routes are separate artifacts
/// checked via [`check_placement`] and [`check_routes`].
pub fn check_pass(
    target: &TargetRatio,
    demand: u64,
    forest: &MixGraph,
    schedule: &Schedule,
    claimed_storage: Option<usize>,
) -> CheckReport {
    let _span = dmf_obs::span!("check_pass");
    let mut report = check_forest(forest, target, demand);
    report.merge(check_schedule(forest, schedule, claimed_storage));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::BaseAlgorithm;
    use dmf_sched::SchedulerKind;

    #[test]
    fn pass_composition_is_clean_on_good_artifacts() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("valid ratio");
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).expect("template");
        let forest =
            build_forest(&template, &target, 20, ReusePolicy::AcrossTrees).expect("forest");
        let schedule = SchedulerKind::Srs.run(&forest, 3).expect("schedule");
        let q = schedule.storage(&forest).peak;
        let report = check_pass(&target, 20, &forest, &schedule, Some(q));
        assert!(report.is_empty(), "{report}");
    }
}
