//! Timed-route rules (`RT001`–`RT004`).
//!
//! The fluidic-constraint adjacency test is re-implemented locally (a
//! coordinate-difference check, not [`dmf_chip::Coord::touches`]) and the
//! rules read only the raw space-time cells, never the router's own
//! conflict bookkeeping.

use crate::{CheckReport, Location, RuleCode};
use dmf_chip::Coord;
use dmf_route::{Grid, RouteRequest, TimedPath};

/// Whether two electrodes are within one cell of each other (same cell,
/// orthogonal or diagonal neighbour) — the paper's fluidic exclusion zone.
fn within_one_cell(a: Coord, b: Coord) -> bool {
    (a.x - b.x).abs() <= 1 && (a.y - b.y).abs() <= 1
}

/// Position of droplet `index` at step `t`, parking at the destination
/// after arrival.
fn position(paths: &[TimedPath], index: usize, t: usize) -> Option<Coord> {
    let cells = paths[index].cells();
    cells.get(t).or_else(|| cells.last()).copied()
}

/// Checks a set of timed routes against the grid they run on and the
/// requests they serve. Covers rules `RT001`–`RT004`.
pub fn check_routes(grid: &Grid, requests: &[RouteRequest], paths: &[TimedPath]) -> CheckReport {
    let mut report = CheckReport::new();
    if requests.len() != paths.len() {
        report.report(
            RuleCode::Rt001,
            Location::Artifact,
            format!("{} request(s) but {} route(s)", requests.len(), paths.len()),
        );
        return report;
    }
    for (index, (request, path)) in requests.iter().zip(paths).enumerate() {
        if path.cells().is_empty() {
            report.report(
                RuleCode::Rt001,
                Location::Droplet { index, step: 0 },
                "empty route".to_string(),
            );
            continue;
        }
        if path.cells()[0] != request.from {
            report.report(
                RuleCode::Rt001,
                Location::Droplet { index, step: 0 },
                format!(
                    "route starts at {} but the request departs {}",
                    path.cells()[0],
                    request.from
                ),
            );
        }
        if *path.cells().last().unwrap_or(&request.from) != request.to {
            report.report(
                RuleCode::Rt001,
                Location::Droplet { index, step: path.cells().len() - 1 },
                format!("route ends off the requested destination {}", request.to),
            );
        }
        for (step, &cell) in path.cells().iter().enumerate() {
            if !grid.passable(cell) {
                report.report(
                    RuleCode::Rt001,
                    Location::Droplet { index, step },
                    format!("cell {cell} is off-grid or blocked"),
                );
            }
        }
        for (step, pair) in path.cells().windows(2).enumerate() {
            let (a, b) = (pair[0], pair[1]);
            let hop = (a.x - b.x).abs() + (a.y - b.y).abs();
            if hop > 1 {
                report.report(
                    RuleCode::Rt002,
                    Location::Droplet { index, step: step + 1 },
                    format!("jumps from {a} to {b} in one step"),
                );
            }
        }
    }
    let steps = paths.iter().map(|p| p.cells().len().saturating_sub(1)).max().unwrap_or(0);
    for t in 0..=steps {
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                let (Some(a), Some(b)) = (position(paths, i, t), position(paths, j, t)) else {
                    continue;
                };
                if within_one_cell(a, b) {
                    report.report(
                        RuleCode::Rt003,
                        Location::Droplet { index: j, step: t },
                        format!("droplet {j} at {b} within one cell of droplet {i} at {a}"),
                    );
                }
                if t > 0 {
                    let prev_a = position(paths, i, t - 1);
                    let prev_b = position(paths, j, t - 1);
                    if prev_b.is_some_and(|pb| within_one_cell(a, pb)) {
                        report.report(
                            RuleCode::Rt004,
                            Location::Droplet { index: i, step: t },
                            format!("droplet {i} at {a} enters droplet {j}'s previous cell zone"),
                        );
                    }
                    if prev_a.is_some_and(|pa| within_one_cell(b, pa)) {
                        report.report(
                            RuleCode::Rt004,
                            Location::Droplet { index: j, step: t },
                            format!("droplet {j} at {b} enters droplet {i}'s previous cell zone"),
                        );
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_route::route_concurrent;

    #[test]
    fn concurrent_router_output_is_clean() {
        let grid = Grid::new(12, 12);
        let requests = [
            RouteRequest { from: Coord::new(0, 0), to: Coord::new(11, 0) },
            RouteRequest { from: Coord::new(0, 5), to: Coord::new(11, 5) },
            RouteRequest { from: Coord::new(5, 11), to: Coord::new(5, 2) },
        ];
        let paths = route_concurrent(&grid, &requests).expect("routable");
        let report = check_routes(&grid, &requests, &paths);
        assert!(report.is_empty(), "{report}");
    }

    #[test]
    fn teleport_trips_rt002() {
        let grid = Grid::new(8, 8);
        let requests = [RouteRequest { from: Coord::new(0, 0), to: Coord::new(4, 0) }];
        let paths = [TimedPath::new(vec![Coord::new(0, 0), Coord::new(4, 0)]).unwrap()];
        let report = check_routes(&grid, &requests, &paths);
        assert!(report.has(RuleCode::Rt002), "{report}");
    }

    #[test]
    fn blocked_cell_trips_rt001() {
        let mut grid = Grid::new(8, 8);
        grid.block(Coord::new(1, 0));
        let requests = [RouteRequest { from: Coord::new(0, 0), to: Coord::new(2, 0) }];
        let paths =
            [TimedPath::new(vec![Coord::new(0, 0), Coord::new(1, 0), Coord::new(2, 0)]).unwrap()];
        let report = check_routes(&grid, &requests, &paths);
        assert!(report.has(RuleCode::Rt001), "{report}");
    }

    #[test]
    fn touching_droplets_trip_rt003() {
        let grid = Grid::new(8, 8);
        let requests = [
            RouteRequest { from: Coord::new(0, 0), to: Coord::new(3, 0) },
            RouteRequest { from: Coord::new(0, 1), to: Coord::new(3, 1) },
        ];
        let paths = [
            TimedPath::new(vec![
                Coord::new(0, 0),
                Coord::new(1, 0),
                Coord::new(2, 0),
                Coord::new(3, 0),
            ])
            .unwrap(),
            TimedPath::new(vec![
                Coord::new(0, 1),
                Coord::new(1, 1),
                Coord::new(2, 1),
                Coord::new(3, 1),
            ])
            .unwrap(),
        ];
        let report = check_routes(&grid, &requests, &paths);
        assert!(report.has(RuleCode::Rt003), "{report}");
    }

    #[test]
    fn wake_crossing_trips_rt004() {
        let grid = Grid::new(10, 10);
        let requests = [
            RouteRequest { from: Coord::new(0, 0), to: Coord::new(2, 0) },
            RouteRequest { from: Coord::new(0, 2), to: Coord::new(0, 1) },
        ];
        let paths = [
            TimedPath::new(vec![Coord::new(0, 0), Coord::new(1, 0), Coord::new(2, 0)]).unwrap(),
            TimedPath::new(vec![Coord::new(0, 2), Coord::new(0, 2), Coord::new(0, 1)]).unwrap(),
        ];
        let report = check_routes(&grid, &requests, &paths);
        // Droplet 1 reaches (0,1) at t=2; droplet 0 stood at (1,0) at t=1 —
        // diagonal contact across adjacent steps.
        assert!(report.has(RuleCode::Rt004), "{report}");
    }
}
