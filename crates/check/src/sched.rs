//! Schedule rules (`SCH001`–`SCH005`).
//!
//! Precedence and occupancy are re-derived from the node operands and the
//! raw cycle/mixer assignment; the storage recount is an event-sweep
//! re-implementation of the paper's `Counting_Storage_Units` (Algorithm 3)
//! that never calls [`dmf_sched::Schedule::storage`] or reads the
//! producer's consumer lists.

use crate::{CheckReport, Location, RuleCode};
use dmf_mixgraph::{MixGraph, Operand};
use dmf_sched::Schedule;

/// Independent re-count of the storage units (`q'`) a schedule needs.
///
/// For every droplet handed from a producer to a consumer, the droplet
/// occupies a storage unit during cycles `produced+1 ..= consumed-1`. The
/// recount registers each such interval as a `+1`/`-1` event pair and takes
/// the running-sum maximum — a deliberately different algorithm from the
/// per-cell interval loops in `dmf_sched::StorageProfile`, with consumers
/// re-derived from the operand lists.
pub fn recount_storage_units(graph: &MixGraph, schedule: &Schedule) -> usize {
    if schedule.len() != graph.node_count() {
        return 0;
    }
    let horizon = schedule.makespan() as usize + 2;
    let mut events = vec![0i64; horizon + 1];
    for (id, node) in graph.iter() {
        let consumed_at = schedule.cycle_of(id);
        for op in node.operands() {
            if let Operand::Droplet(src) = op {
                if src.index() >= graph.node_count() {
                    continue;
                }
                let produced_at = schedule.cycle_of(src);
                let start = (produced_at + 1) as usize;
                let end = consumed_at as usize; // exclusive
                if start < end && end <= horizon {
                    events[start] += 1;
                    events[end] -= 1;
                }
            }
        }
    }
    let mut occupancy = 0i64;
    let mut peak = 0i64;
    for delta in events {
        occupancy += delta;
        peak = peak.max(occupancy);
    }
    peak as usize
}

/// Checks a schedule against the graph it claims to execute. Covers rules
/// `SCH001`–`SCH005`; `claimed_storage` is the producer's `q'` (Algorithm 3
/// output) to cross-check, or `None` to skip `SCH005`.
pub fn check_schedule(
    graph: &MixGraph,
    schedule: &Schedule,
    claimed_storage: Option<usize>,
) -> CheckReport {
    let mut report = CheckReport::new();
    if schedule.len() != graph.node_count() {
        report.report(
            RuleCode::Sch001,
            Location::Artifact,
            format!(
                "schedule covers {} node(s) but the graph has {}",
                schedule.len(),
                graph.node_count()
            ),
        );
        return report;
    }
    let mixers = schedule.mixer_count();
    let mut per_slot: std::collections::HashMap<(u32, usize), u32> =
        std::collections::HashMap::new();
    let mut per_cycle: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for (id, node) in graph.iter() {
        let cycle = schedule.cycle_of(id);
        let loc = Location::Node(id.index() as u32);
        if cycle == 0 {
            report.report(RuleCode::Sch001, loc, "node is unscheduled (cycle 0)");
            continue;
        }
        for op in node.operands() {
            if let Operand::Droplet(src) = op {
                if src.index() >= graph.node_count() {
                    continue; // CF004 territory; nothing to time-check.
                }
                let src_cycle = schedule.cycle_of(src);
                if src_cycle >= cycle {
                    report.report(
                        RuleCode::Sch002,
                        Location::Node(id.index() as u32),
                        format!(
                            "runs at t={cycle} but operand {src} only finishes at t={src_cycle}"
                        ),
                    );
                }
            }
        }
        let mixer = schedule.mixer_of(id).0;
        if mixer >= mixers {
            report.report(
                RuleCode::Sch004,
                Location::Cycle(cycle),
                format!("{id} assigned to mixer index {mixer}, only {mixers} mixer(s) exist"),
            );
        } else {
            let slot = per_slot.entry((cycle, mixer)).or_insert(0);
            *slot += 1;
            if *slot == 2 {
                report.report(
                    RuleCode::Sch004,
                    Location::Cycle(cycle),
                    format!("mixer M{} double-booked", mixer + 1),
                );
            }
        }
        *per_cycle.entry(cycle).or_insert(0) += 1;
    }
    let mut cycles: Vec<(u32, u32)> = per_cycle.into_iter().collect();
    cycles.sort_unstable();
    for (cycle, count) in cycles {
        if count as usize > mixers {
            report.report(
                RuleCode::Sch003,
                Location::Cycle(cycle),
                format!("{count} mix-splits run concurrently but Mc = {mixers}"),
            );
        }
    }
    if let Some(claimed) = claimed_storage {
        let recount = recount_storage_units(graph, schedule);
        if recount != claimed {
            report.report(
                RuleCode::Sch005,
                Location::Artifact,
                format!("independent storage recount q' = {recount}, producer claims {claimed}"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_forest::{build_forest, ReusePolicy};
    use dmf_mixalgo::BaseAlgorithm;
    use dmf_ratio::TargetRatio;
    use dmf_sched::SchedulerKind;

    fn pcr_forest(demand: u64) -> (MixGraph, TargetRatio) {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("valid ratio");
        let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).expect("template");
        let forest =
            build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).expect("forest");
        (forest, target)
    }

    #[test]
    fn good_schedules_are_clean_and_recount_matches() {
        for demand in [2, 16, 20] {
            for kind in [SchedulerKind::Mms, SchedulerKind::Srs] {
                let (forest, _) = pcr_forest(demand);
                let schedule = kind.run(&forest, 3).expect("schedule");
                let q = schedule.storage(&forest).peak;
                assert_eq!(recount_storage_units(&forest, &schedule), q);
                let report = check_schedule(&forest, &schedule, Some(q));
                assert!(report.is_empty(), "D={demand} {kind:?}: {report}");
            }
        }
    }

    #[test]
    fn fig3_oracle_storage_recount() {
        // Fig. 3: PCR d=4, D=20, SRS on 3 mixers stores at most 5 droplets.
        let (forest, _) = pcr_forest(20);
        let schedule = SchedulerKind::Srs.run(&forest, 3).expect("schedule");
        assert_eq!(recount_storage_units(&forest, &schedule), 5);
    }

    #[test]
    fn wrong_claimed_storage_trips_sch005() {
        let (forest, _) = pcr_forest(8);
        let schedule = SchedulerKind::Srs.run(&forest, 3).expect("schedule");
        let q = schedule.storage(&forest).peak;
        let report = check_schedule(&forest, &schedule, Some(q + 1));
        assert!(report.has(RuleCode::Sch005), "{report}");
    }
}
