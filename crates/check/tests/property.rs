//! Property tests: the checker agrees with the producers on every seeded
//! random workload.
//!
//! Two properties, each over a seeded stream of random `2^d`-grid ratios
//! and demands:
//!
//! 1. **Storage recount** — the checker's event-sweep
//!    [`dmf_check::recount_storage_units`] equals the producer's
//!    interval-walk `Schedule::storage(..).peak` (the paper's Algorithm 3
//!    `q'`), for both MMS and SRS schedules.
//! 2. **Clean pipeline** — every (forest, schedule) pair the pipeline
//!    emits gets **zero** diagnostics from [`dmf_check::check_pass`].

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dmf_check::{check_pass, recount_storage_units};
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_mixgraph::MixGraph;
use dmf_ratio::TargetRatio;
use dmf_rng::{Rng, SeedableRng, StdRng};
use dmf_sched::{mms_schedule, srs_schedule, Schedule};

/// A random ratio whose parts sum to `2^d` for `d` in `2..=6`.
fn random_ratio(rng: &mut StdRng) -> TargetRatio {
    let d = rng.gen_range(2..=6u32);
    let total = 1u64 << d;
    let fluids = rng.gen_range(2..=4usize.min(total as usize));
    // Give every fluid one unit, then scatter the rest at random.
    let mut parts = vec![1u64; fluids];
    for _ in 0..(total - fluids as u64) {
        let i = rng.gen_range(0..fluids);
        parts[i] += 1;
    }
    TargetRatio::new(parts).expect("parts sum to 2^d by construction")
}

fn random_forest(rng: &mut StdRng) -> (TargetRatio, u64, MixGraph) {
    let target = random_ratio(rng);
    let demand = 2 * rng.gen_range(1..=12u64);
    let template = BaseAlgorithm::MinMix
        .algorithm()
        .build_template(&target)
        .expect("MinMix handles every 2^d ratio");
    let forest =
        build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).expect("forest");
    (target, demand, forest)
}

fn schedules(forest: &MixGraph) -> Vec<(&'static str, Schedule)> {
    vec![
        ("mms", mms_schedule(forest, 3).expect("mms")),
        ("srs", srs_schedule(forest, 3).expect("srs")),
    ]
}

#[test]
fn storage_recount_matches_algorithm_3() {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE01);
    for case in 0..60 {
        let (_, _, forest) = random_forest(&mut rng);
        for (name, schedule) in schedules(&forest) {
            let produced = schedule.storage(&forest).peak;
            let recounted = recount_storage_units(&forest, &schedule);
            assert_eq!(
                recounted, produced,
                "case {case} ({name}): event-sweep recount {recounted} \
                 != Algorithm 3 peak {produced}"
            );
        }
    }
}

#[test]
fn pipeline_output_is_always_clean() {
    let mut rng = StdRng::seed_from_u64(0xDAC_2014);
    for case in 0..40 {
        let (target, demand, forest) = random_forest(&mut rng);
        for (name, schedule) in schedules(&forest) {
            let claimed = schedule.storage(&forest).peak;
            let report = check_pass(&target, demand, &forest, &schedule, Some(claimed));
            assert!(
                report.is_clean(),
                "case {case} ({name}, target {target}, D={demand}) \
                 must be diagnostic-free:\n{report}"
            );
        }
    }
}
