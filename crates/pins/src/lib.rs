//! Pin-constrained chip backends for DMF biochips.
//!
//! The streaming engine's planning model assumes a *directly addressed*
//! electrode array: every electrode has its own control pin, so any set of
//! electrodes can be actuated independently. Real chips rarely afford
//! that — control pins are expensive, and field-programmable
//! pin-constrained designs (Wang et al., arXiv:2008.13436) share one pin
//! across a *group* of electrodes. Driving a pin actuates **every**
//! electrode in its group, so moving one droplet can side-actuate
//! electrodes elsewhere on the chip ("ghost" actuations). A ghost that
//! fires inside another droplet's fluidic exclusion zone (the cell plus
//! its 8-neighborhood) can drag, pin down or split that droplet.
//!
//! This crate defines the backend abstraction the rest of the workspace
//! consults:
//!
//! * [`PinAssignment`] — the electrode→pin map, with
//!   [`PinAssignment::co_activation_conflict`] as the safety predicate:
//!   may electrode `a` be actuated while a droplet sits on (or moves
//!   through) electrode `b`?
//! * [`ChipBackend`] — an assignment strategy over a grid, with three
//!   implementations:
//!   [`DirectAddress`] (one pin per electrode — today's behavior and the
//!   baseline), [`RowColumn`] (row-wise cyclic column sharing with a
//!   configurable pitch) and [`Broadcast`] (greedy compatibility-graph
//!   coloring: two electrodes may share a pin iff they are at least a
//!   Chebyshev `radius` apart).
//! * [`BackendKind`] — the CLI-facing name registry
//!   (`--backend direct-address|row-column|broadcast`).
//!
//! Both pin-constrained backends enforce a group-mate spacing of at least
//! Chebyshev 3 by construction, so a droplet can never ghost-interfere
//! with *itself*: the ghost of the electrode it moves onto is always too
//! far away to touch its previous or next cell. Cross-droplet ghosts
//! remain, and are exactly what `dmf-route`'s pinned concurrent router
//! (route constraints), `dmf-sim`'s actuation step (typed
//! `PinConflict` errors plus pin-aware routing) and `dmf-check`'s `PIN/*`
//! rules (static verification) guard against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod backend;
mod error;

pub use assignment::{PinAssignment, PinId};
pub use backend::{BackendKind, Broadcast, ChipBackend, DirectAddress, RowColumn};
pub use error::PinError;
