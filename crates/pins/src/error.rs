use std::error::Error;
use std::fmt;

/// Errors of pin-assignment construction and backend selection.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PinError {
    /// The grid has no electrodes to assign pins to.
    EmptyGrid {
        /// Requested grid width.
        width: i32,
        /// Requested grid height.
        height: i32,
    },
    /// A row-column pitch below 3 would let a droplet ghost-interfere
    /// with itself (the ghost lands inside its own exclusion zone).
    UnsafePitch {
        /// The rejected pitch.
        pitch: i32,
    },
    /// A broadcast compatibility radius below 3 would let a droplet
    /// ghost-interfere with itself.
    UnsafeRadius {
        /// The rejected radius.
        radius: i32,
    },
    /// A hand-built assignment is inconsistent (wrong cell count, empty
    /// pin group, or a dangling pin id).
    Malformed {
        /// What was wrong.
        what: String,
    },
    /// An unrecognised backend name (see [`crate::BackendKind::parse`]).
    UnknownBackend {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::EmptyGrid { width, height } => {
                write!(f, "cannot assign pins on an empty {width}x{height} grid")
            }
            PinError::UnsafePitch { pitch } => {
                write!(f, "row-column pitch {pitch} is unsafe: group mates must be >= 3 apart")
            }
            PinError::UnsafeRadius { radius } => {
                write!(f, "broadcast radius {radius} is unsafe: group mates must be >= 3 apart")
            }
            PinError::Malformed { what } => write!(f, "malformed pin assignment: {what}"),
            PinError::UnknownBackend { name } => write!(
                f,
                "unknown backend '{name}' (expected direct-address, row-column or broadcast)"
            ),
        }
    }
}

impl Error for PinError {}
