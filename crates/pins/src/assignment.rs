use crate::PinError;
use dmf_chip::Coord;
use std::fmt;

/// Identifier of one control pin within a [`PinAssignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PinId(pub u32);

impl fmt::Display for PinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A complete electrode→control-pin map for one `width × height` grid.
///
/// Driving a pin actuates **every** electrode in its group (wired-OR
/// addressing). Actuating electrode `a` therefore also actuates its
/// *ghosts* — the other members of `a`'s group — and a ghost that fires
/// inside another droplet's fluidic exclusion zone (the droplet's cell
/// plus its 8-neighborhood) is a co-activation hazard.
///
/// The assignment is pure data: which pin drives which electrodes. The
/// safety predicate [`PinAssignment::co_activation_conflict`] is derived
/// from it and consulted by the pinned concurrent router, the simulator's
/// actuation step and the `PIN/*` checker rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinAssignment {
    width: i32,
    height: i32,
    /// Row-major cell → pin id.
    pins: Vec<u32>,
    /// Pin id → member electrodes, in row-major order.
    groups: Vec<Vec<Coord>>,
    /// True when every group is a singleton (direct addressing): every
    /// pin-safety check short-circuits to the unconstrained behavior.
    direct: bool,
}

impl PinAssignment {
    /// Builds an assignment from a row-major cell→pin vector.
    ///
    /// Pin ids need not be dense; they are compacted in first-seen order.
    ///
    /// # Errors
    ///
    /// Returns [`PinError::EmptyGrid`] for a grid without electrodes and
    /// [`PinError::Malformed`] when `pins` does not hold exactly
    /// `width × height` entries.
    pub fn from_pins(width: i32, height: i32, pins: Vec<u32>) -> Result<Self, PinError> {
        if width <= 0 || height <= 0 {
            return Err(PinError::EmptyGrid { width, height });
        }
        let cells = (width as usize) * (height as usize);
        if pins.len() != cells {
            return Err(PinError::Malformed {
                what: format!("{} pin entries for {} electrodes", pins.len(), cells),
            });
        }
        // Compact pin ids in first-seen order so groups are dense.
        let mut remap: Vec<Option<u32>> = Vec::new();
        let mut dense: Vec<u32> = Vec::with_capacity(cells);
        let mut groups: Vec<Vec<Coord>> = Vec::new();
        for (i, &raw) in pins.iter().enumerate() {
            let raw = raw as usize;
            if raw >= remap.len() {
                remap.resize(raw + 1, None);
            }
            let id = match remap[raw] {
                Some(id) => id,
                None => {
                    let id = groups.len() as u32;
                    remap[raw] = Some(id);
                    groups.push(Vec::new());
                    id
                }
            };
            dense.push(id);
            let (x, y) = ((i as i32) % width, (i as i32) / width);
            groups[id as usize].push(Coord::new(x, y));
        }
        let direct = groups.iter().all(|g| g.len() == 1);
        Ok(PinAssignment { width, height, pins: dense, groups, direct })
    }

    /// Grid width the assignment covers.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Grid height the assignment covers.
    pub fn height(&self) -> i32 {
        self.height
    }

    /// Whether `cell` lies on the assigned grid.
    pub fn in_bounds(&self, cell: Coord) -> bool {
        cell.x >= 0 && cell.x < self.width && cell.y >= 0 && cell.y < self.height
    }

    /// The control pin driving `cell` (`None` off-grid).
    pub fn pin_of(&self, cell: Coord) -> Option<PinId> {
        if !self.in_bounds(cell) {
            return None;
        }
        let idx = (cell.y as usize) * (self.width as usize) + cell.x as usize;
        self.pins.get(idx).map(|&p| PinId(p))
    }

    /// The electrodes driven by `pin`, in row-major order (empty for an
    /// unknown pin).
    pub fn group(&self, pin: PinId) -> &[Coord] {
        self.groups.get(pin.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The electrodes sharing `cell`'s pin, including `cell` itself
    /// (empty off-grid).
    pub fn group_of(&self, cell: Coord) -> &[Coord] {
        match self.pin_of(cell) {
            Some(pin) => self.group(pin),
            None => &[],
        }
    }

    /// The electrodes side-actuated when `cell` is driven: its group
    /// minus `cell` itself.
    pub fn ghosts(&self, cell: Coord) -> impl Iterator<Item = Coord> + '_ {
        self.group_of(cell).iter().copied().filter(move |&g| g != cell)
    }

    /// Number of distinct control pins.
    pub fn pin_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of electrodes covered.
    pub fn electrode_count(&self) -> usize {
        self.pins.len()
    }

    /// True when every electrode has its own pin — the fully-addressable
    /// baseline. All pin-safety checks are vacuous then, and consumers
    /// short-circuit to their unconstrained code paths.
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// The co-activation safety predicate: is actuating electrode `a`
    /// hazardous for a droplet parked on electrode `b`?
    ///
    /// True iff driving `a`'s pin side-actuates some *other* electrode
    /// (a ghost, `g ≠ a`) strictly adjacent to `b` — inside its fluidic
    /// exclusion zone but not on `b` itself. An adjacent ghost can drag
    /// or split the droplet; a ghost exactly *on* `b` merely holds a
    /// parked droplet in place, which is harmless (and under shared-pin
    /// addressing is precisely the compatible co-activation the backend
    /// exploits). The intended actuation `a` itself is not a pin
    /// conflict either — droplet-to-droplet spacing is the fluidic
    /// constraint's job, not this predicate's.
    ///
    /// For a droplet in motion use [`PinAssignment::motion_conflict`],
    /// which also guards the cell it is leaving.
    ///
    /// Always false under direct addressing: there are no ghosts.
    pub fn co_activation_conflict(&self, a: Coord, b: Coord) -> bool {
        self.motion_conflict(a, b, b)
    }

    /// [`PinAssignment::co_activation_conflict`] for a droplet moving
    /// `prev → now` (equal when parked): is actuating electrode `a`
    /// hazardous for it?
    ///
    /// A ghost of `a` is harmful when it fires inside the droplet's
    /// exclusion zone at either endpoint of the move — except exactly on
    /// `now`, the electrode being actuated to effect (or hold) the
    /// droplet anyway; a ghost coinciding with it reinforces the
    /// intended actuation instead of fighting it. A ghost on `prev`
    /// while the droplet moves away *is* harmful (a tug-of-war splits
    /// the droplet).
    pub fn motion_conflict(&self, a: Coord, prev: Coord, now: Coord) -> bool {
        if self.direct {
            return false;
        }
        self.ghosts(a).any(|g| g != now && (g.touches(now) || g.touches(prev)))
    }
}

impl fmt::Display for PinAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pins over {}x{} electrodes{}",
            self.pin_count(),
            self.width,
            self.height,
            if self.direct { " (direct)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two_shared() -> PinAssignment {
        // Both diagonal pairs share a pin: 2 pins over 4 electrodes.
        PinAssignment::from_pins(2, 2, vec![0, 1, 1, 0]).unwrap()
    }

    #[test]
    fn from_pins_compacts_and_groups() {
        let asg = PinAssignment::from_pins(2, 2, vec![7, 3, 3, 7]).unwrap();
        assert_eq!(asg.pin_count(), 2);
        assert_eq!(asg.electrode_count(), 4);
        assert_eq!(asg.group_of(Coord::new(0, 0)), &[Coord::new(0, 0), Coord::new(1, 1)]);
        assert_eq!(asg.pin_of(Coord::new(1, 0)), asg.pin_of(Coord::new(0, 1)));
        assert!(!asg.is_direct());
    }

    #[test]
    fn wrong_length_and_empty_grid_rejected() {
        assert!(matches!(
            PinAssignment::from_pins(2, 2, vec![0, 1]),
            Err(PinError::Malformed { .. })
        ));
        assert!(matches!(PinAssignment::from_pins(0, 4, vec![]), Err(PinError::EmptyGrid { .. })));
    }

    #[test]
    fn ghosts_exclude_the_cell_itself() {
        let asg = two_by_two_shared();
        let ghosts: Vec<Coord> = asg.ghosts(Coord::new(0, 0)).collect();
        assert_eq!(ghosts, vec![Coord::new(1, 1)]);
    }

    #[test]
    fn conflict_predicate_matches_ghost_adjacency() {
        let asg = two_by_two_shared();
        // Actuating (0,0) ghost-actuates (1,1), which is adjacent to the
        // droplet parked at (1,0): hazardous.
        assert!(asg.co_activation_conflict(Coord::new(0, 0), Coord::new(1, 0)));
        // A ghost exactly on the parked droplet is a harmless hold.
        assert!(!asg.co_activation_conflict(Coord::new(0, 0), Coord::new(1, 1)));
        // Far away is safe.
        assert!(!asg.co_activation_conflict(Coord::new(0, 0), Coord::new(5, 5)));
        // Off-grid actuations have no ghosts.
        assert!(!asg.co_activation_conflict(Coord::new(9, 9), Coord::new(1, 1)));
    }

    #[test]
    fn motion_conflict_guards_both_endpoints() {
        // A 1x7 strip where cells 0 and 6 share a pin.
        let asg = PinAssignment::from_pins(7, 1, vec![0, 1, 2, 3, 4, 5, 0]).unwrap();
        let cell = |x| Coord::new(x, 0);
        // Actuating (6,0) ghosts (0,0): harmful for a droplet moving
        // (0,0) -> (1,0) (tug-of-war on the vacated cell) and for one
        // moving (1,0) -> (2,0)?  No: ghost (0,0) touches prev (1,0).
        assert!(asg.motion_conflict(cell(6), cell(0), cell(1)));
        assert!(asg.motion_conflict(cell(6), cell(1), cell(2)));
        assert!(!asg.motion_conflict(cell(6), cell(2), cell(3)));
        // A ghost exactly on the destination reinforces the move: the
        // shared pin is driving that droplet's own hop.
        assert!(!asg.motion_conflict(cell(6), cell(1), cell(0)));
        // Parked semantics coincide with co_activation_conflict.
        assert!(asg.motion_conflict(cell(6), cell(1), cell(1)));
        assert!(!asg.motion_conflict(cell(6), cell(0), cell(0)));
    }

    #[test]
    fn direct_assignment_has_no_conflicts() {
        let asg = PinAssignment::from_pins(3, 2, (0..6).collect()).unwrap();
        assert!(asg.is_direct());
        assert_eq!(asg.pin_count(), 6);
        for y in 0..2 {
            for x in 0..3 {
                let c = Coord::new(x, y);
                assert_eq!(asg.ghosts(c).count(), 0);
                assert!(!asg.co_activation_conflict(c, Coord::new(x, y)));
            }
        }
    }
}
