use crate::{PinAssignment, PinError};
use dmf_chip::{ChipSpec, Coord};
use std::fmt;
use std::str::FromStr;

/// Minimum group-mate spacing (Chebyshev) for a droplet never to
/// ghost-interfere with itself: the ghost of the electrode it moves onto
/// must clear both its previous and its next cell's exclusion zone.
const MIN_SELF_SAFE_SPACING: i32 = 3;

/// An electrode→pin assignment strategy.
///
/// Backends are purely geometric: they see the electrode grid, not the
/// plan, so one assignment serves every program on the chip.
pub trait ChipBackend {
    /// The backend's canonical name (as accepted by `--backend`).
    fn name(&self) -> &'static str;

    /// Assigns control pins over a `width × height` electrode grid.
    ///
    /// # Errors
    ///
    /// Returns [`PinError::EmptyGrid`] for a degenerate grid; individual
    /// backends add their own parameter-validity errors.
    fn assign(&self, width: i32, height: i32) -> Result<PinAssignment, PinError>;

    /// Assigns control pins over a chip's electrode array.
    ///
    /// # Errors
    ///
    /// As [`ChipBackend::assign`].
    fn assign_chip(&self, chip: &ChipSpec) -> Result<PinAssignment, PinError> {
        self.assign(chip.width(), chip.height())
    }
}

/// The fully-addressable baseline: one dedicated control pin per
/// electrode. Pin-safety checks are vacuous, so every consumer behaves
/// exactly as before pin constraints existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectAddress;

impl ChipBackend for DirectAddress {
    fn name(&self) -> &'static str {
        "direct-address"
    }

    fn assign(&self, width: i32, height: i32) -> Result<PinAssignment, PinError> {
        if width <= 0 || height <= 0 {
            return Err(PinError::EmptyGrid { width, height });
        }
        let cells = (width as u32) * (height as u32);
        PinAssignment::from_pins(width, height, (0..cells).collect())
    }
}

/// Row-wise cyclic column sharing: electrode `(x, y)` is driven by pin
/// `(y, x mod pitch)`, so within each row every `pitch`-th electrode
/// shares a pin. Pin count is `height × min(width, pitch)` instead of
/// `width × height`.
///
/// Group mates sit exactly `pitch` columns apart in the same row, so a
/// pitch of at least 3 keeps every droplet clear of its own ghosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowColumn {
    pitch: i32,
}

impl RowColumn {
    /// A row-column backend with the given column pitch.
    ///
    /// # Errors
    ///
    /// Returns [`PinError::UnsafePitch`] for a pitch below 3 (a droplet
    /// could then ghost-interfere with itself).
    pub fn new(pitch: i32) -> Result<Self, PinError> {
        if pitch < MIN_SELF_SAFE_SPACING {
            return Err(PinError::UnsafePitch { pitch });
        }
        Ok(RowColumn { pitch })
    }

    /// The configured column pitch.
    pub fn pitch(&self) -> i32 {
        self.pitch
    }
}

impl Default for RowColumn {
    /// Pitch 6: group mates are 6 columns apart — safely beyond the
    /// 8-neighborhood — and, being a multiple of the streaming chip's
    /// 3-column module lattice, ghosts over the module rows either land
    /// exactly on a sibling port (a harmless hold / compatible
    /// co-activation) or clear its exclusion zone entirely. A 24-column
    /// chip needs a quarter of the direct pin count.
    fn default() -> Self {
        RowColumn { pitch: 6 }
    }
}

impl ChipBackend for RowColumn {
    fn name(&self) -> &'static str {
        "row-column"
    }

    fn assign(&self, width: i32, height: i32) -> Result<PinAssignment, PinError> {
        if width <= 0 || height <= 0 {
            return Err(PinError::EmptyGrid { width, height });
        }
        let per_row = width.min(self.pitch) as u32;
        let mut pins = Vec::with_capacity((width as usize) * (height as usize));
        for y in 0..height {
            for x in 0..width {
                pins.push((y as u32) * per_row + (x % self.pitch) as u32);
            }
        }
        PinAssignment::from_pins(width, height, pins)
    }
}

/// Broadcast addressing via greedy compatibility-graph coloring.
///
/// Two electrodes are *compatible* (may share a pin) iff their Chebyshev
/// distance is at least `radius`; electrodes are colored greedily in
/// row-major order with the smallest color compatible with every member
/// already holding it. On an open grid this converges to a
/// `radius × radius` tiling, so the whole array is driven by roughly
/// `radius²` pins regardless of its size — the densest sharing (and the
/// most ghost actuations) of the built-in backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Broadcast {
    radius: i32,
}

impl Broadcast {
    /// A broadcast backend with the given compatibility radius.
    ///
    /// # Errors
    ///
    /// Returns [`PinError::UnsafeRadius`] for a radius below 3 (a droplet
    /// could then ghost-interfere with itself).
    pub fn new(radius: i32) -> Result<Self, PinError> {
        if radius < MIN_SELF_SAFE_SPACING {
            return Err(PinError::UnsafeRadius { radius });
        }
        Ok(Broadcast { radius })
    }

    /// The configured compatibility radius.
    pub fn radius(&self) -> i32 {
        self.radius
    }
}

impl Default for Broadcast {
    /// Radius 5: matches the default [`RowColumn`] pitch, with sharing in
    /// both axes (≈25 pins for any chip size).
    fn default() -> Self {
        Broadcast { radius: 5 }
    }
}

impl ChipBackend for Broadcast {
    fn name(&self) -> &'static str {
        "broadcast"
    }

    fn assign(&self, width: i32, height: i32) -> Result<PinAssignment, PinError> {
        if width <= 0 || height <= 0 {
            return Err(PinError::EmptyGrid { width, height });
        }
        let cheb = |a: Coord, b: Coord| (a.x - b.x).abs().max((a.y - b.y).abs());
        let mut groups: Vec<Vec<Coord>> = Vec::new();
        let mut pins = Vec::with_capacity((width as usize) * (height as usize));
        for y in 0..height {
            for x in 0..width {
                let cell = Coord::new(x, y);
                let color = groups
                    .iter()
                    .position(|members| members.iter().all(|&m| cheb(m, cell) >= self.radius));
                let color = match color {
                    Some(c) => c,
                    None => {
                        groups.push(Vec::new());
                        groups.len() - 1
                    }
                };
                groups[color].push(cell);
                pins.push(color as u32);
            }
        }
        PinAssignment::from_pins(width, height, pins)
    }
}

/// The built-in backends by name, as selected with `--backend <name>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// One pin per electrode (the baseline; see [`DirectAddress`]).
    #[default]
    DirectAddress,
    /// Row-wise cyclic column sharing at the default pitch
    /// (see [`RowColumn`]).
    RowColumn,
    /// Greedy compatibility-graph coloring at the default radius
    /// (see [`Broadcast`]).
    Broadcast,
}

impl BackendKind {
    /// Every built-in backend, baseline first.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::DirectAddress, BackendKind::RowColumn, BackendKind::Broadcast];

    /// The canonical `--backend` name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::DirectAddress => "direct-address",
            BackendKind::RowColumn => "row-column",
            BackendKind::Broadcast => "broadcast",
        }
    }

    /// Parses a backend name (canonical names plus the short aliases
    /// `direct` and `rowcol`).
    ///
    /// # Errors
    ///
    /// Returns [`PinError::UnknownBackend`] for anything else.
    pub fn parse(name: &str) -> Result<Self, PinError> {
        match name {
            "direct-address" | "direct" => Ok(BackendKind::DirectAddress),
            "row-column" | "rowcol" => Ok(BackendKind::RowColumn),
            "broadcast" => Ok(BackendKind::Broadcast),
            other => Err(PinError::UnknownBackend { name: other.into() }),
        }
    }

    /// The backend strategy with its default parameters.
    pub fn backend(self) -> Box<dyn ChipBackend> {
        match self {
            BackendKind::DirectAddress => Box::new(DirectAddress),
            BackendKind::RowColumn => Box::new(RowColumn::default()),
            BackendKind::Broadcast => Box::new(Broadcast::default()),
        }
    }

    /// Assigns this backend's pins over a chip's electrode array.
    ///
    /// # Errors
    ///
    /// As [`ChipBackend::assign`].
    pub fn assign(self, chip: &ChipSpec) -> Result<PinAssignment, PinError> {
        self.backend().assign_chip(chip)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = PinError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendKind::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheb(a: Coord, b: Coord) -> i32 {
        (a.x - b.x).abs().max((a.y - b.y).abs())
    }

    /// Every pair of group mates must be at least `spacing` apart.
    fn assert_group_spacing(asg: &PinAssignment, spacing: i32) {
        for p in 0..asg.pin_count() as u32 {
            let members = asg.group(crate::PinId(p));
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    assert!(
                        cheb(a, b) >= spacing,
                        "group {p}: {a} and {b} are only {} apart",
                        cheb(a, b)
                    );
                }
            }
        }
    }

    #[test]
    fn direct_address_is_one_pin_per_electrode() {
        let asg = DirectAddress.assign(23, 11).unwrap();
        assert!(asg.is_direct());
        assert_eq!(asg.pin_count(), 23 * 11);
        assert_eq!(asg.electrode_count(), 23 * 11);
    }

    #[test]
    fn row_column_shares_within_rows_only() {
        let asg = RowColumn::default().assign(23, 11).unwrap();
        assert!(!asg.is_direct());
        assert_eq!(asg.pin_count(), 11 * 6);
        assert_group_spacing(&asg, 6);
        // Mates of (1, 4): every column ≡ 1 (mod 6) in row 4.
        let mates = asg.group_of(Coord::new(1, 4));
        assert!(mates.iter().all(|m| m.y == 4 && m.x % 6 == 1));
        assert_eq!(mates.len(), 4); // columns 1, 7, 13, 19
                                    // Narrow grids never exceed one pin per column per row.
        let narrow = RowColumn::default().assign(3, 4).unwrap();
        assert_eq!(narrow.pin_count(), 12);
        assert!(narrow.is_direct());
    }

    #[test]
    fn broadcast_coloring_respects_the_radius() {
        for radius in [3, 4, 5] {
            let asg = Broadcast::new(radius).unwrap().assign(23, 11).unwrap();
            assert_group_spacing(&asg, radius);
            // Greedy row-major coloring of an open grid tiles at
            // radius², independent of chip size.
            assert_eq!(asg.pin_count(), (radius * radius) as usize, "radius {radius}");
        }
    }

    #[test]
    fn unsafe_parameters_rejected() {
        assert!(matches!(RowColumn::new(2), Err(PinError::UnsafePitch { pitch: 2 })));
        assert!(matches!(Broadcast::new(1), Err(PinError::UnsafeRadius { radius: 1 })));
        assert!(RowColumn::new(3).is_ok());
        assert!(Broadcast::new(3).is_ok());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()).unwrap(), kind);
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!(BackendKind::parse("direct").unwrap(), BackendKind::DirectAddress);
        assert_eq!(BackendKind::parse("rowcol").unwrap(), BackendKind::RowColumn);
        assert!(matches!(BackendKind::parse("fancy"), Err(PinError::UnknownBackend { .. })));
    }

    #[test]
    fn assignments_are_deterministic() {
        for kind in BackendKind::ALL {
            let a = kind.backend().assign(20, 14).unwrap();
            let b = kind.backend().assign(20, 14).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn degenerate_grids_rejected_by_every_backend() {
        for kind in BackendKind::ALL {
            assert!(matches!(kind.backend().assign(0, 8), Err(PinError::EmptyGrid { .. })));
        }
    }
}
