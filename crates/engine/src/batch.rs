//! Parallel batch planning over a `std::thread::scope` worker pool.
//!
//! Planning is embarrassingly parallel: each request is a pure function of
//! its [`crate::PlanKey`] tuple, so a pool of workers can pull *chunks*
//! of requests off an atomic cursor and plan them independently (one
//! `fetch_add` per chunk, not per request). Results come back
//! **in input order**, and every plan is byte-identical to what a
//! sequential [`crate::StreamingEngine::plan`] call would have produced —
//! threads only change wall-clock time, never output.
//!
//! The pool defaults to [`std::thread::available_parallelism`] workers and
//! is overridable per batch via [`BatchOptions::with_jobs`] (the CLI's
//! `--jobs N`). An optional shared [`PlanCache`] deduplicates identical
//! requests within and across batches.

use crate::{EngineConfig, EngineError, PlanCache, StreamPlan, StreamingEngine};
use dmf_ratio::TargetRatio;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One planning request: a target, a demand and the engine configuration
/// to plan under. Batches may freely mix configurations.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The engine configuration for this request.
    pub config: EngineConfig,
    /// The target ratio.
    pub target: TargetRatio,
    /// The demand `D`.
    pub demand: u64,
}

impl PlanRequest {
    /// A request for `demand` droplets of `target` under the default
    /// configuration.
    pub fn new(target: TargetRatio, demand: u64) -> Self {
        PlanRequest { config: EngineConfig::default(), target, demand }
    }

    /// This request under another configuration.
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// This request planned with the named mixing algorithm, resolved
    /// against the [`dmf_mixalgo::MixingAlgorithmRegistry`] (keys, labels
    /// and aliases, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownAlgorithm`] (listing the registered
    /// keys) when `name` does not resolve.
    pub fn with_algorithm(mut self, name: &str) -> Result<Self, EngineError> {
        self.config.algorithm = dmf_mixalgo::MixingAlgorithmRegistry::resolve(name)?;
        Ok(self)
    }
}

/// Worker-pool and cache settings for [`plan_batch`].
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    jobs: Option<NonZeroUsize>,
    cache: Option<Arc<PlanCache>>,
}

impl BatchOptions {
    /// Default options: `available_parallelism` workers, no cache.
    #[must_use]
    pub fn new() -> Self {
        BatchOptions::default()
    }

    /// Overrides the worker count (`--jobs N`). Zero is unrepresentable:
    /// the CLI rejects it before this type is ever constructed.
    #[must_use]
    pub fn with_jobs(mut self, jobs: NonZeroUsize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Plans through (and warms) `cache`.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The configured cache, if any.
    pub fn cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// The worker count a batch of `requests` requests would use.
    pub fn effective_jobs(&self, requests: usize) -> usize {
        let configured = self
            .jobs
            .or_else(|| std::thread::available_parallelism().ok())
            .map_or(1, NonZeroUsize::get);
        configured.min(requests).max(1)
    }
}

fn plan_one(
    req: &PlanRequest,
    cache: Option<&Arc<PlanCache>>,
) -> Result<Arc<StreamPlan>, EngineError> {
    let mut engine = StreamingEngine::new(req.config);
    if let Some(cache) = cache {
        engine = engine.with_cache(Arc::clone(cache));
    }
    engine.plan_shared(&req.target, req.demand)
}

/// Plans every request, in parallel, returning results **in input order**.
///
/// Workers claim chunks of requests off an atomic cursor (sized for ~4
/// chunks per worker, capped at 64), so load balances across
/// heterogeneous request costs without paying per-request cursor
/// traffic; determinism is unaffected because each plan only depends on
/// its own request. Per-batch `batch.requests` /
/// `batch.jobs` gauges are published when the global recorder is enabled,
/// and each worker adopts the caller's [`dmf_obs::TraceContext`], so
/// per-request `engine_plan` spans parent under the `plan_batch` span
/// instead of becoming anonymous per-thread roots.
///
/// Errors are per-request: one failing request yields an `Err` in its
/// slot without disturbing its neighbors. Requests rejected by the
/// mixability pre-pass ([`StreamingEngine::preflight`]) are answered
/// inline before the pool spins up — an unsatisfiable CF request never
/// occupies a worker.
pub fn plan_batch(
    requests: &[PlanRequest],
    options: &BatchOptions,
) -> Vec<Result<Arc<StreamPlan>, EngineError>> {
    let _span = dmf_obs::span!("plan_batch");
    let jobs = options.effective_jobs(requests.len());
    let obs = dmf_obs::global();
    if obs.is_enabled() {
        obs.gauge_set("batch.requests", requests.len() as u64);
        obs.gauge_set("batch.jobs", jobs as u64);
    }
    if jobs <= 1 {
        return requests.iter().map(|r| plan_one(r, options.cache())).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<Arc<StreamPlan>, EngineError>>> = Vec::new();
    slots.resize_with(requests.len(), || None);
    // Feasibility triage: requests the mixability pre-pass rejects are
    // answered inline, so only satisfiable work reaches the pool and no
    // worker is ever burned on an unplannable request.
    let pending: Vec<usize> = requests
        .iter()
        .enumerate()
        .filter_map(|(i, req)| match StreamingEngine::preflight(&req.target, req.demand) {
            Ok(()) => Some(i),
            Err(e) => {
                slots[i] = Some(Err(e));
                None
            }
        })
        .collect();
    // Workers claim *chunks* of the pending list, not single requests:
    // one fetch_add per chunk amortizes the cursor's cache-line traffic
    // across up to 64 plans. Aim for ~4 chunks per worker so the tail
    // still load-balances across heterogeneous request costs.
    let chunk = (pending.len() / (jobs * 4)).clamp(1, 64);
    // Capture the batch span's position so each worker thread can adopt
    // it: per-request `engine_plan` spans then parent under `plan_batch`
    // instead of floating as anonymous roots.
    let ctx = dmf_obs::TraceContext::current();
    let ctx_ref = &ctx;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs.min(pending.len()))
            .map(|_| {
                scope.spawn(|| {
                    let _adopted = ctx_ref.enter();
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= pending.len() {
                            break;
                        }
                        let end = (start + chunk).min(pending.len());
                        for &i in &pending[start..end] {
                            if let Some(req) = requests.get(i) {
                                local.push((i, plan_one(req, options.cache())));
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // A worker can only fail to join if it panicked; the affected
            // slots surface as typed Internal errors below instead of
            // tearing down the caller.
            if let Ok(local) = handle.join() {
                for (i, result) in local {
                    slots[i] = Some(result);
                }
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(EngineError::Internal { what: "batch worker abandoned its request".into() })
            })
        })
        .collect()
}

impl StreamingEngine {
    /// Plans every `(target, demand)` pair under this engine's
    /// configuration, in parallel, returning plans in input order (see
    /// [`plan_batch`]).
    ///
    /// The engine's own cache is used when `options` does not carry one.
    pub fn plan_batch(
        &self,
        demands: &[(TargetRatio, u64)],
        options: &BatchOptions,
    ) -> Vec<Result<Arc<StreamPlan>, EngineError>> {
        let requests: Vec<PlanRequest> = demands
            .iter()
            .map(|(target, demand)| {
                PlanRequest::new(target.clone(), *demand).with_config(*self.config())
            })
            .collect();
        match (options.cache(), self.cache()) {
            (None, Some(own)) => {
                plan_batch(&requests, &options.clone().with_cache(Arc::clone(own)))
            }
            _ => plan_batch(&requests, options),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    #[test]
    fn batch_matches_sequential_for_mixed_demands() {
        let requests: Vec<PlanRequest> =
            (1..=6).map(|d| PlanRequest::new(pcr_d4(), d * 4)).collect();
        let jobs = NonZeroUsize::new(3)
            .map_or_else(BatchOptions::new, |j| BatchOptions::new().with_jobs(j));
        let parallel = plan_batch(&requests, &jobs);
        for (req, result) in requests.iter().zip(&parallel) {
            let sequential =
                StreamingEngine::new(req.config).plan(&req.target, req.demand).unwrap();
            let got = result.as_ref().unwrap();
            assert_eq!(got.total_cycles, sequential.total_cycles);
            assert_eq!(got.total_inputs, sequential.total_inputs);
            assert_eq!(got.demand, sequential.demand);
        }
    }

    #[test]
    fn errors_stay_in_their_slot() {
        let infeasible = PlanRequest::new(pcr_d4(), 0);
        let requests =
            vec![PlanRequest::new(pcr_d4(), 4), infeasible, PlanRequest::new(pcr_d4(), 8)];
        let results = plan_batch(&requests, &BatchOptions::new());
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(EngineError::ZeroDemand)));
        assert!(results[2].is_ok());
    }

    #[test]
    fn infeasible_requests_are_triaged_before_the_pool() {
        // A single pure fluid is unmixable: the pre-pass answers the slot
        // without planning, and neighbors are untouched.
        let pure = TargetRatio::new(vec![16]).unwrap();
        let requests = vec![
            PlanRequest::new(pcr_d4(), 4),
            PlanRequest::new(pure, 4),
            PlanRequest::new(pcr_d4(), 8),
        ];
        let jobs = NonZeroUsize::new(2)
            .map_or_else(BatchOptions::new, |j| BatchOptions::new().with_jobs(j));
        let results = plan_batch(&requests, &jobs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(EngineError::Infeasible { rule: dmf_check::RuleCode::Feas002, .. })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn shared_cache_dedupes_identical_requests() {
        let cache = PlanCache::shared();
        let requests = vec![PlanRequest::new(pcr_d4(), 20); 4];
        let options = BatchOptions::new().with_cache(Arc::clone(&cache));
        let results = plan_batch(&requests, &options);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(cache.len(), 1, "four identical requests, one cached plan");
    }

    #[test]
    fn effective_jobs_clamps_to_request_count() {
        let options = NonZeroUsize::new(16)
            .map_or_else(BatchOptions::new, |j| BatchOptions::new().with_jobs(j));
        assert_eq!(options.effective_jobs(3), 3);
        assert_eq!(options.effective_jobs(0), 1);
    }
}
