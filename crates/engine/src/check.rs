//! Plan-level static verification (`PLN001`–`PLN002`) plus the per-pass
//! composition from `dmf-check`.
//!
//! The engine is a *producer* of artifacts, so it never verifies its own
//! output with its own accounting: everything here defers to `dmf-check`'s
//! independent re-derivations ([`dmf_check::check_pass`],
//! [`dmf_check::recount_forest`], [`dmf_check::recount_storage_units`]) and
//! only contributes the two plan-aggregate rules that need visibility into
//! [`StreamPlan`].

use crate::{PassPlan, StreamPlan};
use dmf_check::{CheckReport, Location, RuleCode};

/// Statically verifies a complete streaming plan: every pass's forest and
/// schedule (rules `CF*`/`SCH*`), demand coverage (`PLN001`) and the
/// droplet-exact aggregates (`PLN002`).
///
/// In debug builds [`crate::StreamingEngine::plan`] runs this on every plan
/// it emits and asserts a clean report; release builds skip the hook, and
/// the `dmfstream check` CLI verb exposes it on demand.
pub fn static_check(plan: &StreamPlan) -> CheckReport {
    let _span = dmf_obs::span!("static_check");
    let mut report = CheckReport::new();
    for (i, pass) in plan.passes.iter().enumerate() {
        report.merge(dmf_check::check_pass(
            &plan.target,
            pass.demand,
            &pass.forest,
            &pass.schedule,
            Some(pass.storage.peak),
        ));
        if pass.demand == 0 {
            report.report(RuleCode::Pln001, Location::Pass(i), "pass covers zero demand");
        }
    }
    let covered: u64 = plan.passes.iter().map(|p| p.demand).sum();
    if covered != plan.demand {
        report.report(
            RuleCode::Pln001,
            Location::Artifact,
            format!("passes cover {covered} droplet(s) but the plan demands {}", plan.demand),
        );
    }
    let mut splits = 0u64;
    let mut waste = 0u64;
    let mut inputs = vec![0u64; plan.target.fluid_count()];
    let mut cycles = 0u64;
    let mut storage = 0usize;
    for pass in &plan.passes {
        let counts = dmf_check::recount_forest(&pass.forest);
        splits += counts.mix_splits;
        waste += counts.waste;
        for (acc, v) in inputs.iter_mut().zip(&counts.inputs) {
            *acc += v;
        }
        cycles += u64::from(pass.schedule.makespan());
        storage = storage.max(dmf_check::recount_storage_units(&pass.forest, &pass.schedule));
    }
    let input_total: u64 = inputs.iter().sum();
    let mut aggregate = |what: &str, claimed: u64, recounted: u64| {
        if claimed != recounted {
            report.report(
                RuleCode::Pln002,
                Location::Artifact,
                format!("{what}: plan claims {claimed}, independent recount gives {recounted}"),
            );
        }
    };
    aggregate("Tms", plan.total_mix_splits, splits);
    aggregate("W", plan.total_waste, waste);
    aggregate("I", plan.total_inputs, input_total);
    aggregate("Tc", plan.total_cycles, cycles);
    aggregate("q", plan.storage_peak as u64, storage as u64);
    if plan.inputs != inputs {
        report.report(
            RuleCode::Pln002,
            Location::Artifact,
            format!("I[]: plan claims {:?}, independent recount gives {inputs:?}", plan.inputs),
        );
    }
    report
}

/// Debug-build hook: verifies one pass before it is realized onto a chip.
#[cfg(debug_assertions)]
pub(crate) fn debug_check_pass(pass: &PassPlan) {
    // Rebuild the target ratio from the forest's canonical target mixture;
    // its parts sum to a power of two by construction.
    if let Ok(target) = dmf_ratio::TargetRatio::new(pass.forest.target().parts().to_vec()) {
        let report = dmf_check::check_pass(
            &target,
            pass.demand,
            &pass.forest,
            &pass.schedule,
            Some(pass.storage.peak),
        );
        debug_assert!(report.is_clean(), "realizing an unsound pass:\n{report}");
    }
}

#[cfg(not(debug_assertions))]
pub(crate) fn debug_check_pass(_pass: &PassPlan) {}
