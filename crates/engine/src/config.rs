use dmf_forest::ReusePolicy;
use dmf_mixalgo::AlgorithmId;
use dmf_sched::SchedulerId;

/// How many on-chip mixers the engine may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MixerBudget {
    /// The paper's convention: the `Mlb` of the target's MinMix tree — the
    /// fewest mixers that let the MM base tree finish in critical-path time.
    #[default]
    MmLowerBound,
    /// A fixed mixer count.
    Fixed(usize),
}

/// Configuration of a [`crate::StreamingEngine`].
///
/// The default reproduces the paper's headline configuration: MinMix base
/// trees, SRS scheduling, `Mlb` mixers, paper-faithful across-tree droplet
/// reuse and no storage budget.
///
/// Algorithm and scheduler are registry ids
/// ([`dmf_mixalgo::AlgorithmId`] / [`dmf_sched::SchedulerId`]), so any
/// registered algorithm — not just the [`dmf_mixalgo::BaseAlgorithm`]
/// baselines — can drive the engine; the enum values still convert
/// (`config.with_algorithm(BaseAlgorithm::Rma)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Base mixing-tree algorithm seeding the forest.
    pub algorithm: AlgorithmId,
    /// Forest scheduler (MMS for latency, SRS for storage).
    pub scheduler: SchedulerId,
    /// Mixer budget.
    pub mixers: MixerBudget,
    /// On-chip storage budget `q'`; `None` means unconstrained
    /// (single-pass).
    pub storage_limit: Option<usize>,
    /// Waste-droplet reuse policy for forest construction.
    pub reuse: ReusePolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            algorithm: AlgorithmId::MINMIX,
            scheduler: SchedulerId::SRS,
            mixers: MixerBudget::MmLowerBound,
            storage_limit: None,
            reuse: ReusePolicy::AcrossTrees,
        }
    }
}

impl EngineConfig {
    /// Shorthand: this config with a fixed mixer count.
    pub fn with_mixers(mut self, mixers: usize) -> Self {
        self.mixers = MixerBudget::Fixed(mixers);
        self
    }

    /// Shorthand: this config with a storage budget.
    pub fn with_storage_limit(mut self, limit: usize) -> Self {
        self.storage_limit = Some(limit);
        self
    }

    /// Shorthand: this config with another base algorithm (a
    /// [`dmf_mixalgo::BaseAlgorithm`] or any registered
    /// [`AlgorithmId`]).
    pub fn with_algorithm(mut self, algorithm: impl Into<AlgorithmId>) -> Self {
        self.algorithm = algorithm.into();
        self
    }

    /// Shorthand: this config with another scheduler (a
    /// [`dmf_sched::SchedulerKind`] or any registered [`SchedulerId`]).
    pub fn with_scheduler(mut self, scheduler: impl Into<SchedulerId>) -> Self {
        self.scheduler = scheduler.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_mixalgo::BaseAlgorithm;
    use dmf_sched::SchedulerKind;

    #[test]
    fn default_matches_paper_headline() {
        let c = EngineConfig::default();
        assert_eq!(c.algorithm, BaseAlgorithm::MinMix);
        assert_eq!(c.scheduler, SchedulerKind::Srs);
        assert_eq!(c.mixers, MixerBudget::MmLowerBound);
        assert_eq!(c.storage_limit, None);
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::default()
            .with_mixers(5)
            .with_storage_limit(3)
            .with_algorithm(BaseAlgorithm::Rma)
            .with_scheduler(SchedulerKind::Mms);
        assert_eq!(c.mixers, MixerBudget::Fixed(5));
        assert_eq!(c.storage_limit, Some(3));
        assert_eq!(c.algorithm, BaseAlgorithm::Rma);
        assert_eq!(c.scheduler, SchedulerKind::Mms);
    }

    #[test]
    fn registry_ids_slot_in_directly() {
        let c = EngineConfig::default().with_algorithm(AlgorithmId::MTCS);
        assert_eq!(c.algorithm, AlgorithmId::MTCS);
        assert_eq!(c.algorithm.key(), "mtcs");
    }
}
