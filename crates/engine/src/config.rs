use dmf_forest::ReusePolicy;
use dmf_mixalgo::BaseAlgorithm;
use dmf_sched::SchedulerKind;

/// How many on-chip mixers the engine may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MixerBudget {
    /// The paper's convention: the `Mlb` of the target's MinMix tree — the
    /// fewest mixers that let the MM base tree finish in critical-path time.
    #[default]
    MmLowerBound,
    /// A fixed mixer count.
    Fixed(usize),
}

/// Configuration of a [`crate::StreamingEngine`].
///
/// The default reproduces the paper's headline configuration: MinMix base
/// trees, SRS scheduling, `Mlb` mixers, paper-faithful across-tree droplet
/// reuse and no storage budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Base mixing-tree algorithm seeding the forest.
    pub algorithm: BaseAlgorithm,
    /// Forest scheduler (MMS for latency, SRS for storage).
    pub scheduler: SchedulerKind,
    /// Mixer budget.
    pub mixers: MixerBudget,
    /// On-chip storage budget `q'`; `None` means unconstrained
    /// (single-pass).
    pub storage_limit: Option<usize>,
    /// Waste-droplet reuse policy for forest construction.
    pub reuse: ReusePolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            algorithm: BaseAlgorithm::MinMix,
            scheduler: SchedulerKind::Srs,
            mixers: MixerBudget::MmLowerBound,
            storage_limit: None,
            reuse: ReusePolicy::AcrossTrees,
        }
    }
}

impl EngineConfig {
    /// Shorthand: this config with a fixed mixer count.
    pub fn with_mixers(mut self, mixers: usize) -> Self {
        self.mixers = MixerBudget::Fixed(mixers);
        self
    }

    /// Shorthand: this config with a storage budget.
    pub fn with_storage_limit(mut self, limit: usize) -> Self {
        self.storage_limit = Some(limit);
        self
    }

    /// Shorthand: this config with another base algorithm.
    pub fn with_algorithm(mut self, algorithm: BaseAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Shorthand: this config with another scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_headline() {
        let c = EngineConfig::default();
        assert_eq!(c.algorithm, BaseAlgorithm::MinMix);
        assert_eq!(c.scheduler, SchedulerKind::Srs);
        assert_eq!(c.mixers, MixerBudget::MmLowerBound);
        assert_eq!(c.storage_limit, None);
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::default()
            .with_mixers(5)
            .with_storage_limit(3)
            .with_algorithm(BaseAlgorithm::Rma)
            .with_scheduler(SchedulerKind::Mms);
        assert_eq!(c.mixers, MixerBudget::Fixed(5));
        assert_eq!(c.storage_limit, Some(3));
        assert_eq!(c.algorithm, BaseAlgorithm::Rma);
        assert_eq!(c.scheduler, SchedulerKind::Mms);
    }
}
