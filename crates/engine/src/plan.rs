use crate::{EngineConfig, EngineError, MixerBudget};
use dmf_forest::build_forest;
use dmf_mixalgo::{BaseAlgorithm, Template};
use dmf_mixgraph::MixGraph;
use dmf_ratio::TargetRatio;
use dmf_sched::{mixer_lower_bound, Schedule, StorageProfile};
use std::fmt;

/// One pass of the streaming engine: a mixing forest plus its schedule and
/// storage profile.
#[derive(Debug, Clone)]
pub struct PassPlan {
    /// Target droplets this pass emits toward the demand.
    pub demand: u64,
    /// The pass's mixing forest.
    pub forest: MixGraph,
    /// The pass's mixer/time assignment.
    pub schedule: Schedule,
    /// Storage occupancy of the schedule (`q` is `storage.peak`).
    pub storage: StorageProfile,
}

impl PassPlan {
    /// Completion time of this pass in time-cycles.
    pub fn cycles(&self) -> u32 {
        self.schedule.makespan()
    }

    /// Storage units this pass needs.
    pub fn storage_units(&self) -> usize {
        self.storage.peak
    }
}

/// A complete streaming plan: every pass needed to meet the demand, plus
/// droplet-exact aggregates.
#[derive(Debug, Clone)]
pub struct StreamPlan {
    /// The planned target ratio.
    pub target: TargetRatio,
    /// The requested demand `D`.
    pub demand: u64,
    /// Mixers used (`Mc`).
    pub mixers: usize,
    /// The passes, in execution order.
    pub passes: Vec<PassPlan>,
    /// Total completion time over all passes, `Tc`.
    pub total_cycles: u64,
    /// Total mix-split operations, `Tms`.
    pub total_mix_splits: u64,
    /// Total waste droplets, `W`.
    pub total_waste: u64,
    /// Total input droplets, `I`.
    pub total_inputs: u64,
    /// Per-fluid input droplets, `I[]`.
    pub inputs: Vec<u64>,
    /// Peak storage over all passes, `q`.
    pub storage_peak: usize,
}

impl StreamPlan {
    /// Number of passes.
    pub fn pass_count(&self) -> usize {
        self.passes.len()
    }

    /// Runs the independent static verifier over this plan (see
    /// [`crate::static_check`]).
    pub fn static_check(&self) -> dmf_check::CheckReport {
        crate::static_check(self)
    }
}

impl fmt::Display for StreamPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "D={} passes={} Tc={} Tms={} W={} I={} q={} (Mc={})",
            self.demand,
            self.passes.len(),
            self.total_cycles,
            self.total_mix_splits,
            self.total_waste,
            self.total_inputs,
            self.storage_peak,
            self.mixers
        )
    }
}

/// The demand-driven mixture-preparation engine (see crate docs).
#[derive(Debug, Clone, Default)]
pub struct StreamingEngine {
    config: EngineConfig,
}

impl StreamingEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        StreamingEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Resolves the mixer budget for a target (the `Mlb` of its MinMix
    /// tree under [`MixerBudget::MmLowerBound`]).
    ///
    /// # Errors
    ///
    /// Propagates base-tree construction and scheduling failures.
    pub fn mixer_count(&self, target: &TargetRatio) -> Result<usize, EngineError> {
        match self.config.mixers {
            MixerBudget::Fixed(m) => Ok(m),
            MixerBudget::MmLowerBound => {
                let mm = BaseAlgorithm::MinMix.algorithm().build_graph(target)?;
                Ok(mixer_lower_bound(&mm)?)
            }
        }
    }

    /// Plans the production of `demand` droplets of `target`.
    ///
    /// With a storage budget configured, the demand is split into the
    /// fewest passes whose schedules each fit the budget; otherwise a
    /// single pass covers the whole demand.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZeroDemand`] for `demand == 0`,
    /// [`EngineError::StorageInfeasible`] when even a demand-2 pass exceeds
    /// the storage budget, and propagates construction/scheduling failures.
    pub fn plan(&self, target: &TargetRatio, demand: u64) -> Result<StreamPlan, EngineError> {
        let _span = dmf_obs::span!("engine_plan");
        if demand == 0 {
            return Err(EngineError::ZeroDemand);
        }
        let template = {
            let _span = dmf_obs::span!("mixalgo_build");
            self.config.algorithm.algorithm().build_template(target)?
        };
        let mixers = self.mixer_count(target)?;
        let mut passes: Vec<PassPlan> = Vec::new();
        let mut remaining = demand;
        while remaining > 0 {
            let pass_demand = match self.config.storage_limit {
                None => remaining,
                Some(limit) => self.max_pass_demand(&template, target, remaining, mixers, limit)?,
            };
            passes.push(self.build_pass(&template, target, pass_demand, mixers)?);
            remaining = remaining.saturating_sub(pass_demand);
        }
        let total_cycles = passes.iter().map(|p| p.cycles() as u64).sum();
        let mut inputs = vec![0u64; target.fluid_count()];
        let mut total_waste = 0u64;
        let mut total_mix_splits = 0u64;
        for pass in &passes {
            let stats = pass.forest.stats();
            total_waste += stats.waste as u64;
            total_mix_splits += stats.mix_splits as u64;
            for (acc, v) in inputs.iter_mut().zip(&stats.inputs) {
                *acc += v;
            }
        }
        let plan = StreamPlan {
            target: target.clone(),
            demand,
            mixers,
            total_cycles,
            total_mix_splits,
            total_waste,
            total_inputs: inputs.iter().sum(),
            inputs,
            storage_peak: passes.iter().map(PassPlan::storage_units).max().unwrap_or(0),
            passes,
        };
        let obs = dmf_obs::global();
        if obs.is_enabled() {
            obs.gauge_set("plan.demand", plan.demand);
            obs.gauge_set("plan.passes", plan.passes.len() as u64);
            obs.gauge_set("plan.cycles", plan.total_cycles);
            obs.gauge_set("plan.mix_splits", plan.total_mix_splits);
            obs.gauge_set("plan.waste", plan.total_waste);
            obs.gauge_set("plan.inputs", plan.total_inputs);
            obs.gauge_set("plan.storage_peak", plan.storage_peak as u64);
        }
        // Translation validation: in debug builds every emitted plan must
        // satisfy the independent checker's invariants.
        #[cfg(debug_assertions)]
        {
            let report = crate::static_check(&plan);
            debug_assert!(report.is_clean(), "engine emitted an unsound plan:\n{report}");
        }
        Ok(plan)
    }

    fn build_pass(
        &self,
        template: &Template,
        target: &TargetRatio,
        demand: u64,
        mixers: usize,
    ) -> Result<PassPlan, EngineError> {
        // Subgraph-sharing base algorithms (MTCS, RSM) reuse droplets even
        // within one tree; their forests must too, or the engine would lose
        // the sharing the repeated baseline enjoys.
        let reuse = if self.config.algorithm.algorithm().shares_subgraphs() {
            dmf_forest::ReusePolicy::Eager
        } else {
            self.config.reuse
        };
        let forest = build_forest(template, target, demand, reuse)?;
        let schedule = self.config.scheduler.run(&forest, mixers)?;
        let storage = schedule.storage(&forest);
        Ok(PassPlan { demand, forest, schedule, storage })
    }

    /// The paper's `D'`: the largest demand (up to `remaining`) whose
    /// single-pass schedule fits the storage budget.
    fn max_pass_demand(
        &self,
        template: &Template,
        target: &TargetRatio,
        remaining: u64,
        mixers: usize,
        limit: usize,
    ) -> Result<u64, EngineError> {
        let first = self.build_pass(template, target, remaining.min(2), mixers)?;
        if first.storage_units() > limit {
            return Err(EngineError::StorageInfeasible { limit, needed: first.storage_units() });
        }
        // SRS storage is not strictly monotone in the demand (see the
        // Fig. 7 jitter), so keep scanning past the first infeasible
        // demand for a short window before giving up.
        let mut best = remaining.min(2);
        let mut candidate = best + 2;
        let mut misses = 0u32;
        while candidate <= remaining && misses < 4 {
            let pass = self.build_pass(template, target, candidate, mixers)?;
            if pass.storage_units() > limit {
                misses += 1;
            } else {
                best = candidate;
                misses = 0;
            }
            candidate += 2;
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_sched::SchedulerKind;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    #[test]
    fn unconstrained_plan_is_single_pass_matching_fig3() {
        let engine = StreamingEngine::new(EngineConfig::default());
        let plan = engine.plan(&pcr_d4(), 20).unwrap();
        assert_eq!(plan.pass_count(), 1);
        assert_eq!(plan.mixers, 3);
        assert_eq!(plan.total_cycles, 11); // Fig. 3
        assert_eq!(plan.storage_peak, 5); // Fig. 3
        assert_eq!(plan.total_inputs, 25); // Fig. 2
        assert_eq!(plan.total_waste, 5);
        assert_eq!(plan.total_mix_splits, 27);
    }

    #[test]
    fn storage_budget_splits_into_passes() {
        let engine = StreamingEngine::new(EngineConfig::default().with_storage_limit(3));
        let plan = engine.plan(&pcr_d4(), 20).unwrap();
        assert!(plan.pass_count() > 1, "q' = 3 cannot fit D = 20 in one pass");
        assert!(plan.passes.iter().all(|p| p.storage_units() <= 3));
        // Passes cover the demand.
        let covered: u64 = plan.passes.iter().map(|p| p.demand).sum();
        assert_eq!(covered, 20);
        // Multi-pass costs more reactant than single-pass.
        let unconstrained =
            StreamingEngine::new(EngineConfig::default()).plan(&pcr_d4(), 20).unwrap();
        assert!(plan.total_inputs >= unconstrained.total_inputs);
    }

    #[test]
    fn generous_budget_is_single_pass() {
        let engine = StreamingEngine::new(EngineConfig::default().with_storage_limit(64));
        let plan = engine.plan(&pcr_d4(), 32).unwrap();
        assert_eq!(plan.pass_count(), 1);
    }

    #[test]
    fn zero_demand_rejected() {
        let engine = StreamingEngine::new(EngineConfig::default());
        assert!(matches!(engine.plan(&pcr_d4(), 0), Err(EngineError::ZeroDemand)));
    }

    #[test]
    fn mms_is_no_slower_than_srs() {
        let target = pcr_d4();
        let srs = StreamingEngine::new(EngineConfig::default()).plan(&target, 32).unwrap();
        let mms = StreamingEngine::new(EngineConfig::default().with_scheduler(SchedulerKind::Mms))
            .plan(&target, 32)
            .unwrap();
        assert!(mms.total_cycles <= srs.total_cycles);
        assert!(srs.storage_peak <= mms.storage_peak);
    }

    #[test]
    fn mixer_budget_is_mlb_by_default() {
        let engine = StreamingEngine::new(EngineConfig::default());
        assert_eq!(engine.mixer_count(&pcr_d4()).unwrap(), 3);
        let fixed = StreamingEngine::new(EngineConfig::default().with_mixers(7));
        assert_eq!(fixed.mixer_count(&pcr_d4()).unwrap(), 7);
    }
}
