use crate::cache::PlanKey;
use crate::pipeline::PlanContext;
use crate::{EngineConfig, EngineError, PlanCache};
use dmf_mixgraph::MixGraph;
use dmf_ratio::TargetRatio;
use dmf_sched::{Schedule, StorageProfile};
use std::fmt;
use std::sync::Arc;

/// One pass of the streaming engine: a mixing forest plus its schedule and
/// storage profile.
#[derive(Debug, Clone)]
pub struct PassPlan {
    /// Target droplets this pass emits toward the demand.
    pub demand: u64,
    /// The pass's mixing forest.
    pub forest: MixGraph,
    /// The pass's mixer/time assignment.
    pub schedule: Schedule,
    /// Storage occupancy of the schedule (`q` is `storage.peak`).
    pub storage: StorageProfile,
}

impl PassPlan {
    /// Completion time of this pass in time-cycles.
    pub fn cycles(&self) -> u32 {
        self.schedule.makespan()
    }

    /// Storage units this pass needs.
    pub fn storage_units(&self) -> usize {
        self.storage.peak
    }
}

/// A complete streaming plan: every pass needed to meet the demand, plus
/// droplet-exact aggregates.
#[derive(Debug, Clone)]
pub struct StreamPlan {
    /// The planned target ratio.
    pub target: TargetRatio,
    /// The requested demand `D`.
    pub demand: u64,
    /// Mixers used (`Mc`).
    pub mixers: usize,
    /// The passes, in execution order.
    pub passes: Vec<PassPlan>,
    /// Total completion time over all passes, `Tc`.
    pub total_cycles: u64,
    /// Total mix-split operations, `Tms`.
    pub total_mix_splits: u64,
    /// Total waste droplets, `W`.
    pub total_waste: u64,
    /// Total input droplets, `I`.
    pub total_inputs: u64,
    /// Per-fluid input droplets, `I[]`.
    pub inputs: Vec<u64>,
    /// Peak storage over all passes, `q`.
    pub storage_peak: usize,
}

impl StreamPlan {
    /// Number of passes.
    pub fn pass_count(&self) -> usize {
        self.passes.len()
    }

    /// Runs the independent static verifier over this plan (see
    /// [`crate::static_check`]).
    pub fn static_check(&self) -> dmf_check::CheckReport {
        crate::static_check(self)
    }
}

impl fmt::Display for StreamPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "D={} passes={} Tc={} Tms={} W={} I={} q={} (Mc={})",
            self.demand,
            self.passes.len(),
            self.total_cycles,
            self.total_mix_splits,
            self.total_waste,
            self.total_inputs,
            self.storage_peak,
            self.mixers
        )
    }
}

/// The demand-driven mixture-preparation engine (see crate docs).
///
/// `plan` is a thin facade over the staged pipeline in [`crate::pipeline`]
/// (`BuildTree → BuildForest → Schedule → SplitPasses`); an optional
/// content-addressed [`PlanCache`] (see [`StreamingEngine::with_cache`])
/// short-circuits repeat requests.
#[derive(Debug, Clone, Default)]
pub struct StreamingEngine {
    config: EngineConfig,
    cache: Option<Arc<PlanCache>>,
}

impl StreamingEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        StreamingEngine { config, cache: None }
    }

    /// Attaches a shared content-addressed plan cache: repeat
    /// `(target, demand)` requests under the same configuration are served
    /// from the cache (counted as `cache.hits`) instead of replanned.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The attached plan cache, if any.
    pub fn cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// Resolves the mixer budget for a target (the `Mlb` of its MinMix
    /// tree under [`crate::MixerBudget::MmLowerBound`]).
    ///
    /// # Errors
    ///
    /// Propagates base-tree construction and scheduling failures.
    pub fn mixer_count(&self, target: &TargetRatio) -> Result<usize, EngineError> {
        crate::pipeline::resolve_mixers(&self.config, target)
    }

    /// Plans the production of `demand` droplets of `target`.
    ///
    /// With a storage budget configured, the demand is split into the
    /// fewest passes whose schedules each fit the budget; otherwise a
    /// single pass covers the whole demand. With a cache attached (see
    /// [`StreamingEngine::with_cache`]) repeat requests return a copy of
    /// the cached plan — byte-identical, since a plan is a pure function
    /// of the [`PlanKey`] tuple.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZeroDemand`] for `demand == 0`,
    /// [`EngineError::Infeasible`] when the mixability pre-pass
    /// ([`dmf_check::check_feasibility`]) rejects the request,
    /// [`EngineError::StorageInfeasible`] when even a demand-2 pass exceeds
    /// the storage budget, and propagates construction/scheduling failures.
    pub fn plan(&self, target: &TargetRatio, demand: u64) -> Result<StreamPlan, EngineError> {
        match &self.cache {
            None => self.plan_uncached(target, demand),
            Some(_) => self.plan_shared(target, demand).map(|plan| (*plan).clone()),
        }
    }

    /// Like [`StreamingEngine::plan`], but hands out the plan behind an
    /// [`Arc`]: on a cache hit this is a pointer clone of the stored plan
    /// (observable via [`Arc::ptr_eq`]), and without a cache the freshly
    /// planned result is wrapped without copying.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingEngine::plan`].
    pub fn plan_shared(
        &self,
        target: &TargetRatio,
        demand: u64,
    ) -> Result<Arc<StreamPlan>, EngineError> {
        preflight(target, demand)?;
        let Some(cache) = &self.cache else {
            return self.plan_uncached(target, demand).map(Arc::new);
        };
        let key = PlanKey::new(&self.config, target, demand);
        let hit = {
            let _lookup = dmf_obs::span!("plan_cache_lookup");
            cache.lookup(&key)
        };
        if let Some(hit) = hit {
            // A zero-work marker span: the trace shows the request was
            // answered from the cache (a miss shows `engine_plan` instead).
            let _hit = dmf_obs::span!("plan_cache_hit");
            return Ok(hit);
        }
        let plan = Arc::new(self.plan_uncached(target, demand)?);
        cache.store(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Runs the mixability pre-pass for a request without planning it.
    ///
    /// This is the same gate every `plan*` entry point runs; exposed so
    /// batch front ends can triage requests before spawning workers.
    ///
    /// # Errors
    ///
    /// [`EngineError::ZeroDemand`] or [`EngineError::Infeasible`].
    pub fn preflight(target: &TargetRatio, demand: u64) -> Result<(), EngineError> {
        preflight(target, demand)
    }

    /// Runs the staged pipeline end to end, bypassing any cache.
    fn plan_uncached(&self, target: &TargetRatio, demand: u64) -> Result<StreamPlan, EngineError> {
        preflight(target, demand)?;
        let _span = dmf_obs::span!("engine_plan");
        let mut ctx = PlanContext::new(self.config, target, demand)?;
        crate::Pipeline::standard().run(&mut ctx)?;
        ctx.into_plan()
    }
}

/// The feasibility gate run before any planning work: zero demand keeps
/// its historical typed error, then the dmf-check mixability pre-pass
/// rejects CF vectors unreachable under the (1:1)-mix algebra. Infeasible
/// requests never reach the pipeline — or the plan cache.
fn preflight(target: &TargetRatio, demand: u64) -> Result<(), EngineError> {
    if demand == 0 {
        return Err(EngineError::ZeroDemand);
    }
    dmf_check::assert_feasible(target.parts(), demand)
        .map_err(|e| EngineError::Infeasible { rule: e.rule, what: e.message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_sched::SchedulerKind;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    #[test]
    fn unconstrained_plan_is_single_pass_matching_fig3() {
        let engine = StreamingEngine::new(EngineConfig::default());
        let plan = engine.plan(&pcr_d4(), 20).unwrap();
        assert_eq!(plan.pass_count(), 1);
        assert_eq!(plan.mixers, 3);
        assert_eq!(plan.total_cycles, 11); // Fig. 3
        assert_eq!(plan.storage_peak, 5); // Fig. 3
        assert_eq!(plan.total_inputs, 25); // Fig. 2
        assert_eq!(plan.total_waste, 5);
        assert_eq!(plan.total_mix_splits, 27);
    }

    #[test]
    fn storage_budget_splits_into_passes() {
        let engine = StreamingEngine::new(EngineConfig::default().with_storage_limit(3));
        let plan = engine.plan(&pcr_d4(), 20).unwrap();
        assert!(plan.pass_count() > 1, "q' = 3 cannot fit D = 20 in one pass");
        assert!(plan.passes.iter().all(|p| p.storage_units() <= 3));
        // Passes cover the demand.
        let covered: u64 = plan.passes.iter().map(|p| p.demand).sum();
        assert_eq!(covered, 20);
        // Multi-pass costs more reactant than single-pass.
        let unconstrained =
            StreamingEngine::new(EngineConfig::default()).plan(&pcr_d4(), 20).unwrap();
        assert!(plan.total_inputs >= unconstrained.total_inputs);
    }

    #[test]
    fn generous_budget_is_single_pass() {
        let engine = StreamingEngine::new(EngineConfig::default().with_storage_limit(64));
        let plan = engine.plan(&pcr_d4(), 32).unwrap();
        assert_eq!(plan.pass_count(), 1);
    }

    #[test]
    fn zero_demand_rejected() {
        let engine = StreamingEngine::new(EngineConfig::default());
        assert!(matches!(engine.plan(&pcr_d4(), 0), Err(EngineError::ZeroDemand)));
    }

    #[test]
    fn infeasible_request_rejected_before_planning() {
        // A single pure fluid has no mixing tree; the pre-pass converts
        // what used to be a deep mixalgo failure into a typed rejection,
        // and an infeasible request must never warm the cache.
        let pure = TargetRatio::new(vec![16]).expect("pure ratio constructs");
        let engine = StreamingEngine::new(EngineConfig::default()).with_cache(PlanCache::shared());
        for _ in 0..2 {
            match engine.plan(&pure, 4) {
                Err(EngineError::Infeasible { rule, what }) => {
                    assert_eq!(rule, dmf_check::RuleCode::Feas002);
                    assert!(what.contains("pure fluid"), "{what}");
                }
                other => panic!("expected Infeasible, got {other:?}"),
            }
        }
        assert_eq!(engine.cache().map(|c| c.len()), Some(0), "infeasible request never cached");
    }

    #[test]
    fn mms_is_no_slower_than_srs() {
        let target = pcr_d4();
        let srs = StreamingEngine::new(EngineConfig::default()).plan(&target, 32).unwrap();
        let mms = StreamingEngine::new(EngineConfig::default().with_scheduler(SchedulerKind::Mms))
            .plan(&target, 32)
            .unwrap();
        assert!(mms.total_cycles <= srs.total_cycles);
        assert!(srs.storage_peak <= mms.storage_peak);
    }

    #[test]
    fn mixer_budget_is_mlb_by_default() {
        let engine = StreamingEngine::new(EngineConfig::default());
        assert_eq!(engine.mixer_count(&pcr_d4()).unwrap(), 3);
        let fixed = StreamingEngine::new(EngineConfig::default().with_mixers(7));
        assert_eq!(fixed.mixer_count(&pcr_d4()).unwrap(), 7);
    }

    #[test]
    fn cached_plan_is_byte_identical_and_pointer_shared() {
        let cache = PlanCache::shared();
        let engine = StreamingEngine::new(EngineConfig::default()).with_cache(Arc::clone(&cache));
        let cold = engine.plan_shared(&pcr_d4(), 20).unwrap();
        let warm = engine.plan_shared(&pcr_d4(), 20).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm), "warm hit must be the stored Arc");
        let uncached = StreamingEngine::new(EngineConfig::default()).plan(&pcr_d4(), 20).unwrap();
        assert_eq!(format!("{warm}"), format!("{uncached}"));
        // Different demand misses: a separate entry appears.
        let _ = engine.plan_shared(&pcr_d4(), 22).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn config_perturbations_do_not_alias_in_the_cache() {
        let cache = PlanCache::shared();
        let srs = StreamingEngine::new(EngineConfig::default()).with_cache(Arc::clone(&cache));
        let mms = StreamingEngine::new(EngineConfig::default().with_scheduler(SchedulerKind::Mms))
            .with_cache(Arc::clone(&cache));
        let a = srs.plan_shared(&pcr_d4(), 32).unwrap();
        let b = mms.plan_shared(&pcr_d4(), 32).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }
}
