use crate::{EngineError, StreamPlan};
use dmf_mixalgo::AlgorithmId;
use dmf_ratio::TargetRatio;
use dmf_sched::{repeated_baseline, RepeatedBaseline};
use std::fmt;

/// Convenience wrapper for the paper's repeated baselines (`RMM`, `RRMA`,
/// `RMTCS`): `⌈D/2⌉` OMS-scheduled passes of `algorithm`'s base tree with
/// `mixers` on-chip mixers.
///
/// # Errors
///
/// Propagates base-tree construction and scheduling failures.
///
/// # Examples
///
/// ```
/// use dmf_engine::repeated;
/// use dmf_mixalgo::BaseAlgorithm;
/// use dmf_ratio::TargetRatio;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let rmm = repeated(BaseAlgorithm::MinMix, &target, 20, 3)?;
/// assert_eq!(rmm.passes, 10);
/// # Ok(())
/// # }
/// ```
pub fn repeated(
    algorithm: impl Into<AlgorithmId>,
    target: &TargetRatio,
    demand: u64,
    mixers: usize,
) -> Result<RepeatedBaseline, EngineError> {
    let tree = algorithm.into().algorithm().build_graph(target)?;
    Ok(repeated_baseline(&tree, demand, mixers)?)
}

/// Relative gains of a streaming plan over a repeated baseline — the
/// quantities behind the paper's Table 3 ("MMS‖R", "SRS‖R").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Improvement {
    /// Completion-time reduction in percent (`(Tr - Tc) / Tr * 100`).
    pub time_pct: f64,
    /// Input-reactant reduction in percent (`(Ir - I) / Ir * 100`).
    pub input_pct: f64,
    /// Waste-droplet reduction in percent.
    pub waste_pct: f64,
    /// Additional storage units the streaming plan needs (`q - qr`).
    pub storage_delta: i64,
}

/// Computes the improvement of `plan` over `baseline`.
pub fn improvement_over_baseline(plan: &StreamPlan, baseline: &RepeatedBaseline) -> Improvement {
    let pct = |new: f64, old: f64| if old > 0.0 { (old - new) / old * 100.0 } else { 0.0 };
    Improvement {
        time_pct: pct(plan.total_cycles as f64, baseline.total_cycles as f64),
        input_pct: pct(plan.total_inputs as f64, baseline.total_inputs as f64),
        waste_pct: pct(plan.total_waste as f64, baseline.total_waste as f64),
        storage_delta: plan.storage_peak as i64 - baseline.storage as i64,
    }
}

impl fmt::Display for Improvement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ΔTc={:.1}% ΔI={:.1}% ΔW={:.1}% Δq={:+}",
            self.time_pct, self.input_pct, self.waste_pct, self.storage_delta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, StreamingEngine};
    use dmf_mixalgo::BaseAlgorithm;

    #[test]
    fn streaming_beats_repeated_mm_on_pcr() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 32).unwrap();
        let baseline = repeated(BaseAlgorithm::MinMix, &target, 32, plan.mixers).unwrap();
        let imp = improvement_over_baseline(&plan, &baseline);
        // The paper reports ~72% time and ~75% reactant savings on average;
        // on the PCR mix the shape must clearly hold.
        assert!(imp.time_pct > 50.0, "ΔTc = {:.1}%", imp.time_pct);
        assert!(imp.input_pct > 50.0, "ΔI = {:.1}%", imp.input_pct);
        assert!(imp.waste_pct > 90.0, "ΔW = {:.1}%", imp.waste_pct);
        // The price is extra storage.
        assert!(imp.storage_delta >= 0);
    }

    #[test]
    fn repeated_baselines_rank_by_tree_waste() {
        // Ex.4 forces RMA's halving to fragment components, so RRMA spends
        // strictly more reactant than RMM (on the d=4 PCR mix they tie).
        let target = TargetRatio::new(vec![9, 17, 26, 9, 195]).unwrap();
        let rmm = repeated(BaseAlgorithm::MinMix, &target, 32, 3).unwrap();
        let rrma = repeated(BaseAlgorithm::Rma, &target, 32, 3).unwrap();
        assert!(rrma.total_inputs > rmm.total_inputs);
    }
}
