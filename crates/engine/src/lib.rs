//! The demand-driven droplet-streaming engine — the DAC 2014 paper's
//! mixture-preparation engine for MDST ("multiple droplets of a single
//! target").
//!
//! Given a target ratio, a demand `D`, a base mixing algorithm and a
//! scheduler, [`StreamingEngine::plan`] produces a [`StreamPlan`]: one or
//! more *passes*, each a mixing forest scheduled onto `Mc` on-chip mixers,
//! with droplet-exact accounting of completion time `Tc`, storage units
//! `q`, reactant usage `I`/`I[]` and waste `W`. When an on-chip storage
//! budget `q'` is given, the engine splits the demand into the fewest
//! passes whose schedules each fit the budget — the multi-pass streaming
//! technique of the paper's §6 (Table 4).
//!
//! [`realize_pass`] then lowers a pass onto a concrete
//! [`dmf_chip::ChipSpec`]: reservoir dispenses, A*-routed droplet
//! transports, storage cell allocation, mix-splits, waste disposal and
//! target emission — a [`dmf_sim::ChipProgram`] that the strict simulator
//! executes while counting electrode actuations (the paper's Fig. 5
//! reliability comparison).
//!
//! # Examples
//!
//! ```
//! use dmf_engine::{EngineConfig, StreamingEngine};
//! use dmf_ratio::TargetRatio;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
//! let engine = StreamingEngine::new(EngineConfig::default());
//! let plan = engine.plan(&target, 20)?;
//! assert_eq!(plan.passes.len(), 1);
//! assert_eq!(plan.total_inputs, 25); // paper Fig. 2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
mod check;
mod compare;
mod config;
mod error;
pub mod pipeline;
mod plan;
mod realize;
mod recovery;

pub use batch::{plan_batch, BatchOptions, PlanRequest};
pub use cache::{
    default_shard_count, CacheStats, PlanCache, PlanKey, DEFAULT_PLAN_CACHE_CAPACITY,
    MAX_PLAN_CACHE_SHARDS,
};
pub use check::static_check;
pub use compare::{improvement_over_baseline, repeated, Improvement};
pub use config::{EngineConfig, MixerBudget};
pub use error::EngineError;
pub use pipeline::{
    BuildForest, BuildTree, MetaStage, Pipeline, PlanContext, Schedule, SplitPasses, Stage,
};
pub use plan::{PassPlan, StreamPlan, StreamingEngine};
pub use realize::realize_pass;
pub use recovery::{RecoveryPlan, RecoveryPolicy};
