//! Content-addressed plan cache: sharded, bounded, LRU-evicting.
//!
//! A streaming plan is a pure function of its inputs — the target CF
//! vector, the demand `D`, the base algorithm, the scheduler, the mixer
//! budget `Mc`, the storage budget `q'` and the reuse policy (the mixing
//! -graph literature models graph construction as a pure function of the
//! target ratio). [`PlanKey`] captures exactly that tuple, so two requests
//! with equal keys are guaranteed to produce byte-identical plans and the
//! second one never needs to plan at all.
//!
//! The cache stores plans behind [`Arc`], so a hit is a pointer clone:
//! callers that keep the `Arc` (see
//! [`crate::StreamingEngine::plan_shared`]) can even observe hits by
//! [`Arc::ptr_eq`]. The store is **bounded**: it holds at most
//! [`PlanCache::capacity`] plans and evicts the least-recently-used entry
//! when a store would exceed it, so a long-lived process (the
//! `dmfstream serve` worker pool, a batch daemon) has a hard memory
//! ceiling instead of the unbounded growth the original `HashMap` had.
//!
//! # Sharding and the read-mostly hit path
//!
//! The cache is split into [`PlanCache::shard_count`] independent shards,
//! selected by `PlanKey::fingerprint() % shards` — the same stable FNV-1a
//! digest that names plans on disk. Each shard owns its slice of the
//! capacity (the first `capacity % shards` shards hold one extra slot)
//! behind its own `RwLock`, so concurrent requests for different keys
//! contend only when they land on the same shard. A **hit never takes a
//! write lock**: recency is a per-entry relaxed atomic stamp bumped under
//! the shard's *read* lock (a deferred touch), and hit/miss/eviction
//! totals are per-shard relaxed atomics. Only a store — which must be
//! able to evict — takes the shard's write lock, and eviction picks the
//! entry with the smallest stamp, preserving LRU semantics per shard.
//!
//! [`CacheStats`] aggregates the shards; `cache.hits` / `cache.misses` /
//! `cache.evictions` are exported through `dmf-obs` whenever the global
//! recorder is enabled.

use crate::{EngineConfig, StreamPlan};
use dmf_hash::{Fnv64, FnvBuildHasher};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default [`PlanCache`] capacity (plans, not bytes). Generous for every
/// workload in this repository while still bounding a long-lived process.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

/// Upper bound on the shard count: beyond this, extra shards only cost
/// memory — lock contention is already negligible.
pub const MAX_PLAN_CACHE_SHARDS: usize = 64;

/// The default shard count for new caches: the machine's available
/// parallelism, clamped to `1..=`[`MAX_PLAN_CACHE_SHARDS`]. One shard per
/// hardware thread is enough for stores to (almost) never contend.
#[must_use]
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .clamp(1, MAX_PLAN_CACHE_SHARDS)
}

/// The content address of a plan: every input [`crate::StreamingEngine`]
/// folds into its output.
///
/// Equal keys imply byte-identical plans; the [`PlanKey::fingerprint`]
/// digest is stable across processes (unseeded FNV-1a), so it can name
/// plan artifacts on disk or across runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    config: EngineConfig,
    accuracy: u32,
    parts: Vec<u64>,
    demand: u64,
}

impl PlanKey {
    /// The content address of planning `demand` droplets of `target`
    /// under `config`.
    pub fn new(config: &EngineConfig, target: &dmf_ratio::TargetRatio, demand: u64) -> Self {
        PlanKey {
            config: *config,
            accuracy: target.accuracy(),
            parts: target.parts().to_vec(),
            demand,
        }
    }

    /// A stable 64-bit FNV-1a digest of this key — identical across
    /// processes and runs for equal keys. Doubles as the shard selector
    /// (see [`PlanCache::shard_index`]).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Cumulative counters of one [`PlanCache`]'s behaviour, aggregated over
/// every shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cached plans right now.
    pub len: usize,
    /// Maximum plans the cache will hold.
    pub capacity: usize,
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Plans evicted to stay within the capacity.
    pub evictions: u64,
}

/// One cached plan plus its recency stamp. The stamp is atomic so a hit
/// can refresh it under the shard's *read* lock (deferred touch); larger
/// stamp = more recently used. Stamps are unique within a shard (they
/// come off the shard's monotonic clock), so eviction order is total.
#[derive(Debug)]
struct Entry {
    plan: Arc<StreamPlan>,
    stamp: AtomicU64,
}

/// One independently locked slice of the cache.
#[derive(Debug)]
struct Shard {
    /// Plans this shard may hold (always ≥ 1).
    capacity: usize,
    /// Monotonic recency clock; bumped on every hit and store.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    map: RwLock<HashMap<PlanKey, Entry, FnvBuildHasher>>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            map: RwLock::new(HashMap::default()),
        }
    }

    // A poisoned lock only means another worker panicked mid-operation;
    // the map itself is never left half-written (inserts and removals are
    // atomic at this level), so recover the guard instead of propagating.
    fn read(&self) -> RwLockReadGuard<'_, HashMap<PlanKey, Entry, FnvBuildHasher>> {
        self.map.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<PlanKey, Entry, FnvBuildHasher>> {
        self.map.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn next_stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// A thread-safe, content-addressed, **bounded** store of finished plans,
/// sharded for parallel access (see the module docs).
///
/// Clone-free on hits (plans are handed out as [`Arc`]); safe to share
/// across the [`crate::plan_batch`] worker pool and the `dmfstream serve`
/// request threads. Each shard's map uses the deterministic FNV hasher,
/// so cache behavior does not depend on process-seeded hash state. When a
/// store would push a shard past its slice of the capacity, that shard's
/// least-recently-used plan is dropped and counted in
/// [`CacheStats::evictions`] (and the `cache.evictions` dmf-obs counter).
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    shards: Box<[Shard]>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// An empty cache with the default capacity
    /// ([`DEFAULT_PLAN_CACHE_CAPACITY`]) and the default shard count
    /// ([`default_shard_count`]).
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// An empty cache holding at most `capacity` plans across
    /// [`default_shard_count`] shards. A capacity of zero is clamped to
    /// one (a cache that cannot hold anything would turn every warm
    /// lookup into a replan, silently).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache::with_capacity_and_shards(capacity, default_shard_count())
    }

    /// An empty cache holding at most `capacity` plans across `shards`
    /// independently locked shards.
    ///
    /// The shard count is clamped to `1..=`[`MAX_PLAN_CACHE_SHARDS`] and
    /// never exceeds the capacity, so every shard holds at least one
    /// plan. The capacity is divided evenly; the remainder policy gives
    /// the first `capacity % shards` shards one extra slot, so the
    /// per-shard capacities always sum to exactly `capacity`.
    #[must_use]
    pub fn with_capacity_and_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let count = shards.clamp(1, MAX_PLAN_CACHE_SHARDS).min(capacity);
        let base = capacity / count;
        let extra = capacity % count;
        let shards: Box<[Shard]> =
            (0..count).map(|i| Shard::new(base + usize::from(i < extra))).collect();
        PlanCache { capacity, shards }
    }

    /// An empty default-capacity cache ready to share across engines and
    /// worker threads.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(PlanCache::new())
    }

    /// An empty bounded cache ready to share across engines and worker
    /// threads.
    #[must_use]
    pub fn shared_with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(PlanCache::with_capacity(capacity))
    }

    /// An empty bounded cache with an explicit shard count (see
    /// [`PlanCache::with_capacity_and_shards`]), ready to share.
    #[must_use]
    pub fn shared_with_capacity_and_shards(capacity: usize, shards: usize) -> Arc<Self> {
        Arc::new(PlanCache::with_capacity_and_shards(capacity, shards))
    }

    /// Maximum number of plans this cache will hold, over all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard capacities, in shard order. They sum to
    /// [`PlanCache::capacity`]; the first `capacity % shards` entries are
    /// one larger than the rest (the remainder policy).
    pub fn shard_capacities(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.capacity).collect()
    }

    /// The shard `key` lives on: `fingerprint() % shard_count`. Stable
    /// across processes (the fingerprint is unseeded FNV-1a), so a key's
    /// shard assignment is reproducible.
    pub fn shard_index(&self, key: &PlanKey) -> usize {
        (key.fingerprint() % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: &PlanKey) -> &Shard {
        &self.shards[self.shard_index(key)]
    }

    /// Looks `key` up, counting `cache.hits` / `cache.misses`. A hit also
    /// marks the entry most recently used — without taking a write lock:
    /// the recency stamp is a relaxed atomic refreshed under the shard's
    /// read lock, so concurrent hits on one shard proceed in parallel.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<StreamPlan>> {
        let shard = self.shard(key);
        let found = {
            let map = shard.read();
            map.get(key).map(|entry| {
                entry.stamp.store(shard.next_stamp(), Ordering::Relaxed);
                Arc::clone(&entry.plan)
            })
        };
        if found.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        }
        let obs = dmf_obs::global();
        if obs.is_enabled() {
            obs.count(if found.is_some() { "cache.hits" } else { "cache.misses" }, 1);
        }
        found
    }

    /// Stores a finished plan under `key`, evicting the shard's
    /// least-recently-used entries while the shard is over its slice of
    /// the capacity. Concurrent writers may race on the same key; both
    /// plans are byte-identical by construction, so either insert is
    /// correct.
    pub fn store(&self, key: PlanKey, plan: Arc<StreamPlan>) {
        let shard = self.shard(&key);
        let stamp = shard.next_stamp();
        let evicted = {
            let mut map = shard.write();
            if let Some(entry) = map.get_mut(&key) {
                // Refresh in place — a single entry-based update:
                // byte-identical by construction, so only the plan slot
                // and the recency stamp change.
                entry.plan = plan;
                entry.stamp.store(stamp, Ordering::Relaxed);
                0
            } else {
                map.insert(key, Entry { plan, stamp: AtomicU64::new(stamp) });
                let mut evicted = 0u64;
                while map.len() > shard.capacity {
                    // Smallest stamp = least recently used. Stamps only
                    // move under this shard's locks, and we hold the
                    // write lock, so the scan is race-free; stamps are
                    // unique, so the victim is unambiguous.
                    let victim = map
                        .iter()
                        .min_by_key(|(_, entry)| entry.stamp.load(Ordering::Relaxed))
                        .map(|(k, _)| k.clone());
                    let Some(victim) = victim else { break };
                    map.remove(&victim);
                    evicted += 1;
                }
                shard.evictions.fetch_add(evicted, Ordering::Relaxed);
                evicted
            }
        };
        if evicted > 0 {
            let obs = dmf_obs::global();
            if obs.is_enabled() {
                obs.count("cache.evictions", evicted);
            }
        }
    }

    /// Number of cached plans, over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Cumulative hit/miss/eviction counters plus the current occupancy,
    /// aggregated across shards.
    ///
    /// The snapshot is consistent enough for capacity accounting: each
    /// shard's length is read under its lock (a store holds the write
    /// lock through its eviction loop, so an over-capacity shard is never
    /// observable), which makes `len <= capacity` an invariant of the
    /// reported stats — asserted here.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats { capacity: self.capacity, ..CacheStats::default() };
        for shard in self.shards.iter() {
            let len = shard.read().len();
            debug_assert!(len <= shard.capacity, "shard over capacity: {len} > {}", shard.capacity);
            stats.len += len;
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            stats.evictions += shard.evictions.load(Ordering::Relaxed);
        }
        assert!(
            stats.len <= stats.capacity,
            "cache stats invariant violated: len {} > capacity {}",
            stats.len,
            stats.capacity
        );
        stats
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, StreamingEngine};
    use dmf_ratio::TargetRatio;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    fn plan_arc(demand: u64) -> Arc<StreamPlan> {
        Arc::new(StreamingEngine::new(EngineConfig::default()).plan(&pcr_d4(), demand).unwrap())
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let config = EngineConfig::default();
        let a = PlanKey::new(&config, &pcr_d4(), 20);
        let b = PlanKey::new(&config, &pcr_d4(), 20);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Every component of the tuple must perturb the address.
        assert_ne!(a.fingerprint(), PlanKey::new(&config, &pcr_d4(), 22).fingerprint());
        let mms = config.with_scheduler(dmf_sched::SchedulerKind::Mms);
        assert_ne!(a.fingerprint(), PlanKey::new(&mms, &pcr_d4(), 20).fingerprint());
        let limited = config.with_storage_limit(5);
        assert_ne!(a.fingerprint(), PlanKey::new(&limited, &pcr_d4(), 20).fingerprint());
        let other = TargetRatio::new(vec![1, 1, 1, 1, 1, 1, 10]).unwrap();
        assert_ne!(a.fingerprint(), PlanKey::new(&config, &other, 20).fingerprint());
    }

    #[test]
    fn lookup_store_round_trip() {
        let cache = PlanCache::new();
        assert_eq!(cache.capacity(), DEFAULT_PLAN_CACHE_CAPACITY);
        let config = EngineConfig::default();
        let key = PlanKey::new(&config, &pcr_d4(), 20);
        assert!(cache.lookup(&key).is_none());
        let plan = plan_arc(20);
        cache.store(key.clone(), Arc::clone(&plan));
        let hit = cache.lookup(&key).unwrap();
        assert!(Arc::ptr_eq(&hit, &plan));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bounds_the_cache_under_churn() {
        // One shard: the exact global-LRU expectations below require a
        // single recency domain.
        let cache = PlanCache::with_capacity_and_shards(4, 1);
        let config = EngineConfig::default();
        let plan = plan_arc(2);
        for demand in 1..=100u64 {
            cache.store(PlanKey::new(&config, &pcr_d4(), demand), Arc::clone(&plan));
            assert!(cache.len() <= 4, "cache exceeded its capacity");
        }
        let stats = cache.stats();
        assert_eq!(stats.len, 4);
        assert_eq!(stats.evictions, 96);
        // The survivors are exactly the four most recent keys.
        for demand in 97..=100u64 {
            assert!(cache.lookup(&PlanKey::new(&config, &pcr_d4(), demand)).is_some());
        }
        assert!(cache.lookup(&PlanKey::new(&config, &pcr_d4(), 96)).is_none());
    }

    #[test]
    fn sharded_churn_is_bounded_with_exact_eviction_accounting() {
        // Whatever the key → shard spread, distinct-key stores obey
        // `evictions == stores - len` and the bound holds per shard.
        let cache = PlanCache::with_capacity_and_shards(4, 4);
        let config = EngineConfig::default();
        let plan = plan_arc(2);
        for demand in 1..=100u64 {
            cache.store(PlanKey::new(&config, &pcr_d4(), demand), Arc::clone(&plan));
            assert!(cache.len() <= 4, "cache exceeded its capacity");
        }
        let stats = cache.stats();
        assert!(stats.len <= 4);
        assert_eq!(stats.evictions, 100 - stats.len as u64);
    }

    #[test]
    fn lru_eviction_respects_lookup_recency() {
        // One shard, so all three keys compete for the same two slots.
        let cache = PlanCache::with_capacity_and_shards(2, 1);
        let config = EngineConfig::default();
        let key_a = PlanKey::new(&config, &pcr_d4(), 2);
        let key_b = PlanKey::new(&config, &pcr_d4(), 4);
        let key_c = PlanKey::new(&config, &pcr_d4(), 6);
        let plan = plan_arc(2);
        cache.store(key_a.clone(), Arc::clone(&plan));
        cache.store(key_b.clone(), Arc::clone(&plan));
        // Touch A so B becomes the least recently used…
        assert!(cache.lookup(&key_a).is_some());
        cache.store(key_c.clone(), Arc::clone(&plan));
        // …and is therefore the entry C evicted.
        assert!(cache.lookup(&key_b).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(&key_a).is_some());
        assert!(cache.lookup(&key_c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn storing_an_existing_key_does_not_evict() {
        let cache = PlanCache::with_capacity_and_shards(2, 1);
        let config = EngineConfig::default();
        let key_a = PlanKey::new(&config, &pcr_d4(), 2);
        let key_b = PlanKey::new(&config, &pcr_d4(), 4);
        let plan = plan_arc(2);
        cache.store(key_a.clone(), Arc::clone(&plan));
        cache.store(key_b, Arc::clone(&plan));
        cache.store(key_a, plan);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = PlanCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.shard_count(), 1);
        let config = EngineConfig::default();
        let plan = plan_arc(2);
        cache.store(PlanKey::new(&config, &pcr_d4(), 2), Arc::clone(&plan));
        cache.store(PlanKey::new(&config, &pcr_d4(), 4), plan);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_divides_across_shards_with_remainder_policy() {
        let cache = PlanCache::with_capacity_and_shards(10, 4);
        assert_eq!(cache.shard_count(), 4);
        assert_eq!(cache.capacity(), 10);
        assert_eq!(cache.shard_capacities(), vec![3, 3, 2, 2]);
        let even = PlanCache::with_capacity_and_shards(8, 4);
        assert_eq!(even.shard_capacities(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn shard_count_clamps_to_capacity_so_every_shard_holds_a_plan() {
        let cache = PlanCache::with_capacity_and_shards(2, 8);
        assert_eq!(cache.shard_count(), 2);
        assert_eq!(cache.shard_capacities(), vec![1, 1]);
        assert_eq!(PlanCache::with_capacity_and_shards(1024, 0).shard_count(), 1);
        assert_eq!(
            PlanCache::with_capacity_and_shards(1 << 20, 1 << 20).shard_count(),
            MAX_PLAN_CACHE_SHARDS
        );
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let cache = PlanCache::with_capacity_and_shards(16, 4);
        let config = EngineConfig::default();
        for demand in 1..=32u64 {
            let key = PlanKey::new(&config, &pcr_d4(), demand);
            let idx = cache.shard_index(&key);
            assert!(idx < cache.shard_count());
            assert_eq!(idx, cache.shard_index(&key), "shard assignment must be stable");
            assert_eq!(idx, (key.fingerprint() % 4) as usize);
        }
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let cache = PlanCache::with_capacity_and_shards(16, 4);
        let config = EngineConfig::default();
        let plan = plan_arc(2);
        let keys: Vec<PlanKey> =
            (1..=8u64).map(|demand| PlanKey::new(&config, &pcr_d4(), demand)).collect();
        for key in &keys {
            assert!(cache.lookup(key).is_none()); // 8 misses
            cache.store(key.clone(), Arc::clone(&plan));
        }
        for key in &keys {
            assert!(cache.lookup(key).is_some()); // 8 hits
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (8, 8, 0));
        assert_eq!(stats.len, 8);
        assert!(stats.len <= stats.capacity);
    }
}
