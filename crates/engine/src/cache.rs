//! Content-addressed plan cache with a bounded LRU eviction policy.
//!
//! A streaming plan is a pure function of its inputs — the target CF
//! vector, the demand `D`, the base algorithm, the scheduler, the mixer
//! budget `Mc`, the storage budget `q'` and the reuse policy (the mixing
//! -graph literature models graph construction as a pure function of the
//! target ratio). [`PlanKey`] captures exactly that tuple, so two requests
//! with equal keys are guaranteed to produce byte-identical plans and the
//! second one never needs to plan at all.
//!
//! The cache stores plans behind [`Arc`], so a hit is a pointer clone:
//! callers that keep the `Arc` (see
//! [`crate::StreamingEngine::plan_shared`]) can even observe hits by
//! [`Arc::ptr_eq`]. The store is **bounded**: it holds at most
//! [`PlanCache::capacity`] plans and evicts the least-recently-used entry
//! when a store would exceed it, so a long-lived process (the
//! `dmfstream serve` worker pool, a batch daemon) has a hard memory
//! ceiling instead of the unbounded growth the original `HashMap` had.
//! Hit/miss/eviction totals are kept in [`CacheStats`] and exported
//! through `dmf-obs` as the `cache.hits` / `cache.misses` /
//! `cache.evictions` counters whenever the global recorder is enabled.

use crate::{EngineConfig, StreamPlan};
use dmf_hash::{Fnv64, FnvBuildHasher};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, PoisonError};

/// Default [`PlanCache`] capacity (plans, not bytes). Generous for every
/// workload in this repository while still bounding a long-lived process.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

/// The content address of a plan: every input [`crate::StreamingEngine`]
/// folds into its output.
///
/// Equal keys imply byte-identical plans; the [`PlanKey::fingerprint`]
/// digest is stable across processes (unseeded FNV-1a), so it can name
/// plan artifacts on disk or across runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    config: EngineConfig,
    accuracy: u32,
    parts: Vec<u64>,
    demand: u64,
}

impl PlanKey {
    /// The content address of planning `demand` droplets of `target`
    /// under `config`.
    pub fn new(config: &EngineConfig, target: &dmf_ratio::TargetRatio, demand: u64) -> Self {
        PlanKey {
            config: *config,
            accuracy: target.accuracy(),
            parts: target.parts().to_vec(),
            demand,
        }
    }

    /// A stable 64-bit FNV-1a digest of this key — identical across
    /// processes and runs for equal keys.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Cumulative counters of one [`PlanCache`]'s behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cached plans right now.
    pub len: usize,
    /// Maximum plans the cache will hold.
    pub capacity: usize,
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Plans evicted to stay within the capacity.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct LruInner {
    /// Key → (plan, recency stamp). The stamp indexes into `order`.
    map: HashMap<PlanKey, (Arc<StreamPlan>, u64), FnvBuildHasher>,
    /// Recency stamp → key; the first entry is the least recently used.
    order: BTreeMap<u64, PlanKey>,
    /// Monotonic recency clock (bumped on every lookup hit and store).
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruInner {
    /// Moves `key` (already present) to the most-recently-used position.
    fn touch(&mut self, key: &PlanKey) {
        if let Some((_, stamp)) = self.map.get(key) {
            let old = *stamp;
            self.order.remove(&old);
            self.tick += 1;
            let fresh = self.tick;
            self.order.insert(fresh, key.clone());
            if let Some((_, stamp)) = self.map.get_mut(key) {
                *stamp = fresh;
            }
        }
    }
}

/// A thread-safe, content-addressed, **bounded** store of finished plans.
///
/// Clone-free on hits (plans are handed out as [`Arc`]); safe to share
/// across the [`crate::plan_batch`] worker pool and the `dmfstream serve`
/// request threads. The map itself uses the deterministic FNV hasher, so
/// cache behavior does not depend on process-seeded hash state. When a
/// store would push the cache past its capacity, the least-recently-used
/// plan is dropped and counted in [`CacheStats::evictions`] (and the
/// `cache.evictions` dmf-obs counter).
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<LruInner>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// An empty cache with the default capacity
    /// ([`DEFAULT_PLAN_CACHE_CAPACITY`]).
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// An empty cache holding at most `capacity` plans. A capacity of zero
    /// is clamped to one (a cache that cannot hold anything would turn
    /// every warm lookup into a replan, silently).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache { capacity: capacity.max(1), inner: Mutex::new(LruInner::default()) }
    }

    /// An empty default-capacity cache ready to share across engines and
    /// worker threads.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(PlanCache::new())
    }

    /// An empty bounded cache ready to share across engines and worker
    /// threads.
    #[must_use]
    pub fn shared_with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(PlanCache::with_capacity(capacity))
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, LruInner> {
        // A poisoned lock only means another worker panicked mid-insert;
        // the map itself is never left half-written (inserts are atomic at
        // this level), so recover the guard instead of propagating.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Maximum number of plans this cache will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up, counting `cache.hits` / `cache.misses`. A hit also
    /// marks the entry most recently used.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<StreamPlan>> {
        let found = {
            let mut inner = self.inner();
            let found = inner.map.get(key).map(|(plan, _)| Arc::clone(plan));
            if found.is_some() {
                inner.hits += 1;
                inner.touch(key);
            } else {
                inner.misses += 1;
            }
            found
        };
        let obs = dmf_obs::global();
        if obs.is_enabled() {
            obs.count(if found.is_some() { "cache.hits" } else { "cache.misses" }, 1);
        }
        found
    }

    /// Stores a finished plan under `key`, evicting the least-recently-used
    /// entry if the cache is full. Concurrent writers may race on the same
    /// key; both plans are byte-identical by construction, so either insert
    /// is correct.
    pub fn store(&self, key: PlanKey, plan: Arc<StreamPlan>) {
        let evicted = {
            let mut inner = self.inner();
            if inner.map.contains_key(&key) {
                // Refresh in place: byte-identical by construction, so only
                // the recency changes.
                inner.touch(&key);
                if let Some((slot, _)) = inner.map.get_mut(&key) {
                    *slot = plan;
                }
                0
            } else {
                inner.tick += 1;
                let stamp = inner.tick;
                inner.order.insert(stamp, key.clone());
                inner.map.insert(key, (plan, stamp));
                let mut evicted = 0u64;
                while inner.map.len() > self.capacity {
                    let Some((&oldest, _)) = inner.order.iter().next() else { break };
                    if let Some(victim) = inner.order.remove(&oldest) {
                        inner.map.remove(&victim);
                        evicted += 1;
                    }
                }
                inner.evictions += evicted;
                evicted
            }
        };
        if evicted > 0 {
            let obs = dmf_obs::global();
            if obs.is_enabled() {
                obs.count("cache.evictions", evicted);
            }
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner().map.is_empty()
    }

    /// Cumulative hit/miss/eviction counters plus the current occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner();
        CacheStats {
            len: inner.map.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner();
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, StreamingEngine};
    use dmf_ratio::TargetRatio;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    fn plan_arc(demand: u64) -> Arc<StreamPlan> {
        Arc::new(StreamingEngine::new(EngineConfig::default()).plan(&pcr_d4(), demand).unwrap())
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let config = EngineConfig::default();
        let a = PlanKey::new(&config, &pcr_d4(), 20);
        let b = PlanKey::new(&config, &pcr_d4(), 20);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Every component of the tuple must perturb the address.
        assert_ne!(a.fingerprint(), PlanKey::new(&config, &pcr_d4(), 22).fingerprint());
        let mms = config.with_scheduler(dmf_sched::SchedulerKind::Mms);
        assert_ne!(a.fingerprint(), PlanKey::new(&mms, &pcr_d4(), 20).fingerprint());
        let limited = config.with_storage_limit(5);
        assert_ne!(a.fingerprint(), PlanKey::new(&limited, &pcr_d4(), 20).fingerprint());
        let other = TargetRatio::new(vec![1, 1, 1, 1, 1, 1, 10]).unwrap();
        assert_ne!(a.fingerprint(), PlanKey::new(&config, &other, 20).fingerprint());
    }

    #[test]
    fn lookup_store_round_trip() {
        let cache = PlanCache::new();
        assert_eq!(cache.capacity(), DEFAULT_PLAN_CACHE_CAPACITY);
        let config = EngineConfig::default();
        let key = PlanKey::new(&config, &pcr_d4(), 20);
        assert!(cache.lookup(&key).is_none());
        let plan = plan_arc(20);
        cache.store(key.clone(), Arc::clone(&plan));
        let hit = cache.lookup(&key).unwrap();
        assert!(Arc::ptr_eq(&hit, &plan));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bounds_the_cache_under_churn() {
        let cache = PlanCache::with_capacity(4);
        let config = EngineConfig::default();
        let plan = plan_arc(2);
        for demand in 1..=100u64 {
            cache.store(PlanKey::new(&config, &pcr_d4(), demand), Arc::clone(&plan));
            assert!(cache.len() <= 4, "cache exceeded its capacity");
        }
        let stats = cache.stats();
        assert_eq!(stats.len, 4);
        assert_eq!(stats.evictions, 96);
        // The survivors are exactly the four most recent keys.
        for demand in 97..=100u64 {
            assert!(cache.lookup(&PlanKey::new(&config, &pcr_d4(), demand)).is_some());
        }
        assert!(cache.lookup(&PlanKey::new(&config, &pcr_d4(), 96)).is_none());
    }

    #[test]
    fn lru_eviction_respects_lookup_recency() {
        let cache = PlanCache::with_capacity(2);
        let config = EngineConfig::default();
        let key_a = PlanKey::new(&config, &pcr_d4(), 2);
        let key_b = PlanKey::new(&config, &pcr_d4(), 4);
        let key_c = PlanKey::new(&config, &pcr_d4(), 6);
        let plan = plan_arc(2);
        cache.store(key_a.clone(), Arc::clone(&plan));
        cache.store(key_b.clone(), Arc::clone(&plan));
        // Touch A so B becomes the least recently used…
        assert!(cache.lookup(&key_a).is_some());
        cache.store(key_c.clone(), Arc::clone(&plan));
        // …and is therefore the entry C evicted.
        assert!(cache.lookup(&key_b).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(&key_a).is_some());
        assert!(cache.lookup(&key_c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn storing_an_existing_key_does_not_evict() {
        let cache = PlanCache::with_capacity(2);
        let config = EngineConfig::default();
        let key_a = PlanKey::new(&config, &pcr_d4(), 2);
        let key_b = PlanKey::new(&config, &pcr_d4(), 4);
        let plan = plan_arc(2);
        cache.store(key_a.clone(), Arc::clone(&plan));
        cache.store(key_b, Arc::clone(&plan));
        cache.store(key_a, plan);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = PlanCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        let config = EngineConfig::default();
        let plan = plan_arc(2);
        cache.store(PlanKey::new(&config, &pcr_d4(), 2), Arc::clone(&plan));
        cache.store(PlanKey::new(&config, &pcr_d4(), 4), plan);
        assert_eq!(cache.len(), 1);
    }
}
