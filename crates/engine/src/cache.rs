//! Content-addressed plan cache.
//!
//! A streaming plan is a pure function of its inputs — the target CF
//! vector, the demand `D`, the base algorithm, the scheduler, the mixer
//! budget `Mc`, the storage budget `q'` and the reuse policy (the mixing
//! -graph literature models graph construction as a pure function of the
//! target ratio). [`PlanKey`] captures exactly that tuple, so two requests
//! with equal keys are guaranteed to produce byte-identical plans and the
//! second one never needs to plan at all.
//!
//! The cache stores plans behind [`Arc`], so a hit is a pointer clone:
//! callers that keep the `Arc` (see
//! [`crate::StreamingEngine::plan_shared`]) can even observe hits by
//! [`Arc::ptr_eq`]. Hit/miss totals are exported through `dmf-obs` as the
//! `cache.hits` / `cache.misses` counters whenever the global recorder is
//! enabled.

use crate::{EngineConfig, StreamPlan};
use dmf_hash::{Fnv64, FnvBuildHasher};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, PoisonError};

/// The content address of a plan: every input [`crate::StreamingEngine`]
/// folds into its output.
///
/// Equal keys imply byte-identical plans; the [`PlanKey::fingerprint`]
/// digest is stable across processes (unseeded FNV-1a), so it can name
/// plan artifacts on disk or across runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    config: EngineConfig,
    accuracy: u32,
    parts: Vec<u64>,
    demand: u64,
}

impl PlanKey {
    /// The content address of planning `demand` droplets of `target`
    /// under `config`.
    pub fn new(config: &EngineConfig, target: &dmf_ratio::TargetRatio, demand: u64) -> Self {
        PlanKey {
            config: *config,
            accuracy: target.accuracy(),
            parts: target.parts().to_vec(),
            demand,
        }
    }

    /// A stable 64-bit FNV-1a digest of this key — identical across
    /// processes and runs for equal keys.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// A thread-safe, content-addressed store of finished plans.
///
/// Clone-free on hits (plans are handed out as [`Arc`]); safe to share
/// across the [`crate::plan_batch`] worker pool. The map itself uses the
/// deterministic FNV hasher, so cache behavior does not depend on
/// process-seeded hash state.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<StreamPlan>, FnvBuildHasher>>,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// An empty cache ready to share across engines and worker threads.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(PlanCache::new())
    }

    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<PlanKey, Arc<StreamPlan>, FnvBuildHasher>> {
        // A poisoned lock only means another worker panicked mid-insert;
        // the map itself is never left half-written (inserts are atomic at
        // this level), so recover the guard instead of propagating.
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks `key` up, counting `cache.hits` / `cache.misses`.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<StreamPlan>> {
        let found = self.map().get(key).cloned();
        let obs = dmf_obs::global();
        if obs.is_enabled() {
            obs.count(if found.is_some() { "cache.hits" } else { "cache.misses" }, 1);
        }
        found
    }

    /// Stores a finished plan under `key`. Concurrent writers may race on
    /// the same key; both plans are byte-identical by construction, so
    /// either insert is correct.
    pub fn store(&self, key: PlanKey, plan: Arc<StreamPlan>) {
        self.map().insert(key, plan);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map().is_empty()
    }

    /// Drops every cached plan.
    pub fn clear(&self) {
        self.map().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, StreamingEngine};
    use dmf_ratio::TargetRatio;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let config = EngineConfig::default();
        let a = PlanKey::new(&config, &pcr_d4(), 20);
        let b = PlanKey::new(&config, &pcr_d4(), 20);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Every component of the tuple must perturb the address.
        assert_ne!(a.fingerprint(), PlanKey::new(&config, &pcr_d4(), 22).fingerprint());
        let mms = config.with_scheduler(dmf_sched::SchedulerKind::Mms);
        assert_ne!(a.fingerprint(), PlanKey::new(&mms, &pcr_d4(), 20).fingerprint());
        let limited = config.with_storage_limit(5);
        assert_ne!(a.fingerprint(), PlanKey::new(&limited, &pcr_d4(), 20).fingerprint());
        let other = TargetRatio::new(vec![1, 1, 1, 1, 1, 1, 10]).unwrap();
        assert_ne!(a.fingerprint(), PlanKey::new(&config, &other, 20).fingerprint());
    }

    #[test]
    fn lookup_store_round_trip() {
        let cache = PlanCache::new();
        let config = EngineConfig::default();
        let key = PlanKey::new(&config, &pcr_d4(), 20);
        assert!(cache.lookup(&key).is_none());
        let plan = Arc::new(StreamingEngine::new(config).plan(&pcr_d4(), 20).unwrap());
        cache.store(key.clone(), Arc::clone(&plan));
        let hit = cache.lookup(&key).unwrap();
        assert!(Arc::ptr_eq(&hit, &plan));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
