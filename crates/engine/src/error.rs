use dmf_chip::ChipError;
use dmf_forest::ForestError;
use dmf_mixalgo::MixAlgoError;
use dmf_sched::SchedError;
use dmf_sim::SimError;
use std::error::Error;
use std::fmt;

/// Error raised by the streaming engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A demand of zero droplets was requested.
    ZeroDemand,
    /// The request failed the mixability pre-pass
    /// ([`dmf_check::check_feasibility`]): no planning was attempted
    /// because no plan can exist.
    Infeasible {
        /// The violated feasibility rule (`FEAS001`/`FEAS002`).
        rule: dmf_check::RuleCode,
        /// Human-readable detail from the pre-pass diagnostic.
        what: String,
    },
    /// Even the smallest pass (demand 2) exceeds the storage budget.
    StorageInfeasible {
        /// The budget `q'`.
        limit: usize,
        /// Storage a demand-2 pass needs.
        needed: usize,
    },
    /// The chip has fewer storage cells than the pass requires.
    StorageExhausted {
        /// Storage cells on the chip.
        available: usize,
    },
    /// An algorithm name did not resolve against the
    /// [`dmf_mixalgo::MixingAlgorithmRegistry`].
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
        /// The registry keys at the time of the lookup.
        known: Vec<&'static str>,
    },
    /// Base-tree construction failed.
    Algo(MixAlgoError),
    /// Forest construction failed.
    Forest(ForestError),
    /// Scheduling failed.
    Sched(SchedError),
    /// Chip geometry is unusable for this plan.
    Chip(ChipError),
    /// Simulation of the realized program failed (indicates a compiler
    /// bug or an undersized chip).
    Sim(SimError),
    /// No route existed while realizing a transport.
    Unroutable {
        /// Human-readable description of the failing transport.
        what: String,
    },
    /// An internal invariant was violated — a bug in the engine itself
    /// (e.g. a pipeline stage ran out of order, or the pass compiler lost
    /// track of a droplet), surfaced as a typed error instead of a panic.
    Internal {
        /// Human-readable description of the violated invariant.
        what: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ZeroDemand => write!(f, "demand must be at least one droplet"),
            EngineError::Infeasible { rule, what } => {
                write!(f, "infeasible request ({rule}): {what}")
            }
            EngineError::StorageInfeasible { limit, needed } => {
                write!(f, "storage budget {limit} cannot fit even one pass (needs {needed})")
            }
            EngineError::StorageExhausted { available } => {
                write!(f, "chip has only {available} storage cells")
            }
            EngineError::UnknownAlgorithm { name, known } => {
                write!(f, "unknown mixing algorithm {:?} (registered: {})", name, known.join(", "))
            }
            EngineError::Algo(e) => write!(f, "base-tree construction failed: {e}"),
            EngineError::Forest(e) => write!(f, "forest construction failed: {e}"),
            EngineError::Sched(e) => write!(f, "scheduling failed: {e}"),
            EngineError::Chip(e) => write!(f, "chip error: {e}"),
            EngineError::Sim(e) => write!(f, "simulation failed: {e}"),
            EngineError::Unroutable { what } => write!(f, "unroutable transport: {what}"),
            EngineError::Internal { what } => {
                write!(f, "internal engine invariant violated (bug): {what}")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Algo(e) => Some(e),
            EngineError::Forest(e) => Some(e),
            EngineError::Sched(e) => Some(e),
            EngineError::Chip(e) => Some(e),
            EngineError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MixAlgoError> for EngineError {
    fn from(e: MixAlgoError) -> Self {
        EngineError::Algo(e)
    }
}

impl From<dmf_mixalgo::UnknownAlgorithmError> for EngineError {
    fn from(e: dmf_mixalgo::UnknownAlgorithmError) -> Self {
        EngineError::UnknownAlgorithm { name: e.name, known: e.known }
    }
}

impl From<ForestError> for EngineError {
    fn from(e: ForestError) -> Self {
        EngineError::Forest(e)
    }
}

impl From<SchedError> for EngineError {
    fn from(e: SchedError) -> Self {
        EngineError::Sched(e)
    }
}

impl From<ChipError> for EngineError {
    fn from(e: ChipError) -> Self {
        EngineError::Chip(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}
