//! Error recovery: re-synthesizing the lost part of a demand after a
//! detected fault.
//!
//! Recovery in this engine is *demand-level*: when a fault-injected run
//! loses droplets, the controller counts how many targets went unmet,
//! credits the salvaged survivors whose content already equals the
//! target mixture, and plans a fresh partial forest for only the
//! shortfall via [`StreamingEngine::plan`] — which is exactly the
//! forest crate's rebuild-with-pool machinery, now aimed at the lost
//! subtargets alone. Sub-target intermediates among the survivors are
//! flushed rather than re-entered: a free droplet cannot be grafted
//! into a volume-validated mix graph (see `DESIGN.md` §10).

use crate::{EngineError, StreamPlan, StreamingEngine};
use dmf_ratio::TargetRatio;

/// Retry/backoff policy for the recovery loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum re-synthesis attempts before the runner falls back to
    /// [`RecoveryPolicy::restart_on_exhaustion`] (or gives up).
    pub max_replans: u32,
    /// After exhausting `max_replans`, abort the queued passes once and
    /// restart planning for the remaining demand from scratch.
    pub restart_on_exhaustion: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_replans: 8, restart_on_exhaustion: true }
    }
}

impl RecoveryPolicy {
    /// Sets the re-synthesis budget.
    #[must_use]
    pub fn with_max_replans(mut self, max_replans: u32) -> Self {
        self.max_replans = max_replans;
        self
    }

    /// Enables or disables the abort-and-restart fallback.
    #[must_use]
    pub fn with_restart(mut self, restart: bool) -> Self {
        self.restart_on_exhaustion = restart;
        self
    }
}

/// The outcome of one recovery planning round.
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// Target droplets that went unmet before salvage.
    pub lost: u64,
    /// Survivors credited against the shortfall (content already equals
    /// the target mixture).
    pub salvaged: u64,
    /// The re-synthesized partial plan for the remaining shortfall
    /// (`None` when salvage covered everything).
    pub plan: Option<StreamPlan>,
}

impl RecoveryPlan {
    /// Droplets the re-synthesized plan must still produce.
    pub fn need(&self) -> u64 {
        self.plan.as_ref().map(|p| p.demand).unwrap_or(0)
    }
}

impl StreamingEngine {
    /// Plans recovery from a detected fault: credits `salvaged`
    /// target-grade survivors against `lost` unmet targets and
    /// re-synthesizes a partial forest for the rest.
    ///
    /// Counts `recovery.replans` and runs under the `recovery_plan` span
    /// when the global recorder is enabled. With span trees, the replan's
    /// `engine_plan` (and its pipeline stages) nests under `recovery_plan`,
    /// so profile reports attribute recovery overhead separately from
    /// first-attempt planning instead of folding both into one bucket.
    ///
    /// # Errors
    ///
    /// Propagates planning failures from [`StreamingEngine::plan`];
    /// `lost == 0` is not an error and yields an empty plan.
    pub fn plan_recovery(
        &self,
        target: &TargetRatio,
        lost: u64,
        salvaged: u64,
    ) -> Result<RecoveryPlan, EngineError> {
        let _span = dmf_obs::span!("recovery_plan");
        dmf_obs::global().count("recovery.replans", 1);
        let credited = salvaged.min(lost);
        let need = lost - credited;
        let plan = if need == 0 { None } else { Some(self.plan(target, need)?) };
        Ok(RecoveryPlan { lost, salvaged: credited, plan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    #[test]
    fn salvage_covers_everything() {
        let engine = StreamingEngine::new(EngineConfig::default());
        let r = engine.plan_recovery(&pcr_d4(), 3, 5).unwrap();
        assert_eq!(r.lost, 3);
        assert_eq!(r.salvaged, 3);
        assert!(r.plan.is_none());
        assert_eq!(r.need(), 0);
    }

    #[test]
    fn shortfall_is_replanned() {
        let engine = StreamingEngine::new(EngineConfig::default());
        let r = engine.plan_recovery(&pcr_d4(), 4, 1).unwrap();
        assert_eq!(r.salvaged, 1);
        assert_eq!(r.need(), 3);
        let plan = r.plan.expect("shortfall needs a plan");
        assert_eq!(plan.demand, 3);
        // The partial plan emits at least the shortfall (forests come in
        // pairs of targets per tree).
        let emitted: u64 = plan.passes.iter().map(|p| p.demand.div_ceil(2) * 2).sum();
        assert!(emitted >= 3);
    }

    #[test]
    fn nothing_lost_plans_nothing() {
        let engine = StreamingEngine::new(EngineConfig::default());
        let r = engine.plan_recovery(&pcr_d4(), 0, 0).unwrap();
        assert!(r.plan.is_none());
    }
}
