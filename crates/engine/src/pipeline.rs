//! The staged planning pipeline: `BuildTree → BuildForest → Schedule →
//! SplitPasses`, as uniform [`Stage`] implementors driven by a
//! [`Pipeline`] runner.
//!
//! [`crate::StreamingEngine::plan`] is a thin facade over
//! [`Pipeline::standard`]. Every stage implements the [`Stage`] trait —
//! `name()` plus `run(&mut PlanContext)` — and is executed through a
//! [`MetaStage`] wrapper that owns the cross-cutting concerns the stage
//! bodies would otherwise duplicate: the per-stage `dmf-obs` span (the
//! legacy names `stage_build_tree`, `stage_build_forest`,
//! `stage_schedule`, `stage_split_passes`, so golden traces are
//! unchanged) and a per-stage run counter under the same name. The
//! pipeline performs exactly the calls the former monolithic planner
//! made, in the same order — stage dispatch changes no droplet of output.
//!
//! Stage contract (see `DESIGN.md` §12 and §17):
//!
//! 1. [`BuildTree`] — builds the base-algorithm template for the target
//!    and resolves the mixer budget (`Mc`, the MinMix `Mlb` under
//!    [`crate::MixerBudget::MmLowerBound`]). Must run first. Idempotent.
//! 2. [`BuildForest`] — expands the template into a mixing forest
//!    covering the pass demand in [`PlanContext`]'s scratch slot,
//!    applying the engine's droplet reuse policy (subgraph-sharing base
//!    algorithms force eager reuse).
//! 3. [`Schedule`] — schedules the pending forest onto the mixer budget
//!    and derives its storage profile, yielding a candidate [`PassPlan`].
//! 4. [`SplitPasses`] — drives stages 2–3 (each through its own
//!    [`MetaStage`], so their spans nest under `stage_split_passes`) to
//!    split the demand into the fewest passes fitting the storage budget
//!    `q'` (the paper's §6 multi-pass streaming; the whole demand in one
//!    pass when unconstrained).
//!
//! [`PlanContext::into_plan`] then folds the passes into a [`StreamPlan`]
//! with droplet-exact aggregates.
//!
//! Stages communicate through typed scratch slots on [`PlanContext`]
//! (`pass_demand` in, `pending_forest` between 2 and 3, a candidate pass
//! out of 3); a stage that finds its input slot empty fails with a typed
//! [`EngineError::Internal`], never a panic. The legacy stage methods
//! ([`PlanContext::build_tree`] and friends) remain as thin wrappers that
//! route through the same `MetaStage`-wrapped stages.

use crate::{EngineConfig, EngineError, MixerBudget, PassPlan, StreamPlan};
use dmf_mixalgo::{BaseAlgorithm, Template};
use dmf_mixgraph::MixGraph;
use dmf_ratio::TargetRatio;
use dmf_sched::mixer_lower_bound;

/// A pipeline stage: a named unit of planning work advancing a
/// [`PlanContext`].
///
/// Stage bodies contain **only** the planning logic; span emission and
/// per-stage metrics live in [`MetaStage`], so a stage never reports
/// itself twice and every stage is observed identically.
pub trait Stage {
    /// The stage's span/counter name (`"stage_build_tree"`, …). Must be
    /// stable: traces, metrics and the profile exporters key on it.
    fn name(&self) -> &'static str;

    /// Runs the stage against `ctx`.
    ///
    /// # Errors
    ///
    /// Stage-specific planning failures, or [`EngineError::Internal`] when
    /// a required upstream slot has not been filled (stages ran out of
    /// order).
    fn run(&self, ctx: &mut PlanContext<'_>) -> Result<(), EngineError>;
}

/// Wraps a [`Stage`] with the cross-cutting concerns every stage shares:
/// one `dmf-obs` span per run (named [`Stage::name`], parented under the
/// caller's current span, so golden traces keep their legacy shape) and a
/// per-stage run counter under the same name.
///
/// `MetaStage<S>` is itself a [`Stage`], so pipelines can nest meta-wrapped
/// stages (as [`SplitPasses`] does for its per-pass inner stages).
#[derive(Debug, Clone, Copy)]
pub struct MetaStage<S> {
    inner: S,
}

impl<S: Stage> MetaStage<S> {
    /// Wraps `inner`.
    pub const fn new(inner: S) -> Self {
        MetaStage { inner }
    }
}

impl<S: Stage> Stage for MetaStage<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run(&self, ctx: &mut PlanContext<'_>) -> Result<(), EngineError> {
        let _span = dmf_obs::span!(self.inner.name());
        let obs = dmf_obs::global();
        if obs.is_enabled() {
            obs.count(self.inner.name(), 1);
        }
        self.inner.run(ctx)
    }
}

/// An ordered sequence of [`MetaStage`]-wrapped stages.
///
/// [`Pipeline::standard`] is the planner the engine facade runs; custom
/// pipelines (extra stages, reordered stages for experiments) compose via
/// [`Pipeline::with_stage`].
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Stage + Send + Sync>>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// The engine's standard planner: [`BuildTree`] then [`SplitPasses`]
    /// (which drives [`BuildForest`] and [`Schedule`] per pass).
    pub fn standard() -> Self {
        Pipeline::new().with_stage(BuildTree).with_stage(SplitPasses)
    }

    /// Appends `stage`, wrapped in a [`MetaStage`].
    #[must_use]
    pub fn with_stage(mut self, stage: impl Stage + Send + Sync + 'static) -> Self {
        self.stages.push(Box::new(MetaStage::new(stage)));
        self
    }

    /// The stage names, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs every stage in order, stopping at the first failure.
    ///
    /// # Errors
    ///
    /// Propagates the failing stage's error.
    pub fn run(&self, ctx: &mut PlanContext<'_>) -> Result<(), EngineError> {
        for stage in &self.stages {
            stage.run(ctx)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline").field("stages", &self.stage_names()).finish()
    }
}

/// Shared state threaded through the pipeline stages.
///
/// A context is created per `(target, demand)` planning request, advanced
/// by the stages, and consumed by [`PlanContext::into_plan`]. The scratch
/// slots (`pass_demand`, pending forest, candidate pass) carry data
/// between [`BuildForest`] and [`Schedule`] within one pass.
#[derive(Debug)]
pub struct PlanContext<'a> {
    config: EngineConfig,
    target: &'a TargetRatio,
    demand: u64,
    template: Option<Template>,
    mixers: Option<usize>,
    passes: Vec<PassPlan>,
    /// Scratch: the demand the next [`BuildForest`]/[`Schedule`] run
    /// plans for.
    pass_demand: Option<u64>,
    /// Scratch: the forest [`BuildForest`] produced, awaiting
    /// [`Schedule`].
    pending_forest: Option<MixGraph>,
    /// Scratch: the pass [`Schedule`] produced, awaiting collection.
    candidate: Option<PassPlan>,
}

/// Resolves the mixer budget for `target` under `config` (the `Mlb` of its
/// MinMix tree for [`MixerBudget::MmLowerBound`]).
pub(crate) fn resolve_mixers(
    config: &EngineConfig,
    target: &TargetRatio,
) -> Result<usize, EngineError> {
    match config.mixers {
        MixerBudget::Fixed(m) => Ok(m),
        MixerBudget::MmLowerBound => {
            let mm = BaseAlgorithm::MinMix.algorithm().build_graph(target)?;
            Ok(mixer_lower_bound(&mm)?)
        }
    }
}

fn internal(what: &str) -> EngineError {
    EngineError::Internal { what: what.to_owned() }
}

/// Stage 1 — builds the base-algorithm template and resolves the mixer
/// budget. Idempotent.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTree;

impl Stage for BuildTree {
    fn name(&self) -> &'static str {
        "stage_build_tree"
    }

    fn run(&self, ctx: &mut PlanContext<'_>) -> Result<(), EngineError> {
        if ctx.template.is_none() {
            let _span = dmf_obs::span!("mixalgo_build");
            ctx.template = Some(ctx.config.algorithm.algorithm().build_template(ctx.target)?);
        }
        if ctx.mixers.is_none() {
            ctx.mixers = Some(resolve_mixers(&ctx.config, ctx.target)?);
        }
        Ok(())
    }
}

/// Stage 2 — expands the template into a mixing forest covering the
/// scratch `pass_demand` under the engine's reuse policy, leaving it in
/// the pending-forest slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildForest;

impl Stage for BuildForest {
    fn name(&self) -> &'static str {
        "stage_build_forest"
    }

    fn run(&self, ctx: &mut PlanContext<'_>) -> Result<(), EngineError> {
        let demand =
            ctx.pass_demand.ok_or_else(|| internal("build_forest ran without a pass demand"))?;
        // Subgraph-sharing base algorithms (MTCS, RSM) reuse droplets even
        // within one tree; their forests must too, or the engine would lose
        // the sharing the repeated baseline enjoys.
        let reuse = if ctx.config.algorithm.algorithm().shares_subgraphs() {
            dmf_forest::ReusePolicy::Eager
        } else {
            ctx.config.reuse
        };
        let forest = dmf_forest::build_forest(ctx.ready_template()?, ctx.target, demand, reuse)?;
        ctx.pending_forest = Some(forest);
        Ok(())
    }
}

/// Stage 3 — schedules the pending forest onto the mixer budget and
/// derives its storage profile, leaving a candidate [`PassPlan`] in the
/// context.
#[derive(Debug, Clone, Copy, Default)]
pub struct Schedule;

impl Stage for Schedule {
    fn name(&self) -> &'static str {
        "stage_schedule"
    }

    fn run(&self, ctx: &mut PlanContext<'_>) -> Result<(), EngineError> {
        let demand =
            ctx.pass_demand.ok_or_else(|| internal("schedule ran without a pass demand"))?;
        let forest =
            ctx.pending_forest.take().ok_or_else(|| internal("schedule ran without a forest"))?;
        let schedule = ctx.config.scheduler.run(&forest, ctx.ready_mixers()?)?;
        let storage = schedule.storage(&forest);
        ctx.candidate = Some(PassPlan { demand, forest, schedule, storage });
        Ok(())
    }
}

/// Stage 4 — splits the demand into the fewest passes whose schedules
/// each fit the storage budget `q'` (one pass covers everything when
/// unconstrained), appending them to the context. Drives stages 2–3
/// through their own [`MetaStage`]s, so per-pass forest/schedule spans
/// nest under this stage's span.
#[derive(Debug, Clone, Copy, Default)]
pub struct SplitPasses;

impl Stage for SplitPasses {
    fn name(&self) -> &'static str {
        "stage_split_passes"
    }

    fn run(&self, ctx: &mut PlanContext<'_>) -> Result<(), EngineError> {
        let mut remaining = ctx.demand;
        while remaining > 0 {
            let pass_demand = match ctx.config.storage_limit {
                None => remaining,
                Some(limit) => max_pass_demand(ctx, remaining, limit)?,
            };
            let pass = build_pass(ctx, pass_demand)?;
            ctx.passes.push(pass);
            remaining = remaining.saturating_sub(pass_demand);
        }
        Ok(())
    }
}

/// Stages 2+3 for one pass, each through its [`MetaStage`] wrapper.
fn build_pass(ctx: &mut PlanContext<'_>, demand: u64) -> Result<PassPlan, EngineError> {
    const FOREST: MetaStage<BuildForest> = MetaStage::new(BuildForest);
    const SCHEDULE: MetaStage<Schedule> = MetaStage::new(Schedule);
    ctx.pass_demand = Some(demand);
    let result = FOREST.run(ctx).and_then(|()| SCHEDULE.run(ctx));
    ctx.pass_demand = None;
    result?;
    ctx.candidate.take().ok_or_else(|| internal("schedule did not produce a pass"))
}

/// The paper's `D'`: the largest demand (up to `remaining`) whose
/// single-pass schedule fits the storage budget.
fn max_pass_demand(
    ctx: &mut PlanContext<'_>,
    remaining: u64,
    limit: usize,
) -> Result<u64, EngineError> {
    let first = build_pass(ctx, remaining.min(2))?;
    if first.storage_units() > limit {
        return Err(EngineError::StorageInfeasible { limit, needed: first.storage_units() });
    }
    // SRS storage is not strictly monotone in the demand (see the
    // Fig. 7 jitter), so keep scanning past the first infeasible
    // demand for a short window before giving up.
    let mut best = remaining.min(2);
    let mut candidate = best + 2;
    let mut misses = 0u32;
    while candidate <= remaining && misses < 4 {
        let pass = build_pass(ctx, candidate)?;
        if pass.storage_units() > limit {
            misses += 1;
        } else {
            best = candidate;
            misses = 0;
        }
        candidate += 2;
    }
    Ok(best)
}

impl<'a> PlanContext<'a> {
    /// Opens a planning context for `demand` droplets of `target`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZeroDemand`] for `demand == 0`.
    pub fn new(
        config: EngineConfig,
        target: &'a TargetRatio,
        demand: u64,
    ) -> Result<Self, EngineError> {
        if demand == 0 {
            return Err(EngineError::ZeroDemand);
        }
        Ok(PlanContext {
            config,
            target,
            demand,
            template: None,
            mixers: None,
            passes: Vec::new(),
            pass_demand: None,
            pending_forest: None,
            candidate: None,
        })
    }

    /// The engine configuration this context plans under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The target ratio being planned.
    pub fn target(&self) -> &TargetRatio {
        self.target
    }

    /// The requested demand `D`.
    pub fn demand(&self) -> u64 {
        self.demand
    }

    /// The resolved mixer budget, once [`BuildTree`] ran.
    pub fn mixers(&self) -> Option<usize> {
        self.mixers
    }

    /// The passes planned so far, in execution order.
    pub fn passes(&self) -> &[PassPlan] {
        &self.passes
    }

    fn ready_template(&self) -> Result<&Template, EngineError> {
        self.template.as_ref().ok_or_else(|| EngineError::Internal {
            what: "pipeline stage ran before build_tree".into(),
        })
    }

    fn ready_mixers(&self) -> Result<usize, EngineError> {
        self.mixers.ok_or_else(|| EngineError::Internal {
            what: "pipeline stage ran before build_tree".into(),
        })
    }

    /// Stage 1 — [`BuildTree`] through its [`MetaStage`]. Idempotent.
    ///
    /// # Errors
    ///
    /// Propagates base-tree construction and mixer-bound failures.
    pub fn build_tree(&mut self) -> Result<(), EngineError> {
        MetaStage::new(BuildTree).run(self)
    }

    /// Stage 2 — [`BuildForest`] through its [`MetaStage`]: expands the
    /// template into a mixing forest covering `demand` droplets under the
    /// engine's reuse policy.
    ///
    /// # Errors
    ///
    /// Fails before [`PlanContext::build_tree`] has run; propagates forest
    /// construction failures.
    pub fn build_forest(&mut self, demand: u64) -> Result<MixGraph, EngineError> {
        self.pass_demand = Some(demand);
        let result = MetaStage::new(BuildForest).run(self);
        self.pass_demand = None;
        result?;
        self.pending_forest.take().ok_or_else(|| internal("build_forest produced no forest"))
    }

    /// Stage 3 — [`Schedule`] through its [`MetaStage`]: schedules
    /// `forest` onto the mixer budget and derives its storage profile,
    /// completing one [`PassPlan`].
    ///
    /// # Errors
    ///
    /// Fails before [`PlanContext::build_tree`] has run; propagates
    /// scheduling failures.
    pub fn schedule(&mut self, forest: MixGraph, demand: u64) -> Result<PassPlan, EngineError> {
        self.pass_demand = Some(demand);
        self.pending_forest = Some(forest);
        let result = MetaStage::new(Schedule).run(self);
        self.pass_demand = None;
        result?;
        self.candidate.take().ok_or_else(|| internal("schedule produced no pass"))
    }

    /// Stage 4 — [`SplitPasses`] through its [`MetaStage`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::StorageInfeasible`] when even a demand-2
    /// pass exceeds the budget; propagates stage-2/3 failures.
    pub fn split_passes(&mut self) -> Result<(), EngineError> {
        MetaStage::new(SplitPasses).run(self)
    }

    /// Folds the planned passes into a [`StreamPlan`] with droplet-exact
    /// aggregates, publishing the `plan.*` gauges. In debug builds the
    /// independent checker vets the emitted plan.
    ///
    /// # Errors
    ///
    /// Fails when no pass was planned ([`SplitPasses`] has not run).
    pub fn into_plan(self) -> Result<StreamPlan, EngineError> {
        if self.passes.is_empty() {
            return Err(EngineError::Internal { what: "into_plan ran before split_passes".into() });
        }
        let mixers = self.ready_mixers()?;
        let passes = self.passes;
        let total_cycles = passes.iter().map(|p| u64::from(p.cycles())).sum();
        let mut inputs = vec![0u64; self.target.fluid_count()];
        let mut total_waste = 0u64;
        let mut total_mix_splits = 0u64;
        for pass in &passes {
            let stats = pass.forest.stats();
            total_waste += stats.waste as u64;
            total_mix_splits += stats.mix_splits as u64;
            for (acc, v) in inputs.iter_mut().zip(&stats.inputs) {
                *acc += v;
            }
        }
        let plan = StreamPlan {
            target: self.target.clone(),
            demand: self.demand,
            mixers,
            total_cycles,
            total_mix_splits,
            total_waste,
            total_inputs: inputs.iter().sum(),
            inputs,
            storage_peak: passes.iter().map(PassPlan::storage_units).max().unwrap_or(0),
            passes,
        };
        let obs = dmf_obs::global();
        if obs.is_enabled() {
            obs.gauge_set("plan.demand", plan.demand);
            obs.gauge_set("plan.passes", plan.passes.len() as u64);
            obs.gauge_set("plan.cycles", plan.total_cycles);
            obs.gauge_set("plan.mix_splits", plan.total_mix_splits);
            obs.gauge_set("plan.waste", plan.total_waste);
            obs.gauge_set("plan.inputs", plan.total_inputs);
            obs.gauge_set("plan.storage_peak", plan.storage_peak as u64);
        }
        // Translation validation: in debug builds every emitted plan must
        // satisfy the independent checker's invariants.
        #[cfg(debug_assertions)]
        {
            let report = crate::static_check(&plan);
            debug_assert!(report.is_clean(), "engine emitted an unsound plan:\n{report}");
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    #[test]
    fn stages_compose_to_the_facade_output() {
        let target = pcr_d4();
        let mut ctx = PlanContext::new(EngineConfig::default(), &target, 20).unwrap();
        ctx.build_tree().unwrap();
        ctx.split_passes().unwrap();
        let plan = ctx.into_plan().unwrap();
        assert_eq!(plan.total_cycles, 11);
        assert_eq!(plan.storage_peak, 5);
        assert_eq!(plan.total_inputs, 25);
    }

    #[test]
    fn pipeline_runner_matches_the_stage_methods() {
        let target = pcr_d4();
        let mut ctx = PlanContext::new(EngineConfig::default(), &target, 20).unwrap();
        Pipeline::standard().run(&mut ctx).unwrap();
        let plan = ctx.into_plan().unwrap();
        assert_eq!(plan.total_cycles, 11);
        assert_eq!(plan.storage_peak, 5);
        assert_eq!(plan.total_inputs, 25);
        assert_eq!(
            Pipeline::standard().stage_names(),
            vec!["stage_build_tree", "stage_split_passes"]
        );
    }

    #[test]
    fn stages_out_of_order_are_internal_errors() {
        let target = pcr_d4();
        let mut ctx = PlanContext::new(EngineConfig::default(), &target, 20).unwrap();
        assert!(matches!(ctx.build_forest(2), Err(EngineError::Internal { .. })));
        let ctx = PlanContext::new(EngineConfig::default(), &target, 20).unwrap();
        assert!(matches!(ctx.into_plan(), Err(EngineError::Internal { .. })));
        // A bare Schedule stage with no pending forest fails typed, too.
        let mut ctx = PlanContext::new(EngineConfig::default(), &target, 20).unwrap();
        ctx.build_tree().unwrap();
        assert!(matches!(
            MetaStage::new(Schedule).run(&mut ctx),
            Err(EngineError::Internal { .. })
        ));
    }

    #[test]
    fn zero_demand_rejected_at_the_door() {
        let target = pcr_d4();
        assert!(matches!(
            PlanContext::new(EngineConfig::default(), &target, 0),
            Err(EngineError::ZeroDemand)
        ));
    }

    #[test]
    fn build_tree_is_idempotent() {
        let target = pcr_d4();
        let mut ctx = PlanContext::new(EngineConfig::default(), &target, 4).unwrap();
        ctx.build_tree().unwrap();
        let mixers = ctx.mixers();
        ctx.build_tree().unwrap();
        assert_eq!(ctx.mixers(), mixers);
    }
}
