//! The staged planning pipeline: `BuildTree → BuildForest → Schedule →
//! SplitPasses`.
//!
//! [`crate::StreamingEngine::plan`] is a thin facade over these stages.
//! Each stage consumes and produces a shared [`PlanContext`] and runs
//! under its own `dmf-obs` span (`stage_build_tree`, `stage_build_forest`,
//! `stage_schedule`, `stage_split_passes`), so per-stage wall time shows
//! up in the metrics report without changing a single droplet of output:
//! the pipeline performs exactly the calls the former monolithic planner
//! made, in the same order.
//!
//! Stage contract (see `DESIGN.md` §12):
//!
//! 1. [`PlanContext::build_tree`] — builds the base-algorithm template for
//!    the target and resolves the mixer budget (`Mc`, the MinMix `Mlb`
//!    under [`crate::MixerBudget::MmLowerBound`]). Must run first.
//! 2. [`PlanContext::build_forest`] — expands the template into a mixing
//!    forest covering one pass's demand, applying the engine's droplet
//!    reuse policy (subgraph-sharing base algorithms force eager reuse).
//! 3. [`PlanContext::schedule`] — schedules a forest onto the mixer
//!    budget and derives its storage profile, yielding a [`PassPlan`].
//! 4. [`PlanContext::split_passes`] — drives stages 2–3 to split the
//!    demand into the fewest passes fitting the storage budget `q'`
//!    (the paper's §6 multi-pass streaming; the whole demand in one pass
//!    when unconstrained).
//!
//! [`PlanContext::into_plan`] then folds the passes into a [`StreamPlan`]
//! with droplet-exact aggregates.

use crate::{EngineConfig, EngineError, MixerBudget, PassPlan, StreamPlan};
use dmf_mixalgo::{BaseAlgorithm, Template};
use dmf_mixgraph::MixGraph;
use dmf_ratio::TargetRatio;
use dmf_sched::mixer_lower_bound;

/// Shared state threaded through the pipeline stages.
///
/// A context is created per `(target, demand)` planning request, advanced
/// by the stage methods, and consumed by [`PlanContext::into_plan`].
#[derive(Debug)]
pub struct PlanContext<'a> {
    config: EngineConfig,
    target: &'a TargetRatio,
    demand: u64,
    template: Option<Template>,
    mixers: Option<usize>,
    passes: Vec<PassPlan>,
}

/// Resolves the mixer budget for `target` under `config` (the `Mlb` of its
/// MinMix tree for [`MixerBudget::MmLowerBound`]).
pub(crate) fn resolve_mixers(
    config: &EngineConfig,
    target: &TargetRatio,
) -> Result<usize, EngineError> {
    match config.mixers {
        MixerBudget::Fixed(m) => Ok(m),
        MixerBudget::MmLowerBound => {
            let mm = BaseAlgorithm::MinMix.algorithm().build_graph(target)?;
            Ok(mixer_lower_bound(&mm)?)
        }
    }
}

impl<'a> PlanContext<'a> {
    /// Opens a planning context for `demand` droplets of `target`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZeroDemand`] for `demand == 0`.
    pub fn new(
        config: EngineConfig,
        target: &'a TargetRatio,
        demand: u64,
    ) -> Result<Self, EngineError> {
        if demand == 0 {
            return Err(EngineError::ZeroDemand);
        }
        Ok(PlanContext { config, target, demand, template: None, mixers: None, passes: Vec::new() })
    }

    /// The engine configuration this context plans under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The target ratio being planned.
    pub fn target(&self) -> &TargetRatio {
        self.target
    }

    /// The requested demand `D`.
    pub fn demand(&self) -> u64 {
        self.demand
    }

    /// The resolved mixer budget, once [`PlanContext::build_tree`] ran.
    pub fn mixers(&self) -> Option<usize> {
        self.mixers
    }

    /// The passes planned so far, in execution order.
    pub fn passes(&self) -> &[PassPlan] {
        &self.passes
    }

    fn ready_template(&self) -> Result<&Template, EngineError> {
        self.template.as_ref().ok_or_else(|| EngineError::Internal {
            what: "pipeline stage ran before build_tree".into(),
        })
    }

    fn ready_mixers(&self) -> Result<usize, EngineError> {
        self.mixers.ok_or_else(|| EngineError::Internal {
            what: "pipeline stage ran before build_tree".into(),
        })
    }

    /// Stage 1 — `BuildTree`: builds the base-algorithm template and
    /// resolves the mixer budget. Idempotent.
    ///
    /// # Errors
    ///
    /// Propagates base-tree construction and mixer-bound failures.
    pub fn build_tree(&mut self) -> Result<(), EngineError> {
        let _stage = dmf_obs::span!("stage_build_tree");
        if self.template.is_none() {
            let _span = dmf_obs::span!("mixalgo_build");
            self.template = Some(self.config.algorithm.algorithm().build_template(self.target)?);
        }
        if self.mixers.is_none() {
            self.mixers = Some(resolve_mixers(&self.config, self.target)?);
        }
        Ok(())
    }

    /// Stage 2 — `BuildForest`: expands the template into a mixing forest
    /// covering `demand` droplets under the engine's reuse policy.
    ///
    /// # Errors
    ///
    /// Fails before [`PlanContext::build_tree`] has run; propagates forest
    /// construction failures.
    pub fn build_forest(&self, demand: u64) -> Result<MixGraph, EngineError> {
        let _stage = dmf_obs::span!("stage_build_forest");
        // Subgraph-sharing base algorithms (MTCS, RSM) reuse droplets even
        // within one tree; their forests must too, or the engine would lose
        // the sharing the repeated baseline enjoys.
        let reuse = if self.config.algorithm.algorithm().shares_subgraphs() {
            dmf_forest::ReusePolicy::Eager
        } else {
            self.config.reuse
        };
        Ok(dmf_forest::build_forest(self.ready_template()?, self.target, demand, reuse)?)
    }

    /// Stage 3 — `Schedule`: schedules `forest` onto the mixer budget and
    /// derives its storage profile, completing one [`PassPlan`].
    ///
    /// # Errors
    ///
    /// Fails before [`PlanContext::build_tree`] has run; propagates
    /// scheduling failures.
    pub fn schedule(&self, forest: MixGraph, demand: u64) -> Result<PassPlan, EngineError> {
        let _stage = dmf_obs::span!("stage_schedule");
        let schedule = self.config.scheduler.run(&forest, self.ready_mixers()?)?;
        let storage = schedule.storage(&forest);
        Ok(PassPlan { demand, forest, schedule, storage })
    }

    /// Stages 2+3 for one pass.
    fn build_pass(&self, demand: u64) -> Result<PassPlan, EngineError> {
        let forest = self.build_forest(demand)?;
        self.schedule(forest, demand)
    }

    /// Stage 4 — `SplitPasses`: splits the demand into the fewest passes
    /// whose schedules each fit the storage budget `q'` (one pass covers
    /// everything when unconstrained), appending them to the context.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::StorageInfeasible`] when even a demand-2
    /// pass exceeds the budget; propagates stage-2/3 failures.
    pub fn split_passes(&mut self) -> Result<(), EngineError> {
        let _stage = dmf_obs::span!("stage_split_passes");
        let mut remaining = self.demand;
        while remaining > 0 {
            let pass_demand = match self.config.storage_limit {
                None => remaining,
                Some(limit) => self.max_pass_demand(remaining, limit)?,
            };
            self.passes.push(self.build_pass(pass_demand)?);
            remaining = remaining.saturating_sub(pass_demand);
        }
        Ok(())
    }

    /// The paper's `D'`: the largest demand (up to `remaining`) whose
    /// single-pass schedule fits the storage budget.
    fn max_pass_demand(&self, remaining: u64, limit: usize) -> Result<u64, EngineError> {
        let first = self.build_pass(remaining.min(2))?;
        if first.storage_units() > limit {
            return Err(EngineError::StorageInfeasible { limit, needed: first.storage_units() });
        }
        // SRS storage is not strictly monotone in the demand (see the
        // Fig. 7 jitter), so keep scanning past the first infeasible
        // demand for a short window before giving up.
        let mut best = remaining.min(2);
        let mut candidate = best + 2;
        let mut misses = 0u32;
        while candidate <= remaining && misses < 4 {
            let pass = self.build_pass(candidate)?;
            if pass.storage_units() > limit {
                misses += 1;
            } else {
                best = candidate;
                misses = 0;
            }
            candidate += 2;
        }
        Ok(best)
    }

    /// Folds the planned passes into a [`StreamPlan`] with droplet-exact
    /// aggregates, publishing the `plan.*` gauges. In debug builds the
    /// independent checker vets the emitted plan.
    ///
    /// # Errors
    ///
    /// Fails when no pass was planned ([`PlanContext::split_passes`] has
    /// not run).
    pub fn into_plan(self) -> Result<StreamPlan, EngineError> {
        if self.passes.is_empty() {
            return Err(EngineError::Internal { what: "into_plan ran before split_passes".into() });
        }
        let mixers = self.ready_mixers()?;
        let passes = self.passes;
        let total_cycles = passes.iter().map(|p| u64::from(p.cycles())).sum();
        let mut inputs = vec![0u64; self.target.fluid_count()];
        let mut total_waste = 0u64;
        let mut total_mix_splits = 0u64;
        for pass in &passes {
            let stats = pass.forest.stats();
            total_waste += stats.waste as u64;
            total_mix_splits += stats.mix_splits as u64;
            for (acc, v) in inputs.iter_mut().zip(&stats.inputs) {
                *acc += v;
            }
        }
        let plan = StreamPlan {
            target: self.target.clone(),
            demand: self.demand,
            mixers,
            total_cycles,
            total_mix_splits,
            total_waste,
            total_inputs: inputs.iter().sum(),
            inputs,
            storage_peak: passes.iter().map(PassPlan::storage_units).max().unwrap_or(0),
            passes,
        };
        let obs = dmf_obs::global();
        if obs.is_enabled() {
            obs.gauge_set("plan.demand", plan.demand);
            obs.gauge_set("plan.passes", plan.passes.len() as u64);
            obs.gauge_set("plan.cycles", plan.total_cycles);
            obs.gauge_set("plan.mix_splits", plan.total_mix_splits);
            obs.gauge_set("plan.waste", plan.total_waste);
            obs.gauge_set("plan.inputs", plan.total_inputs);
            obs.gauge_set("plan.storage_peak", plan.storage_peak as u64);
        }
        // Translation validation: in debug builds every emitted plan must
        // satisfy the independent checker's invariants.
        #[cfg(debug_assertions)]
        {
            let report = crate::static_check(&plan);
            debug_assert!(report.is_clean(), "engine emitted an unsound plan:\n{report}");
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    #[test]
    fn stages_compose_to_the_facade_output() {
        let target = pcr_d4();
        let mut ctx = PlanContext::new(EngineConfig::default(), &target, 20).unwrap();
        ctx.build_tree().unwrap();
        ctx.split_passes().unwrap();
        let plan = ctx.into_plan().unwrap();
        assert_eq!(plan.total_cycles, 11);
        assert_eq!(plan.storage_peak, 5);
        assert_eq!(plan.total_inputs, 25);
    }

    #[test]
    fn stages_out_of_order_are_internal_errors() {
        let target = pcr_d4();
        let ctx = PlanContext::new(EngineConfig::default(), &target, 20).unwrap();
        assert!(matches!(ctx.build_forest(2), Err(EngineError::Internal { .. })));
        let ctx = PlanContext::new(EngineConfig::default(), &target, 20).unwrap();
        assert!(matches!(ctx.into_plan(), Err(EngineError::Internal { .. })));
    }

    #[test]
    fn zero_demand_rejected_at_the_door() {
        let target = pcr_d4();
        assert!(matches!(
            PlanContext::new(EngineConfig::default(), &target, 0),
            Err(EngineError::ZeroDemand)
        ));
    }

    #[test]
    fn build_tree_is_idempotent() {
        let target = pcr_d4();
        let mut ctx = PlanContext::new(EngineConfig::default(), &target, 4).unwrap();
        ctx.build_tree().unwrap();
        let mixers = ctx.mixers();
        ctx.build_tree().unwrap();
        assert_eq!(ctx.mixers(), mixers);
    }
}
