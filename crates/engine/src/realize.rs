use crate::{EngineError, PassPlan};
use dmf_chip::{ChipSpec, ModuleId};
use dmf_mixgraph::{NodeId, Operand};
use dmf_sim::{ChipProgram, DropletId, Instruction};
use std::collections::HashMap;

/// Lowers one scheduled pass onto a concrete chip, producing the exact
/// droplet-level instruction stream the simulator executes.
///
/// The compilation follows the serialized-transport model (crate docs): for
/// every schedule cycle it first *fetches* stored operands, then *clears*
/// the previous cycle's mixer outputs (to storage, waste or the output
/// port), then *gathers* fresh dispenses and direct hand-offs, and finally
/// fires the cycle's mix-splits. Storage cells are allocated
/// nearest-first to the producing mixer; direct producer-to-consumer
/// hand-offs bypass storage exactly when Algorithm 3 counts no storage for
/// them, so the simulator's observed `storage_peak` equals the schedule's
/// `q`.
///
/// # Errors
///
/// Returns [`EngineError::Chip`] when the chip lacks required modules,
/// [`EngineError::Sched`]-level mismatches when the chip has fewer mixers
/// than the schedule uses, and [`EngineError::StorageExhausted`] when the
/// chip has fewer storage cells than the schedule's `q`.
///
/// # Examples
///
/// ```
/// use dmf_chip::presets::pcr_chip;
/// use dmf_engine::{realize_pass, EngineConfig, StreamingEngine};
/// use dmf_ratio::TargetRatio;
/// use dmf_sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
/// let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 20)?;
/// let chip = pcr_chip();
/// let program = realize_pass(&plan.passes[0], &chip)?;
/// let report = Simulator::new(&chip).run(&program)?;
/// assert_eq!(report.emitted, 20);
/// # Ok(())
/// # }
/// ```
pub fn realize_pass(pass: &PassPlan, chip: &ChipSpec) -> Result<ChipProgram, EngineError> {
    let _span = dmf_obs::span!("engine_realize");
    // Translation validation: in debug builds the independent checker
    // vets the pass artifacts and the target layout before lowering.
    crate::check::debug_check_pass(pass);
    #[cfg(debug_assertions)]
    {
        let placement = dmf_check::check_placement(chip);
        debug_assert!(placement.is_clean(), "realizing onto an unsound layout:\n{placement}");
    }
    Realizer::new(pass, chip)?.compile()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    AtMixer(ModuleId),
    InStorage(ModuleId),
}

/// A violated compiler invariant, surfaced as a typed error: the pass
/// artifacts were vetted up front, so reaching one of these means a bug in
/// the lowering itself, not bad input.
fn internal(what: &str) -> EngineError {
    EngineError::Internal { what: what.into() }
}

struct Realizer<'a> {
    pass: &'a PassPlan,
    chip: &'a ChipSpec,
    mixers: Vec<ModuleId>,
    storage: Vec<ModuleId>,
    storage_free: Vec<bool>,
    outputs: Vec<ModuleId>,
    wastes: Vec<ModuleId>,
    program: ChipProgram,
    next_droplet: u64,
    loc: HashMap<DropletId, Loc>,
    /// Droplets reserved for a (consumer, producer) operand edge.
    reserved: HashMap<(NodeId, NodeId), Vec<DropletId>>,
    /// The two output droplets of every fired node.
    produced: HashMap<NodeId, [DropletId; 2]>,
    /// Per-cycle node lists, mixer-ordered.
    by_cycle: Vec<Vec<NodeId>>,
}

impl<'a> Realizer<'a> {
    fn new(pass: &'a PassPlan, chip: &'a ChipSpec) -> Result<Self, EngineError> {
        chip.validate_for_engine(pass.forest.fluid_count())?;
        let mixers: Vec<ModuleId> = chip.mixers().map(|m| m.id()).collect();
        if mixers.len() < pass.schedule.mixer_count() {
            return Err(EngineError::Chip(dmf_chip::ChipError::MissingResource {
                what: format!("{} mixers (chip has {})", pass.schedule.mixer_count(), mixers.len()),
            }));
        }
        let storage: Vec<ModuleId> = chip.storage_cells().map(|m| m.id()).collect();
        if storage.len() < pass.storage.peak {
            return Err(EngineError::StorageExhausted { available: storage.len() });
        }
        let tc = pass.schedule.makespan() as usize;
        let mut by_cycle: Vec<Vec<NodeId>> = vec![Vec::new(); tc + 1];
        for t in 1..=tc as u32 {
            by_cycle[t as usize] =
                pass.schedule.cycle_contents(t).into_iter().map(|(_, n)| n).collect();
        }
        Ok(Realizer {
            pass,
            chip,
            storage_free: vec![true; storage.len()],
            storage,
            outputs: chip.outputs().map(|m| m.id()).collect(),
            wastes: chip.waste_reservoirs().map(|m| m.id()).collect(),
            mixers,
            program: ChipProgram::new(),
            next_droplet: 0,
            loc: HashMap::new(),
            reserved: HashMap::new(),
            produced: HashMap::new(),
            by_cycle,
        })
    }

    fn compile(mut self) -> Result<ChipProgram, EngineError> {
        let tc = self.pass.schedule.makespan();
        for t in 1..=tc {
            self.program.push(Instruction::CycleMarker { cycle: t });
            // 1. Free storage of operands consumed this cycle.
            self.fetch_stored_operands(t)?;
            // 2. Clear the previous cycle's mixer outputs.
            self.dispatch_outputs(t.wrapping_sub(1))?;
            // 3. Gather dispenses and direct hand-offs.
            self.gather_operands(t)?;
            // 4. Fire the mixers.
            self.fire_mixers(t)?;
        }
        self.dispatch_outputs(tc)?;
        Ok(self.program)
    }

    fn fresh(&mut self) -> DropletId {
        let id = DropletId(self.next_droplet);
        self.next_droplet += 1;
        id
    }

    fn mixer_of(&self, node: NodeId) -> ModuleId {
        self.mixers[self.pass.schedule.mixer_of(node).0]
    }

    /// Consumers of `node`, ordered by their scheduled cycle.
    fn ordered_consumers(&self, node: NodeId) -> Vec<NodeId> {
        let mut consumers = self.pass.forest.consumers(node).to_vec();
        consumers.sort_by_key(|&c| (self.pass.schedule.cycle_of(c), c));
        consumers
    }

    fn fetch_stored_operands(&mut self, t: u32) -> Result<(), EngineError> {
        for &node in &self.by_cycle[t as usize].clone() {
            let mixer = self.mixer_of(node);
            for op in self.pass.forest.node(node).operands() {
                let Operand::Droplet(src) = op else { continue };
                // Peek the reserved droplet; only handle stored ones here.
                let Some(queue) = self.reserved.get(&(node, src)) else { continue };
                for &d in queue.clone().iter() {
                    if let Some(Loc::InStorage(cell)) = self.loc.get(&d).copied() {
                        self.program.push(Instruction::Fetch { droplet: d, cell });
                        let idx = self
                            .storage
                            .iter()
                            .position(|&c| c == cell)
                            .ok_or_else(|| internal("droplet stored in an unknown cell"))?;
                        self.storage_free[idx] = true;
                        self.program.push(Instruction::TransportTo { droplet: d, module: mixer });
                        self.loc.insert(d, Loc::AtMixer(mixer));
                    }
                }
            }
        }
        Ok(())
    }

    fn dispatch_outputs(&mut self, t: u32) -> Result<(), EngineError> {
        if t == 0 || t as usize >= self.by_cycle.len() {
            return Ok(());
        }
        for &node in &self.by_cycle[t as usize].clone() {
            let consumers = self.ordered_consumers(node);
            let produced: Vec<DropletId> = self
                .reserved_outputs(node)
                .ok_or_else(|| internal("dispatching a node that never fired"))?
                .to_vec();
            for (i, d) in produced.iter().enumerate() {
                match consumers.get(i) {
                    Some(&consumer) => {
                        let consume_cycle = self.pass.schedule.cycle_of(consumer);
                        if consume_cycle == t + 1 {
                            // Direct hand-off: stays at the mixer; the
                            // gather phase moves it to the consumer.
                        } else {
                            let mixer = self.mixer_of(node);
                            let cell = self.allocate_storage(mixer)?;
                            self.program
                                .push(Instruction::TransportTo { droplet: *d, module: cell });
                            self.program.push(Instruction::Store { droplet: *d, cell });
                            self.loc.insert(*d, Loc::InStorage(cell));
                        }
                    }
                    None => {
                        if self.pass.forest.is_root(node) {
                            let out = self.outputs[0];
                            self.program
                                .push(Instruction::TransportTo { droplet: *d, module: out });
                            self.program.push(Instruction::Emit { droplet: *d, output: out });
                        } else {
                            let waste = self.nearest_waste(self.mixer_of(node))?;
                            self.program
                                .push(Instruction::TransportTo { droplet: *d, module: waste });
                            self.program.push(Instruction::Discard { droplet: *d, waste });
                        }
                        self.loc.remove(d);
                    }
                }
            }
        }
        Ok(())
    }

    fn gather_operands(&mut self, t: u32) -> Result<(), EngineError> {
        for &node in &self.by_cycle[t as usize].clone() {
            let mixer = self.mixer_of(node);
            for op in self.pass.forest.node(node).operands() {
                match op {
                    Operand::Input(f) => {
                        let reservoir = self
                            .chip
                            .reservoir_for(f.0)
                            .ok_or_else(|| internal("no reservoir for a validated fluid"))?
                            .id();
                        let d = self.fresh();
                        self.program.push(Instruction::Dispense { reservoir, droplet: d });
                        self.program.push(Instruction::TransportTo { droplet: d, module: mixer });
                        self.loc.insert(d, Loc::AtMixer(mixer));
                    }
                    Operand::Droplet(src) => {
                        // Move direct hand-offs still sitting at their
                        // producer's mixer (stored ones were fetched).
                        let queue = self.reserved.get(&(node, src)).cloned().unwrap_or_default();
                        for d in queue {
                            if let Some(Loc::AtMixer(m)) = self.loc.get(&d).copied() {
                                if m != mixer {
                                    self.program.push(Instruction::TransportTo {
                                        droplet: d,
                                        module: mixer,
                                    });
                                    self.loc.insert(d, Loc::AtMixer(mixer));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn fire_mixers(&mut self, t: u32) -> Result<(), EngineError> {
        for &node in &self.by_cycle[t as usize].clone() {
            let mixer = self.mixer_of(node);
            let mut operands: Vec<DropletId> = Vec::with_capacity(2);
            for op in self.pass.forest.node(node).operands() {
                match op {
                    Operand::Input(_) => {
                        // Inputs were dispensed in gather order; recover them
                        // by position: the freshest dispenses at this mixer.
                        // They are tracked via loc with AtMixer(mixer); take
                        // the oldest unclaimed one.
                        let d = self.take_input_at(mixer, &operands)?;
                        operands.push(d);
                    }
                    Operand::Droplet(src) => {
                        let queue = self
                            .reserved
                            .get_mut(&(node, src))
                            .ok_or_else(|| internal("operand never reserved at production"))?;
                        let d = queue.remove(0);
                        if queue.is_empty() {
                            self.reserved.remove(&(node, src));
                        }
                        operands.push(d);
                    }
                }
            }
            let (a, b) = (operands[0], operands[1]);
            let out_a = self.fresh();
            let out_b = self.fresh();
            self.program.push(Instruction::MixSplit { mixer, a, b, out_a, out_b });
            self.loc.remove(&a);
            self.loc.remove(&b);
            self.loc.insert(out_a, Loc::AtMixer(mixer));
            self.loc.insert(out_b, Loc::AtMixer(mixer));
            self.outputs_mut(node, [out_a, out_b]);
        }
        Ok(())
    }

    /// Assigns the node's two fresh output droplets to its consumers in
    /// consumption order (leftovers are waste/targets).
    fn outputs_mut(&mut self, node: NodeId, outs: [DropletId; 2]) {
        let consumers = self.ordered_consumers(node);
        for (i, d) in outs.iter().enumerate() {
            if let Some(&consumer) = consumers.get(i) {
                self.reserved.entry((consumer, node)).or_default().push(*d);
            }
        }
        self.produced.insert(node, outs);
    }

    fn reserved_outputs(&self, node: NodeId) -> Option<&[DropletId; 2]> {
        self.produced.get(&node)
    }

    fn allocate_storage(&mut self, near: ModuleId) -> Result<ModuleId, EngineError> {
        let mut best: Option<(u32, usize)> = None;
        for (i, &cell) in self.storage.iter().enumerate() {
            if !self.storage_free[i] {
                continue;
            }
            let cost = self.chip.transport_cost(near, cell);
            if best.map(|(c, _)| cost < c).unwrap_or(true) {
                best = Some((cost, i));
            }
        }
        let (_, i) = best.ok_or(EngineError::StorageExhausted { available: self.storage.len() })?;
        self.storage_free[i] = false;
        Ok(self.storage[i])
    }

    fn nearest_waste(&self, near: ModuleId) -> Result<ModuleId, EngineError> {
        self.wastes
            .iter()
            .min_by_key(|&&w| self.chip.transport_cost(near, w))
            .copied()
            .ok_or_else(|| internal("no waste reservoir on a validated chip"))
    }

    /// Takes the oldest dispensed input droplet waiting at `mixer` not yet
    /// claimed by this mix.
    fn take_input_at(
        &self,
        mixer: ModuleId,
        claimed: &[DropletId],
    ) -> Result<DropletId, EngineError> {
        let mut candidates: Vec<DropletId> = self
            .loc
            .iter()
            .filter(|(d, l)| {
                **l == Loc::AtMixer(mixer)
                    && !claimed.contains(d)
                    && !self.reserved.values().any(|q| q.contains(d))
                    && !self.produced.values().any(|outs| outs.contains(d))
            })
            .map(|(d, _)| *d)
            .collect();
        candidates.sort();
        candidates
            .first()
            .copied()
            .ok_or_else(|| internal("no input droplet dispensed during gather"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, StreamingEngine};
    use dmf_chip::presets::{pcr_chip, streaming_chip};
    use dmf_ratio::TargetRatio;
    use dmf_sim::Simulator;

    fn fig3_plan() -> crate::StreamPlan {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap()
    }

    #[test]
    fn fig3_pass_runs_end_to_end_on_the_pcr_chip() {
        let plan = fig3_plan();
        let chip = pcr_chip();
        let program = realize_pass(&plan.passes[0], &chip).unwrap();
        let report = Simulator::new(&chip).run(&program).unwrap();
        assert_eq!(report.emitted, 20, "two targets per component tree");
        assert_eq!(report.mix_splits, 27, "Tms");
        assert_eq!(report.dispensed, 25, "I");
        assert_eq!(report.discarded, 5, "W");
        assert_eq!(report.cycles, 11, "Tc");
        // The physical storage usage matches Algorithm 3's count exactly.
        assert_eq!(report.storage_peak, plan.storage_peak, "q");
        assert!(report.transport_actuations > 0);
    }

    #[test]
    fn undersized_chip_is_rejected() {
        let plan = fig3_plan();
        // Only 2 storage cells but the schedule needs 5.
        let chip = streaming_chip(7, 3, 2).unwrap();
        assert!(matches!(
            realize_pass(&plan.passes[0], &chip),
            Err(EngineError::StorageExhausted { available: 2 })
        ));
        // Only 2 mixers but the schedule uses 3.
        let chip2 = streaming_chip(7, 2, 8).unwrap();
        assert!(matches!(realize_pass(&plan.passes[0], &chip2), Err(EngineError::Chip(_))));
    }

    #[test]
    fn multi_pass_plans_realize_pass_by_pass() {
        let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let plan = StreamingEngine::new(EngineConfig::default().with_storage_limit(3))
            .plan(&target, 16)
            .unwrap();
        let chip = streaming_chip(7, 3, 3).unwrap();
        let mut emitted = 0;
        for pass in &plan.passes {
            let program = realize_pass(pass, &chip).unwrap();
            let report = Simulator::new(&chip).run(&program).unwrap();
            emitted += report.emitted;
            assert!(report.storage_peak <= 3);
        }
        assert!(emitted >= 16);
    }
}
