//! The TraceEvent → Recorder bridge agrees with the planner: folding a
//! simulated run's event log into a recorder reproduces the schedule's
//! storage peak `q`, the plan's waste `W` and mix-split count `Tms`.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_chip::presets::pcr_chip;
use dmf_engine::{realize_pass, EngineConfig, StreamingEngine};
use dmf_obs::{MetricsReport, Recorder};
use dmf_ratio::TargetRatio;
use dmf_sim::{bridge, Simulator};

#[test]
fn folded_trace_matches_planned_q_w_and_mix_splits() {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 4).unwrap();
    assert_eq!(plan.pass_count(), 1, "D=4 fits one pass");
    let chip = pcr_chip();
    let program = realize_pass(&plan.passes[0], &chip).unwrap();
    let (report, trace) = Simulator::new(&chip).run_traced(&program).unwrap();

    let rec = Recorder::new();
    bridge::record_trace(&rec, &trace);
    let folded = MetricsReport::from_recorder(&rec);

    // The bridge replays the event log from first principles; its numbers
    // must equal what the planner promised and what the simulator counted.
    assert_eq!(folded.value("sim.storage_peak"), Some(plan.storage_peak as u64));
    assert_eq!(folded.value("sim.waste_droplets"), Some(plan.total_waste));
    assert_eq!(folded.value("sim.mix_splits"), Some(plan.total_mix_splits));
    assert_eq!(folded.value("sim.dispensed"), Some(plan.total_inputs));
    assert_eq!(folded.value("sim.emitted"), Some(plan.demand));

    // And agree with the simulator's own accounting, including actuations.
    assert_eq!(folded.value("sim.storage_peak"), Some(report.storage_peak as u64));
    assert_eq!(folded.value("sim.droplet_hops"), Some(report.transport_actuations));
    assert_eq!(
        folded.value("sim.electrode_actuations"),
        Some(report.transport_actuations + report.dispensed)
    );
}

#[test]
fn record_report_is_a_noop_on_a_disabled_recorder() {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 4).unwrap();
    let chip = pcr_chip();
    let program = realize_pass(&plan.passes[0], &chip).unwrap();
    let (report, trace) = Simulator::new(&chip).run_traced(&program).unwrap();

    let rec = Recorder::disabled();
    bridge::record_trace(&rec, &trace);
    bridge::record_report(&rec, &report);
    let snapshot = rec.snapshot();
    assert!(snapshot.counters.is_empty());
    assert!(snapshot.gauges.is_empty());
}
