//! End-to-end guarantees of the batch planner and the plan cache:
//!
//! * `plan_batch` output is byte-identical to sequential `plan` calls for
//!   every worker-thread count, over the paper's five Table 2 protocols;
//! * a warmed cache answers with pointer-equal plans and counts
//!   `cache.hits`;
//! * every plan served from the cache still passes the `dmf-check` static
//!   verifier.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_engine::{plan_batch, BatchOptions, EngineConfig, PlanCache, PlanRequest, StreamingEngine};
use dmf_ratio::TargetRatio;
use std::num::NonZeroUsize;
use std::sync::Arc;

/// The five Table 2 bioprotocol ratios (Ex.1–Ex.5, all `L = 256`).
fn table2_ratios() -> Vec<TargetRatio> {
    [
        vec![26, 21, 2, 2, 3, 3, 199],
        vec![128, 123, 5],
        vec![25, 5, 5, 5, 5, 13, 13, 25, 1, 159],
        vec![9, 17, 26, 9, 195],
        vec![57, 28, 6, 6, 6, 3, 150],
    ]
    .into_iter()
    .map(|parts| TargetRatio::new(parts).unwrap())
    .collect()
}

/// A plan's full observable surface: summary line, inputs, and per-pass
/// forest/schedule figures.
fn render(plan: &dmf_engine::StreamPlan) -> String {
    let mut out = format!("{plan}\nI[] = {:?}\n", plan.inputs);
    for pass in &plan.passes {
        out.push_str(&format!(
            "pass: D'={} Tc={} q={} nodes={}\n",
            pass.demand,
            pass.cycles(),
            pass.storage_units(),
            pass.forest.node_count()
        ));
    }
    out
}

#[test]
fn batch_is_byte_identical_to_sequential_at_every_thread_count() {
    let requests: Vec<PlanRequest> = table2_ratios()
        .into_iter()
        .flat_map(|ratio| [12u64, 32].map(|demand| PlanRequest::new(ratio.clone(), demand)))
        .collect();
    let expected: Vec<String> = requests
        .iter()
        .map(|r| render(&StreamingEngine::new(r.config).plan(&r.target, r.demand).unwrap()))
        .collect();
    for jobs in [1usize, 2, 4, 8] {
        // Four explicit shards, so the sharded lookup/store paths are
        // exercised even on machines whose default shard count is 1.
        let options = BatchOptions::new()
            .with_jobs(NonZeroUsize::new(jobs).unwrap())
            .with_cache(PlanCache::shared_with_capacity_and_shards(64, 4));
        let results = plan_batch(&requests, &options);
        assert_eq!(results.len(), requests.len());
        for (i, outcome) in results.iter().enumerate() {
            let plan = outcome.as_ref().unwrap();
            assert_eq!(render(plan), expected[i], "jobs={jobs}, request {i}");
        }
    }
}

#[test]
fn warmed_cache_returns_pointer_equal_plans_and_counts_hits() {
    let cache = PlanCache::shared();
    let requests: Vec<PlanRequest> =
        table2_ratios().into_iter().map(|ratio| PlanRequest::new(ratio, 20)).collect();
    let options =
        BatchOptions::new().with_jobs(NonZeroUsize::new(4).unwrap()).with_cache(Arc::clone(&cache));
    let cold: Vec<_> = plan_batch(&requests, &options).into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(cache.len(), requests.len());

    // The warm pass runs under the recorder so the hits are observable.
    let obs = dmf_obs::global();
    let was_enabled = obs.is_enabled();
    obs.set_enabled(true);
    let hits_before = dmf_obs::MetricsReport::from_recorder(obs).value("cache.hits").unwrap_or(0);
    let warm: Vec<_> = plan_batch(&requests, &options).into_iter().map(|r| r.unwrap()).collect();
    let hits_after = dmf_obs::MetricsReport::from_recorder(obs).value("cache.hits").unwrap_or(0);
    obs.set_enabled(was_enabled);

    for (c, w) in cold.iter().zip(&warm) {
        assert!(Arc::ptr_eq(c, w), "warm plan must be the cached allocation");
    }
    // Other tests may also hit caches concurrently, so the counter is
    // checked as a lower bound.
    assert!(
        hits_after >= hits_before + requests.len() as u64,
        "expected >= {} new cache.hits, saw {hits_before} -> {hits_after}",
        requests.len()
    );
    assert_eq!(cache.len(), requests.len(), "warm pass must not grow the cache");
}

#[test]
fn cached_plans_stay_clean_under_the_static_verifier() {
    let cache = PlanCache::shared();
    let requests: Vec<PlanRequest> = table2_ratios()
        .into_iter()
        .map(|ratio| {
            PlanRequest::new(ratio, 16).with_config(EngineConfig::default().with_storage_limit(5))
        })
        .collect();
    let options = BatchOptions::new().with_cache(Arc::clone(&cache));
    // Warm, then read everything back through the cache.
    for outcome in plan_batch(&requests, &options) {
        outcome.unwrap();
    }
    for outcome in plan_batch(&requests, &options) {
        let plan = outcome.unwrap();
        let report = plan.static_check();
        assert!(report.is_clean(), "cached plan fails dmf-check:\n{}", report.table());
    }
}
