//! Contention coverage for the sharded plan cache:
//!
//! * a loom-style stress test — hand-scheduled worker threads replaying
//!   deterministic op scripts (fixed `dmf-rng` seeds, barrier-aligned
//!   phases) — asserting `hits + misses == total lookups` and that the
//!   reported occupancy never exceeds the capacity;
//! * `plan_batch` output byte-identical at jobs 1/2/4/8 against a small
//!   sharded cache under eviction pressure;
//! * exact eviction accounting when the capacity is smaller than the
//!   requested shard count (the shard clamp).

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_engine::{
    plan_batch, BatchOptions, EngineConfig, PlanCache, PlanKey, PlanRequest, StreamPlan,
    StreamingEngine,
};
use dmf_ratio::TargetRatio;
use dmf_rng::{Rng, SeedableRng, StdRng};
use std::num::NonZeroUsize;
use std::sync::{Arc, Barrier};

fn pcr_d4() -> TargetRatio {
    TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
}

/// The five Table 2 bioprotocol ratios (Ex.1–Ex.5, all `L = 256`).
fn table2_ratios() -> Vec<TargetRatio> {
    [
        vec![26, 21, 2, 2, 3, 3, 199],
        vec![128, 123, 5],
        vec![25, 5, 5, 5, 5, 13, 13, 25, 1, 159],
        vec![9, 17, 26, 9, 195],
        vec![57, 28, 6, 6, 6, 3, 150],
    ]
    .into_iter()
    .map(|parts| TargetRatio::new(parts).unwrap())
    .collect()
}

/// A plan's full observable surface: summary line, inputs, and per-pass
/// forest/schedule figures.
fn render(plan: &StreamPlan) -> String {
    let mut out = format!("{plan}\nI[] = {:?}\n", plan.inputs);
    for pass in &plan.passes {
        out.push_str(&format!(
            "pass: D'={} Tc={} q={} nodes={}\n",
            pass.demand,
            pass.cycles(),
            pass.storage_units(),
            pass.forest.node_count()
        ));
    }
    out
}

#[test]
fn seeded_thread_stress_accounts_every_lookup() {
    const THREADS: usize = 4;
    const PHASES: usize = 8;
    const OPS_PER_PHASE: usize = 32;
    const KEY_UNIVERSE: u64 = 32;

    // Capacity 16 over 4 shards with 32 live keys: constant eviction
    // pressure on every shard.
    let cache = PlanCache::shared_with_capacity_and_shards(16, 4);
    let config = EngineConfig::default();
    // One plan allocation serves every key: the accounting under test is
    // independent of plan content.
    let plan =
        Arc::new(StreamingEngine::new(config).plan(&pcr_d4(), 20).expect("PCR d4 must plan"));
    // The barrier aligns all threads at phase boundaries, so every phase
    // genuinely interleaves all four scripts instead of letting one
    // thread race ahead and finish alone.
    let barrier = Barrier::new(THREADS);

    let per_thread: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let cache = Arc::clone(&cache);
                let plan = Arc::clone(&plan);
                let barrier = &barrier;
                scope.spawn(move || {
                    // The script is fully determined by the seed: replays
                    // of this test explore the same op sequences.
                    let mut rng = StdRng::seed_from_u64(0xDAC2_0140 + thread as u64);
                    let (mut hits, mut misses) = (0u64, 0u64);
                    for _ in 0..PHASES {
                        barrier.wait();
                        for _ in 0..OPS_PER_PHASE {
                            let demand = rng.gen_range(1..=KEY_UNIVERSE);
                            let key = PlanKey::new(&config, &pcr_d4(), demand);
                            if cache.lookup(&key).is_some() {
                                hits += 1;
                            } else {
                                misses += 1;
                                cache.store(key, Arc::clone(&plan));
                            }
                        }
                        // Mid-run occupancy check from every thread: the
                        // stats path itself asserts `len <= capacity`.
                        let stats = cache.stats();
                        assert!(
                            stats.len <= stats.capacity,
                            "phase snapshot over capacity: {stats:?}"
                        );
                    }
                    (hits, misses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress worker panicked")).collect()
    });

    let local_hits: u64 = per_thread.iter().map(|(h, _)| h).sum();
    let local_misses: u64 = per_thread.iter().map(|(_, m)| m).sum();
    let total_lookups = (THREADS * PHASES * OPS_PER_PHASE) as u64;
    assert_eq!(local_hits + local_misses, total_lookups);

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        total_lookups,
        "cache counters must account for every lookup: {stats:?}"
    );
    assert_eq!((stats.hits, stats.misses), (local_hits, local_misses));
    assert!(stats.len <= stats.capacity, "final occupancy over capacity: {stats:?}");
    assert_eq!(stats.len, cache.len());
}

#[test]
fn plan_batch_is_byte_identical_across_jobs_under_eviction_pressure() {
    // 10 distinct keys against an 8-slot, 4-shard cache: some shard must
    // evict mid-batch, and the outputs still cannot change.
    let requests: Vec<PlanRequest> = table2_ratios()
        .into_iter()
        .flat_map(|ratio| [12u64, 32].map(|demand| PlanRequest::new(ratio.clone(), demand)))
        .collect();
    let expected: Vec<String> = requests
        .iter()
        .map(|r| render(&StreamingEngine::new(r.config).plan(&r.target, r.demand).unwrap()))
        .collect();
    for jobs in [1usize, 2, 4, 8] {
        let cache = PlanCache::shared_with_capacity_and_shards(8, 4);
        let options =
            BatchOptions::new().with_jobs(NonZeroUsize::new(jobs).unwrap()).with_cache(cache);
        let results = plan_batch(&requests, &options);
        assert_eq!(results.len(), requests.len());
        for (i, outcome) in results.iter().enumerate() {
            let plan = outcome.as_ref().unwrap();
            assert_eq!(render(plan), expected[i], "jobs={jobs}, request {i}");
        }
    }
}

#[test]
fn eviction_accounting_is_exact_when_capacity_is_below_the_shard_count() {
    // Eight shards requested, two slots available: the shard count clamps
    // to the capacity so no shard is created with zero slots.
    let cache = PlanCache::with_capacity_and_shards(2, 8);
    assert_eq!(cache.shard_count(), 2);
    assert_eq!(cache.shard_capacities(), vec![1, 1]);

    let config = EngineConfig::default();
    let plan =
        Arc::new(StreamingEngine::new(config).plan(&pcr_d4(), 20).expect("PCR d4 must plan"));
    const STORES: u64 = 40;
    for demand in 1..=STORES {
        cache.store(PlanKey::new(&config, &pcr_d4(), demand), Arc::clone(&plan));
        assert!(cache.len() <= 2, "cache exceeded its capacity");
    }
    let stats = cache.stats();
    // Single-slot shards retain exactly one plan each once touched, so
    // the books must balance store-for-store.
    assert!(stats.len >= 1 && stats.len <= 2);
    assert_eq!(stats.evictions, STORES - stats.len as u64);
    // The survivor of each shard is that shard's most recent store.
    let survivors: u64 = (1..=STORES)
        .filter(|&demand| cache.lookup(&PlanKey::new(&config, &pcr_d4(), demand)).is_some())
        .count() as u64;
    assert_eq!(survivors, stats.len as u64);
}
