//! Registry-dispatch guarantees of the pluggable pipeline:
//!
//! * every registered (algorithm, scheduler) pair plans the paper's five
//!   Table 2 protocols byte-identically whether the config is built from
//!   registry-resolved ids or from the legacy enums;
//! * each `MetaStage`-wrapped stage emits exactly one span per run under
//!   its legacy name, correctly parented (`stage_build_forest` and
//!   `stage_schedule` nest under `stage_split_passes`);
//! * a brand-new algorithm registered from the outside — no edits to
//!   `BaseAlgorithm`, `SchedulerKind` or the engine — reaches
//!   `PlanRequest::with_algorithm` and `plan_batch`.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_engine::{plan_batch, BatchOptions, EngineConfig, PlanRequest, StreamingEngine};
use dmf_mixalgo::{
    AlgorithmEntry, AlgorithmId, BaseAlgorithm, Capabilities, MinMix, MixAlgoError,
    MixingAlgorithm, MixingAlgorithmRegistry, Template,
};
use dmf_ratio::TargetRatio;
use dmf_sched::{SchedulerId, SchedulerKind, SchedulerRegistry};

/// The five Table 2 bioprotocol ratios (Ex.1–Ex.5, all `L = 256`).
fn table2_ratios() -> Vec<TargetRatio> {
    [
        vec![26, 21, 2, 2, 3, 3, 199],
        vec![128, 123, 5],
        vec![25, 5, 5, 5, 5, 13, 13, 25, 1, 159],
        vec![9, 17, 26, 9, 195],
        vec![57, 28, 6, 6, 6, 3, 150],
    ]
    .into_iter()
    .map(|parts| TargetRatio::new(parts).unwrap())
    .collect()
}

/// A plan's full observable surface: summary line, inputs, and per-pass
/// forest/schedule figures.
fn render(plan: &dmf_engine::StreamPlan) -> String {
    let mut out = format!("{plan}\nI[] = {:?}\n", plan.inputs);
    for pass in &plan.passes {
        out.push_str(&format!(
            "pass: D'={} Tc={} q={} nodes={}\n",
            pass.demand,
            pass.cycles(),
            pass.storage_units(),
            pass.forest.node_count()
        ));
    }
    out
}

#[test]
fn registry_dispatch_is_byte_identical_to_enum_dispatch() {
    for algorithm in BaseAlgorithm::ALL {
        for scheduler in SchedulerKind::ALL {
            let via_enum =
                EngineConfig::default().with_algorithm(algorithm).with_scheduler(scheduler);
            let algo_key = AlgorithmId::from(algorithm).key();
            let sched_key = SchedulerId::from(scheduler).key();
            let via_registry = EngineConfig::default()
                .with_algorithm(MixingAlgorithmRegistry::resolve(algo_key).unwrap())
                .with_scheduler(SchedulerRegistry::resolve(sched_key).unwrap());
            assert_eq!(via_enum, via_registry);
            for ratio in table2_ratios() {
                let enum_plan = StreamingEngine::new(via_enum).plan(&ratio, 32).unwrap();
                let registry_plan = StreamingEngine::new(via_registry).plan(&ratio, 32).unwrap();
                assert_eq!(
                    render(&enum_plan),
                    render(&registry_plan),
                    "{algo_key}+{sched_key} diverged on {:?}",
                    ratio.parts()
                );
            }
        }
    }
}

#[test]
fn every_stage_emits_one_span_under_its_legacy_name() {
    let recorder = dmf_obs::global();
    recorder.set_enabled(true);
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let root = recorder.span("test_root");
    let (trace_id, root_id) = root.ids().unwrap();
    StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
    drop(root);
    let spans = recorder.trace_spans(trace_id);

    let find = |name: &str| -> Vec<&dmf_obs::SpanRecord> {
        spans.iter().filter(|s| s.name == name).collect()
    };
    // Exactly one span per stage, under the legacy stage names.
    let engine_plan = find("engine_plan");
    assert_eq!(engine_plan.len(), 1, "{spans:#?}");
    for stage in ["stage_build_tree", "stage_build_forest", "stage_schedule", "stage_split_passes"]
    {
        assert_eq!(find(stage).len(), 1, "expected exactly one {stage} span\n{spans:#?}");
    }
    // Parenting: engine_plan under the root; build_tree and split_passes
    // under engine_plan; the per-pass forest/schedule stages under
    // split_passes (SplitPasses drives them through their own MetaStage).
    assert_eq!(engine_plan[0].parent_id, root_id);
    let engine_id = engine_plan[0].span_id;
    assert_eq!(find("stage_build_tree")[0].parent_id, engine_id);
    let split = find("stage_split_passes")[0];
    assert_eq!(split.parent_id, engine_id);
    assert_eq!(find("stage_build_forest")[0].parent_id, split.span_id);
    assert_eq!(find("stage_schedule")[0].parent_id, split.span_id);
    // The base-tree construction span stays nested inside its stage.
    assert_eq!(
        find("mixalgo_build").first().map(|s| s.parent_id),
        Some(find("stage_build_tree")[0].span_id)
    );
}

#[test]
fn per_stage_counters_track_runs() {
    let recorder = dmf_obs::global();
    recorder.set_enabled(true);
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let before = recorder.counter("stage_build_tree");
    StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
    assert_eq!(recorder.counter("stage_build_tree"), before + 1);
}

/// A test-only algorithm that wraps MinMix under a new name — the
/// "register an algorithm without touching the engine" walkthrough of
/// DESIGN.md §17, exercised end to end.
struct MirrorMix;

impl MixingAlgorithm for MirrorMix {
    fn name(&self) -> &'static str {
        "MIRROR"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SDST_ONLY
    }

    fn build_template(&self, target: &TargetRatio) -> Result<Template, MixAlgoError> {
        MinMix.build_template(target)
    }
}

#[test]
fn an_outside_algorithm_reaches_the_engine_through_the_registry() {
    static MIRROR: MirrorMix = MirrorMix;
    MixingAlgorithmRegistry::register(AlgorithmEntry {
        id: AlgorithmId::new("mirror", "MIRROR", &MIRROR),
        description: "test-only MinMix mirror",
        aliases: &["looking-glass"],
    })
    .unwrap();

    // Resolvable by key and alias; listed alongside the seeded baselines.
    let id = MixingAlgorithmRegistry::resolve("looking-glass").unwrap();
    assert_eq!(id.key(), "mirror");
    assert!(MixingAlgorithmRegistry::entries().iter().any(|e| e.id.key() == "mirror"));

    // Reaches plan_batch through PlanRequest::with_algorithm, and plans
    // byte-identically to the MinMix it mirrors.
    let target = TargetRatio::new(vec![26, 21, 2, 2, 3, 3, 199]).unwrap();
    let request = PlanRequest::new(target.clone(), 32).with_algorithm("mirror").unwrap();
    assert_eq!(request.config.algorithm.key(), "mirror");
    let plans = plan_batch(&[request], &BatchOptions::new());
    let mirrored = plans.into_iter().next().unwrap().unwrap();
    let minmix = StreamingEngine::new(EngineConfig::default()).plan(&target, 32).unwrap();
    assert_eq!(render(&mirrored), render(&minmix));

    // Unknown names keep failing typed, now listing the newcomer too.
    let err = PlanRequest::new(target, 32).with_algorithm("nonesuch").unwrap_err();
    match err {
        dmf_engine::EngineError::UnknownAlgorithm { name, known } => {
            assert_eq!(name, "nonesuch");
            assert!(known.contains(&"mirror") && known.contains(&"mm"));
        }
        other => panic!("expected UnknownAlgorithm, got {other:?}"),
    }
}
