//! Multi-threaded span-tree stress: N threads hammering one recorder must
//! yield a well-formed forest (unique IDs, no orphan parents, traces that
//! never leak across threads) and explicit cross-thread adoption must
//! stitch worker spans into the originating trace.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_obs::{Recorder, SpanRecord};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const THREADS: usize = 8;
const ITERATIONS: usize = 50;

fn assert_well_formed(spans: &[SpanRecord]) -> HashMap<u64, SpanRecord> {
    let mut by_id: HashMap<u64, SpanRecord> = HashMap::new();
    for s in spans {
        assert_ne!(s.span_id, 0, "span IDs are never 0");
        assert!(by_id.insert(s.span_id, s.clone()).is_none(), "duplicate span_id {}", s.span_id);
    }
    for s in spans {
        if s.parent_id == 0 {
            assert_eq!(s.trace_id, s.span_id, "a root's trace_id is its own span_id");
        } else {
            let parent = by_id
                .get(&s.parent_id)
                .unwrap_or_else(|| panic!("orphan parent {} for span {}", s.parent_id, s.name));
            assert_eq!(parent.trace_id, s.trace_id, "child and parent share a trace");
        }
    }
    by_id
}

#[test]
fn concurrent_span_forest_is_well_formed() {
    let rec = Arc::new(Recorder::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let rec = Arc::clone(&rec);
            scope.spawn(move || {
                for _ in 0..ITERATIONS {
                    let outer = rec.span("outer");
                    let (outer_trace, outer_id) = outer.ids().unwrap();
                    {
                        let mid = rec.span("mid");
                        let (mid_trace, mid_id) = mid.ids().unwrap();
                        assert_eq!(mid_trace, outer_trace);
                        assert_ne!(mid_id, outer_id);
                        let _leaf = rec.span("leaf");
                    }
                }
            });
        }
    });
    let snap = rec.snapshot();
    assert_eq!(snap.spans.len(), THREADS * ITERATIONS * 3);
    assert_eq!(snap.spans_dropped, 0);
    let by_id = assert_well_formed(&snap.spans);

    // Every iteration forms its own three-level trace; threads never bleed
    // into each other's stacks, so each trace holds exactly 3 spans with
    // a single root and consistent thread ownership.
    let mut traces: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for s in &snap.spans {
        traces.entry(s.trace_id).or_default().push(s);
    }
    assert_eq!(traces.len(), THREADS * ITERATIONS);
    for (trace_id, members) in &traces {
        assert_eq!(members.len(), 3, "trace {trace_id} has {} spans", members.len());
        let roots: Vec<_> = members.iter().filter(|s| s.parent_id == 0).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "outer");
        let tids: HashSet<u32> = members.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 1, "one trace never spans threads without adoption");
        let leaf = members.iter().find(|s| s.name == "leaf").unwrap();
        let mid = members.iter().find(|s| s.name == "mid").unwrap();
        assert_eq!(leaf.parent_id, mid.span_id);
        assert_eq!(by_id[&mid.parent_id].name, "outer");
    }
}

#[test]
fn adopted_context_stitches_worker_spans_into_one_trace() {
    let rec = Arc::new(Recorder::new());
    let root = rec.span("request_root");
    let (trace_id, root_id) = root.ids().unwrap();
    let ctx = rec.trace_context(trace_id, root_id);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let rec = Arc::clone(&rec);
            let ctx = ctx.clone();
            scope.spawn(move || {
                let _adopted = ctx.enter();
                let worker = rec.span("worker");
                assert_eq!(worker.ids().unwrap().0, trace_id, "worker joins the trace");
                let _stage = rec.span("stage");
            });
        }
    });
    drop(root);

    let spans = rec.trace_spans(trace_id);
    assert_eq!(spans.len(), 9, "1 root + 4 workers x 2 spans");
    assert_well_formed(&spans);
    let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
    assert_eq!(workers.len(), 4);
    for w in &workers {
        assert_eq!(w.parent_id, root_id, "workers hang directly under the root");
    }
    let stages: Vec<_> = spans.iter().filter(|s| s.name == "stage").collect();
    let worker_ids: HashSet<u64> = workers.iter().map(|w| w.span_id).collect();
    for s in &stages {
        assert!(worker_ids.contains(&s.parent_id), "stages nest under their worker");
    }
    // Four worker threads plus the main thread recorded into one tree.
    let tids: HashSet<u32> = spans.iter().map(|s| s.tid).collect();
    assert!(tids.len() >= 2, "adoption crosses threads");

    // After the guards dropped, the spawning threads' stacks are clean:
    // a fresh span on this thread starts a brand-new trace.
    {
        let fresh = rec.span("fresh");
        let (fresh_trace, _) = fresh.ids().unwrap();
        assert_ne!(fresh_trace, trace_id);
    }
}
