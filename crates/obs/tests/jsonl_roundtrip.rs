//! Round-trips a recorded session through the hand-rolled JSONL serializer
//! and the minimal parser: escaping, stability of field ordering, and
//! value fidelity.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_obs::json::{self, Json};
use dmf_obs::Recorder;
use std::time::Duration;

fn record_session() -> Recorder {
    let rec = Recorder::new();
    {
        let _plan = rec.span("engine_plan");
        let _sched = rec.span("sched_srs");
    }
    rec.count("sim.mix_splits", 27);
    rec.count("sim.droplet_hops", 413);
    rec.gauge_set("plan.storage_peak", 5);
    rec.record_duration("route.astar", Duration::from_micros(42));
    rec
}

#[test]
fn session_roundtrips_through_jsonl() {
    let rec = record_session();
    let mut wire = Vec::new();
    rec.export_jsonl(&mut wire).unwrap();
    let text = String::from_utf8(wire).unwrap();
    let lines = json::parse_lines(&text).unwrap();

    // meta, 2 spans, 2 counters, 1 gauge, 3 histograms (2 span-fed + 1 direct).
    assert_eq!(lines.len(), 9, "unexpected line count in:\n{text}");
    assert_eq!(lines[0].get("type").unwrap().as_str(), Some("meta"));
    assert_eq!(lines[0].get("version").unwrap().as_u64(), Some(2));
    assert_eq!(lines[0].get("spans_dropped").unwrap().as_u64(), Some(0));

    let spans: Vec<&Json> =
        lines.iter().filter(|l| l.get("type").and_then(Json::as_str) == Some("span")).collect();
    assert_eq!(spans.len(), 2);
    // Inner span (sched_srs) finishes first; both carry offsets + durations.
    assert_eq!(spans[0].get("name").unwrap().as_str(), Some("sched_srs"));
    assert_eq!(spans[1].get("name").unwrap().as_str(), Some("engine_plan"));
    for s in &spans {
        assert!(s.get("start_ns").unwrap().as_u64().is_some());
        assert!(s.get("dur_ns").unwrap().as_u64().is_some());
    }

    // Trace-tree fields: 16-hex-digit ID strings that decode back to the
    // in-memory records, with the nesting intact on the wire.
    let hex_id = |s: &Json, key: &str| {
        let text = s.get(key).unwrap().as_str().unwrap();
        assert_eq!(text.len(), 16, "{key} must be 16 hex digits, got {text:?}");
        u64::from_str_radix(text, 16).unwrap()
    };
    let snap = rec.snapshot();
    let inner = &snap.spans[0];
    assert_eq!(hex_id(spans[0], "span_id"), inner.span_id);
    assert_eq!(hex_id(spans[0], "trace_id"), inner.trace_id);
    assert_eq!(hex_id(spans[0], "parent_id"), inner.parent_id);
    assert_eq!(spans[0].get("tid").unwrap().as_u64(), Some(u64::from(inner.tid)));
    // sched_srs nests under engine_plan; both share the root's trace.
    assert_eq!(hex_id(spans[0], "parent_id"), hex_id(spans[1], "span_id"));
    assert_eq!(hex_id(spans[0], "trace_id"), hex_id(spans[1], "trace_id"));
    assert_eq!(hex_id(spans[1], "parent_id"), 0);

    let counter = |name: &str| {
        lines
            .iter()
            .find(|l| {
                l.get("type").and_then(Json::as_str) == Some("counter")
                    && l.get("name").and_then(Json::as_str) == Some(name)
            })
            .and_then(|l| l.get("value").unwrap().as_u64())
    };
    assert_eq!(counter("sim.mix_splits"), Some(27));
    assert_eq!(counter("sim.droplet_hops"), Some(413));

    let gauge =
        lines.iter().find(|l| l.get("type").and_then(Json::as_str) == Some("gauge")).unwrap();
    assert_eq!(gauge.get("name").unwrap().as_str(), Some("plan.storage_peak"));
    assert_eq!(gauge.get("value").unwrap().as_u64(), Some(5));

    let hist =
        lines.iter().find(|l| l.get("name").and_then(Json::as_str) == Some("route.astar")).unwrap();
    assert_eq!(hist.get("type").unwrap().as_str(), Some("hist"));
    assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
    assert_eq!(hist.get("sum_ns").unwrap().as_u64(), Some(42_000));
    match hist.get("buckets").unwrap() {
        Json::Arr(buckets) => {
            assert_eq!(buckets.len(), 1);
            match &buckets[0] {
                Json::Arr(pair) => assert_eq!(pair[1].as_u64(), Some(1)),
                other => panic!("bucket should be a pair, got {other:?}"),
            }
        }
        other => panic!("buckets should be an array, got {other:?}"),
    }
}

#[test]
fn field_order_is_stable() {
    let rec = record_session();
    let mut wire = Vec::new();
    rec.export_jsonl(&mut wire).unwrap();
    let text = String::from_utf8(wire).unwrap();
    for line in text.lines() {
        // The writer leads every record with its type then its name; this
        // ordering is part of the schema (documented in DESIGN.md) so
        // stream consumers can dispatch on a prefix.
        assert!(line.starts_with("{\"type\":\""), "line: {line}");
        if !line.contains("\"meta\"") {
            let after_type = line.split("\"name\":").nth(1);
            assert!(after_type.is_some(), "records carry a name: {line}");
        }
    }
    // Two exports of the same session are byte-identical except the meta
    // elapsed_ns line.
    let mut wire2 = Vec::new();
    rec.export_jsonl(&mut wire2).unwrap();
    let text2 = String::from_utf8(wire2).unwrap();
    let tail = |t: &str| t.lines().skip(1).collect::<Vec<_>>().join("\n");
    assert_eq!(tail(&text), tail(&text2));
}

#[test]
fn hostile_names_escape_and_roundtrip() {
    let rec = Recorder::new();
    let hostile = "weird \"name\"\\ with\nnewline\tand \u{1} ctrl";
    rec.count(hostile, 7);
    let mut wire = Vec::new();
    rec.export_jsonl(&mut wire).unwrap();
    let text = String::from_utf8(wire).unwrap();
    // Every record stays on one physical line even with raw newlines in
    // the metric name.
    assert_eq!(text.lines().count(), 2);
    let lines = json::parse_lines(&text).unwrap();
    assert_eq!(lines[1].get("name").unwrap().as_str(), Some(hostile));
    assert_eq!(lines[1].get("value").unwrap().as_u64(), Some(7));
}

#[test]
fn export_to_path_creates_directories() {
    let dir = std::env::temp_dir().join("dmf_obs_test_export");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("nested").join("session.jsonl");
    let rec = record_session();
    rec.export_jsonl_path(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(json::parse_lines(&text).unwrap().len() > 1);
    let _ = std::fs::remove_dir_all(&dir);
}
