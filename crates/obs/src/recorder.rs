use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of fixed power-of-two buckets in a [`Histogram`].
pub const HIST_BUCKETS: usize = 48;

/// A fixed-bucket latency histogram over nanoseconds.
///
/// Bucket `i` counts samples `v` with `2^(i-1) <= v < 2^i` (bucket 0 holds
/// `v == 0`), so the whole `u64` nanosecond range fits in
/// [`HIST_BUCKETS`] buckets at 2× resolution — enough to tell a 2µs
/// schedule from a 2ms one without configuring bounds per metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample (0 when empty).
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; HIST_BUCKETS], count: 0, sum_ns: 0, min_ns: 0, max_ns: 0 }
    }
}

impl Histogram {
    /// The bucket index for a sample.
    pub fn bucket_of(value_ns: u64) -> usize {
        ((64 - value_ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value_ns: u64) {
        self.counts[Self::bucket_of(value_ns)] += 1;
        self.sum_ns += value_ns;
        self.min_ns = if self.count == 0 { value_ns } else { self.min_ns.min(value_ns) };
        self.max_ns = self.max_ns.max(value_ns);
        self.count += 1;
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }
}

/// One finished span: a named phase with its offset from session start and
/// its wall-clock duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (`engine_plan`, `sched_srs`, …).
    pub name: &'static str,
    /// Start offset from the session epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Inner {
    fn new() -> Self {
        Inner {
            epoch: Instant::now(),
            spans: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

/// A thread-safe metric store: spans, counters, gauges and histograms.
///
/// Instrumented hot paths call [`Recorder::span`] / [`Recorder::count`] /
/// [`Recorder::gauge_max`]; each checks one atomic flag first, so a
/// disabled recorder costs a single relaxed load and performs **no
/// allocation** — the contract that lets every crate in the pipeline stay
/// instrumented unconditionally.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder (for injection into tests and embedders).
    pub fn new() -> Self {
        Recorder { enabled: AtomicBool::new(true), inner: Mutex::new(Inner::new()) }
    }

    /// A disabled recorder — what [`crate::global`] starts as.
    pub fn disabled() -> Self {
        Recorder { enabled: AtomicBool::new(false), inner: Mutex::new(Inner::new()) }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording on or off. Enabling does not clear prior data;
    /// call [`Recorder::reset`] for a fresh session.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Clears all recorded data and restarts the session epoch.
    pub fn reset(&self) {
        *self.inner.lock().expect("recorder poisoned") = Inner::new();
    }

    /// Starts a span; dropping the returned guard records it. Inert (and
    /// allocation-free) when the recorder is disabled.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { active: None };
        }
        Span { active: Some((self, name, Instant::now())) }
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn count(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        if let Some(v) = inner.counters.get_mut(name) {
            *v += delta;
        } else {
            inner.counters.insert(name.to_owned(), delta);
        }
    }

    /// The current value of counter `name` (0 when the counter has never
    /// been bumped). Cheaper than [`Recorder::snapshot`] when only one
    /// counter is needed — e.g. a test polling a server's progress.
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().expect("recorder poisoned").counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.gauges.insert(name.to_owned(), value);
    }

    /// Raises gauge `name` to `value` if it is higher than the current
    /// reading — the natural update for peaks such as storage occupancy.
    pub fn gauge_max(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("recorder poisoned");
        if let Some(v) = inner.gauges.get_mut(name) {
            *v = (*v).max(value);
        } else {
            inner.gauges.insert(name.to_owned(), value);
        }
    }

    /// Records a duration sample into histogram `name` without a span.
    pub fn record_duration(&self, name: &str, duration: Duration) {
        if !self.is_enabled() {
            return;
        }
        let ns = duration.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.histograms.entry(name.to_owned()).or_default().record(ns);
    }

    fn finish_span(&self, name: &'static str, started: Instant) {
        if !self.is_enabled() {
            return;
        }
        let dur_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let start_ns =
            started.duration_since(inner.epoch).as_nanos().min(u128::from(u64::MAX)) as u64;
        inner.spans.push(SpanRecord { name, start_ns, dur_ns });
        inner.histograms.entry(format!("span.{name}")).or_default().record(dur_ns);
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("recorder poisoned");
        Snapshot {
            elapsed_ns: inner.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            spans: inner.spans.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Serializes the current session as JSON lines (see
    /// [`Snapshot::write_jsonl`] for the schema).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn export_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        self.snapshot().write_jsonl(w)
    }

    /// Writes the session's JSONL to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn export_jsonl_path(&self, path: &std::path::Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.export_jsonl(&mut file)
    }
}

/// A guard returned by [`Recorder::span`]; records the span when dropped.
#[must_use = "a span records when the guard drops; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct Span<'a> {
    active: Option<(&'a Recorder, &'static str, Instant)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((recorder, name, started)) = self.active.take() {
            recorder.finish_span(name, started);
        }
    }
}

/// An immutable copy of one recorded session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Nanoseconds from session epoch to the snapshot.
    pub elapsed_ns: u64,
    /// Finished spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name (spans feed `span.<name>`).
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Writes the session as JSON lines with a stable schema and field
    /// order:
    ///
    /// ```text
    /// {"type":"meta","version":1,"elapsed_ns":…}
    /// {"type":"span","name":…,"start_ns":…,"dur_ns":…}
    /// {"type":"counter","name":…,"value":…}
    /// {"type":"gauge","name":…,"value":…}
    /// {"type":"hist","name":…,"count":…,"sum_ns":…,"min_ns":…,"max_ns":…,"buckets":[[i,c],…]}
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        use crate::json::escape;
        writeln!(w, "{{\"type\":\"meta\",\"version\":1,\"elapsed_ns\":{}}}", self.elapsed_ns)?;
        for s in &self.spans {
            writeln!(
                w,
                "{{\"type\":\"span\",\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                escape(s.name),
                s.start_ns,
                s.dur_ns
            )?;
        }
        for (name, value) in &self.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                escape(name)
            )?;
        }
        for (name, value) in &self.gauges {
            writeln!(w, "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}", escape(name))?;
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> =
                h.nonzero_buckets().iter().map(|(i, c)| format!("[{i},{c}]")).collect();
            writeln!(
                w,
                "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[{}]}}",
                escape(name),
                h.count,
                h.sum_ns,
                h.min_ns,
                h.max_ns,
                buckets.join(",")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_peak() {
        let rec = Recorder::new();
        rec.count("mixes", 3);
        rec.count("mixes", 4);
        rec.gauge_max("peak", 5);
        rec.gauge_max("peak", 2);
        rec.gauge_set("exact", 9);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["mixes"], 7);
        assert_eq!(snap.gauges["peak"], 5);
        assert_eq!(snap.gauges["exact"], 9);
        assert_eq!(rec.counter("mixes"), 7);
        assert_eq!(rec.counter("never"), 0);
    }

    #[test]
    fn spans_record_duration_and_histogram() {
        let rec = Recorder::new();
        {
            let _g = rec.span("phase_a");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "phase_a");
        assert!(snap.spans[0].dur_ns >= 1_000_000, "slept 2ms");
        let h = &snap.histograms["span.phase_a"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum_ns, snap.spans[0].dur_ns);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        {
            let _g = rec.span("never");
        }
        rec.count("never", 1);
        rec.gauge_max("never", 1);
        rec.record_duration("never", Duration::from_secs(1));
        let snap = rec.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn reset_clears_the_session() {
        let rec = Recorder::new();
        rec.count("x", 1);
        rec.reset();
        assert!(rec.snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count, 3);
        assert_eq!(h.min_ns, 0);
        assert_eq!(h.max_ns, 1000);
        assert_eq!(h.mean_ns(), 334);
        assert_eq!(h.nonzero_buckets().len(), 3);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let rec = std::sync::Arc::new(Recorder::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        rec.count("shared", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.snapshot().counters["shared"], 8000);
    }
}
