use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of fixed power-of-two buckets in a [`Histogram`].
pub const HIST_BUCKETS: usize = 48;

/// How many finished spans a [`Recorder`] retains before evicting the
/// oldest — the bound that keeps a long-lived server's trace store from
/// growing without limit. Evictions are counted in
/// [`Snapshot::spans_dropped`].
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// A fixed-bucket latency histogram over nanoseconds.
///
/// Bucket `i` counts samples `v` with `2^(i-1) <= v < 2^i` (bucket 0 holds
/// `v == 0`), so the whole `u64` nanosecond range fits in
/// [`HIST_BUCKETS`] buckets at 2× resolution — enough to tell a 2µs
/// schedule from a 2ms one without configuring bounds per metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample (0 when empty).
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; HIST_BUCKETS], count: 0, sum_ns: 0, min_ns: 0, max_ns: 0 }
    }
}

impl Histogram {
    /// The bucket index for a sample.
    pub fn bucket_of(value_ns: u64) -> usize {
        ((64 - value_ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value_ns: u64) {
        self.counts[Self::bucket_of(value_ns)] += 1;
        self.sum_ns += value_ns;
        self.min_ns = if self.count == 0 { value_ns } else { self.min_ns.min(value_ns) };
        self.max_ns = self.max_ns.max(value_ns);
        self.count += 1;
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }

    /// Estimates the `q`-quantile (`0.0 < q <= 1.0`) from the fixed
    /// power-of-two buckets, interpolating linearly inside the bucket that
    /// holds the rank and clamping to the exact observed `[min, max]`
    /// range. Returns 0 on an empty histogram.
    ///
    /// Buckets are 2× wide, so the estimate is within a factor of two of
    /// the true quantile — sufficient to tell a 50µs p50 from a 5ms p99,
    /// which is what a latency report needs.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the quantile sample, 1-based: ceil(q * count).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Bucket i spans [2^(i-1), 2^i); interpolate by the
                // fraction of the bucket's samples below the rank.
                let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    0u64
                } else if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                let into = (rank - seen).saturating_sub(1) as f64;
                let frac = if c > 1 { into / (c - 1) as f64 } else { 0.0 };
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est as u64).clamp(self.min_ns, self.max_ns);
            }
            seen += c;
        }
        self.max_ns
    }
}

/// One finished span: a named phase with its position in a trace tree, its
/// offset from session start and its wall-clock duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (`engine_plan`, `sched_srs`, …).
    pub name: &'static str,
    /// The trace this span belongs to — every span in one request tree
    /// shares it. A root span's `trace_id` equals its `span_id`.
    pub trace_id: u64,
    /// This span's unique identifier (FNV-mixed sequence number, never 0).
    pub span_id: u64,
    /// The enclosing span's `span_id`, or 0 for a root span.
    pub parent_id: u64,
    /// Ordinal of the thread that recorded the span (stable per thread,
    /// assigned on first use; used as the Chrome-trace `tid`).
    pub tid: u32,
    /// Start offset from the session epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

/// Process-wide span-ID sequence; mixed through FNV so IDs are
/// well-distributed yet fully deterministic (no random per-process seed).
static NEXT_SPAN_SEQ: AtomicU64 = AtomicU64::new(1);
/// Process-wide thread ordinal sequence (0 is reserved for "unassigned").
static NEXT_THREAD_SEQ: AtomicU32 = AtomicU32::new(1);

fn next_span_id() -> u64 {
    let seq = NEXT_SPAN_SEQ.fetch_add(1, Ordering::Relaxed);
    dmf_hash::mix64(seq).max(1)
}

/// A stable small ordinal for the calling thread, assigned on first use.
pub fn thread_ordinal() -> u32 {
    THREAD_ORDINAL.with(|cell| {
        let current = cell.get();
        if current != 0 {
            return current;
        }
        let assigned = NEXT_THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
        cell.set(assigned);
        assigned
    })
}

/// One level of the thread-local span stack: the ids a child span started
/// on this thread would inherit.
#[derive(Debug, Clone, Copy)]
struct Frame {
    trace_id: u64,
    span_id: u64,
}

thread_local! {
    /// The open-span stack of the current thread; the top frame is the
    /// parent of the next span started here.
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// When set, `span!` records into this recorder instead of the global
    /// one — how a serve worker redirects library spans into the server's
    /// private recorder for the duration of one job.
    static SINK: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
    static THREAD_ORDINAL: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: VecDeque<SpanRecord>,
    span_capacity: usize,
    spans_dropped: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// Span-duration histograms keyed by the span's static name — no
    /// per-span `String` allocation on the hot path. Merged into
    /// `histograms` as `span.<name>` at snapshot time.
    span_hists: BTreeMap<&'static str, Histogram>,
}

impl Inner {
    fn new(span_capacity: usize) -> Self {
        Inner {
            epoch: Instant::now(),
            spans: VecDeque::new(),
            span_capacity,
            spans_dropped: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            span_hists: BTreeMap::new(),
        }
    }

    fn push_span(&mut self, record: SpanRecord) {
        if self.spans.len() >= self.span_capacity {
            self.spans.pop_front();
            self.spans_dropped += 1;
        }
        self.span_hists.entry(record.name).or_default().record(record.dur_ns);
        self.spans.push_back(record);
    }
}

/// A thread-safe metric store: span trees, counters, gauges and
/// histograms.
///
/// Instrumented hot paths call [`Recorder::span`] / [`Recorder::count`] /
/// [`Recorder::gauge_max`]; each checks one atomic flag first, so a
/// disabled recorder costs a single relaxed load and performs **no
/// allocation** — the contract that lets every crate in the pipeline stay
/// instrumented unconditionally.
///
/// Spans started while another span guard is live on the same thread
/// nest: each carries a `span_id`, its parent's `span_id` and the shared
/// `trace_id` of the outermost span, maintained by a thread-local stack so
/// existing call sites form trees with no code changes. Cross-thread
/// edges are added explicitly with [`crate::TraceContext`].
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder (for injection into tests and embedders).
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner::new(DEFAULT_SPAN_CAPACITY)),
        }
    }

    /// A disabled recorder — what [`crate::global`] starts as.
    pub fn disabled() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner::new(DEFAULT_SPAN_CAPACITY)),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording on or off. Enabling does not clear prior data;
    /// call [`Recorder::reset`] for a fresh session.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Bounds the retained-span window to `capacity` entries (clamped to
    /// at least 1); the oldest spans are evicted beyond it and counted in
    /// [`Snapshot::spans_dropped`]. Long-lived servers use a small window;
    /// one-shot profiling runs keep [`DEFAULT_SPAN_CAPACITY`].
    pub fn set_span_capacity(&self, capacity: usize) {
        self.lock().span_capacity = capacity.max(1);
    }

    /// Clears all recorded data and restarts the session epoch, keeping
    /// the configured span capacity.
    pub fn reset(&self) {
        let mut inner = self.lock();
        let capacity = inner.span_capacity;
        *inner = Inner::new(capacity);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("recorder poisoned")
    }

    /// Starts a span; dropping the returned guard records it. Inert (and
    /// allocation-free, modulo the span stack's amortised capacity) when
    /// the recorder is disabled.
    ///
    /// The span nests under the newest span still open on this thread (or
    /// an adopted [`crate::TraceContext`]); with neither it becomes a
    /// trace root whose `trace_id` is its own `span_id`.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { active: None };
        }
        Span { active: Some(SpanActive::begin(SinkRef::Borrowed(self), name)) }
    }

    /// An adoptable handle rooting future spans (on any thread) under the
    /// `(trace_id, parent_id)` edge, recording into this recorder; see
    /// [`crate::TraceContext::enter`].
    pub fn trace_context(self: &Arc<Self>, trace_id: u64, parent_id: u64) -> crate::TraceContext {
        crate::TraceContext { sink: Some(Arc::clone(self)), trace_id, parent_id }
    }

    /// Records a span from explicit timestamps instead of a guard — how
    /// the serve worker materialises the **queue-wait** span after the
    /// fact: the connection thread stamped `started` at enqueue, the
    /// worker stamps `ended` at dequeue, and the interval becomes a
    /// first-class child of the request root.
    pub fn record_span_at(
        &self,
        name: &'static str,
        trace_id: u64,
        parent_id: u64,
        started: Instant,
        ended: Instant,
    ) {
        if !self.is_enabled() {
            return;
        }
        let span_id = next_span_id();
        let dur_ns = ended.duration_since(started).as_nanos().min(u128::from(u64::MAX)) as u64;
        let tid = thread_ordinal();
        let mut inner = self.lock();
        let start_ns =
            started.duration_since(inner.epoch).as_nanos().min(u128::from(u64::MAX)) as u64;
        inner.push_span(SpanRecord { name, trace_id, span_id, parent_id, tid, start_ns, dur_ns });
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn count(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        if let Some(v) = inner.counters.get_mut(name) {
            *v += delta;
        } else {
            inner.counters.insert(name.to_owned(), delta);
        }
    }

    /// The current value of counter `name` (0 when the counter has never
    /// been bumped). Cheaper than [`Recorder::snapshot`] when only one
    /// counter is needed — e.g. a test polling a server's progress.
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.gauges.insert(name.to_owned(), value);
    }

    /// Raises gauge `name` to `value` if it is higher than the current
    /// reading — the natural update for peaks such as storage occupancy.
    pub fn gauge_max(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        if let Some(v) = inner.gauges.get_mut(name) {
            *v = (*v).max(value);
        } else {
            inner.gauges.insert(name.to_owned(), value);
        }
    }

    /// Records a duration sample into histogram `name` without a span.
    pub fn record_duration(&self, name: &str, duration: Duration) {
        if !self.is_enabled() {
            return;
        }
        let ns = duration.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut inner = self.lock();
        inner.histograms.entry(name.to_owned()).or_default().record(ns);
    }

    fn finish_span(
        &self,
        name: &'static str,
        started: Instant,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let dur_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let tid = thread_ordinal();
        let mut inner = self.lock();
        let start_ns =
            started.duration_since(inner.epoch).as_nanos().min(u128::from(u64::MAX)) as u64;
        inner.push_span(SpanRecord { name, trace_id, span_id, parent_id, tid, start_ns, dur_ns });
    }

    /// The recorded spans belonging to `trace_id`, in start order — the
    /// per-request stage breakdown a serve `plan` response embeds when the
    /// client asks for a trace.
    pub fn trace_spans(&self, trace_id: u64) -> Vec<SpanRecord> {
        let inner = self.lock();
        let mut spans: Vec<SpanRecord> =
            inner.spans.iter().filter(|s| s.trace_id == trace_id).cloned().collect();
        spans.sort_by_key(|s| (s.start_ns, s.span_id));
        spans
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut histograms = inner.histograms.clone();
        for (name, h) in &inner.span_hists {
            histograms.insert(format!("span.{name}"), h.clone());
        }
        Snapshot {
            elapsed_ns: inner.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            spans: inner.spans.iter().cloned().collect(),
            spans_dropped: inner.spans_dropped,
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms,
        }
    }

    /// Serializes the current session as JSON lines (see
    /// [`Snapshot::write_jsonl`] for the schema).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn export_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        self.snapshot().write_jsonl(w)
    }

    /// Writes the session's JSONL to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn export_jsonl_path(&self, path: &std::path::Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.export_jsonl(&mut file)
    }
}

/// Where a live span will record on drop: a borrowed recorder
/// ([`Recorder::span`]) or a shared one (the thread's adopted sink).
#[derive(Debug)]
enum SinkRef<'a> {
    Borrowed(&'a Recorder),
    Shared(Arc<Recorder>),
}

impl SinkRef<'_> {
    fn recorder(&self) -> &Recorder {
        match self {
            SinkRef::Borrowed(r) => r,
            SinkRef::Shared(r) => r,
        }
    }
}

#[derive(Debug)]
struct SpanActive<'a> {
    sink: SinkRef<'a>,
    name: &'static str,
    started: Instant,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
}

impl<'a> SpanActive<'a> {
    fn begin(sink: SinkRef<'a>, name: &'static str) -> Self {
        let span_id = next_span_id();
        let (trace_id, parent_id) = FRAMES.with(|frames| {
            let mut frames = frames.borrow_mut();
            let (trace_id, parent_id) = match frames.last() {
                Some(top) => (top.trace_id, top.span_id),
                None => (span_id, 0),
            };
            frames.push(Frame { trace_id, span_id });
            (trace_id, parent_id)
        });
        SpanActive { sink, name, started: Instant::now(), trace_id, span_id, parent_id }
    }
}

/// Starts a span on the thread's adopted sink recorder if one is set (see
/// [`crate::TraceContext::enter`]), falling back to the [`crate::global`]
/// recorder — the function behind the [`crate::span!`] macro.
pub fn current_span(name: &'static str) -> Span<'static> {
    let sink = SINK.with(|s| s.borrow().clone());
    match sink {
        Some(recorder) => {
            if !recorder.is_enabled() {
                return Span { active: None };
            }
            Span { active: Some(SpanActive::begin(SinkRef::Shared(recorder), name)) }
        }
        None => crate::global().span(name),
    }
}

pub(crate) fn current_sink() -> Option<Arc<Recorder>> {
    SINK.with(|s| s.borrow().clone())
}

pub(crate) fn swap_sink(next: Option<Arc<Recorder>>) -> Option<Arc<Recorder>> {
    SINK.with(|s| s.replace(next))
}

pub(crate) fn current_frame() -> Option<(u64, u64)> {
    FRAMES.with(|frames| frames.borrow().last().map(|f| (f.trace_id, f.span_id)))
}

pub(crate) fn push_frame(trace_id: u64, span_id: u64) {
    FRAMES.with(|frames| frames.borrow_mut().push(Frame { trace_id, span_id }));
}

pub(crate) fn pop_frame(span_id: u64) {
    FRAMES.with(|frames| {
        let mut frames = frames.borrow_mut();
        if let Some(pos) = frames.iter().rposition(|f| f.span_id == span_id) {
            // Truncating also clears frames a leaked inner guard left
            // behind, so one forgotten span cannot corrupt later parents.
            frames.truncate(pos);
        }
    });
}

/// A guard returned by [`Recorder::span`]; records the span when dropped.
#[must_use = "a span records when the guard drops; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct Span<'a> {
    active: Option<SpanActive<'a>>,
}

impl Span<'_> {
    /// The `(trace_id, span_id)` pair of a recording span, or `None` when
    /// the recorder was disabled. Feed these to
    /// [`Recorder::trace_context`] to parent work on another thread under
    /// this span.
    pub fn ids(&self) -> Option<(u64, u64)> {
        self.active.as_ref().map(|a| (a.trace_id, a.span_id))
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            pop_frame(active.span_id);
            active.sink.recorder().finish_span(
                active.name,
                active.started,
                active.trace_id,
                active.span_id,
                active.parent_id,
            );
        }
    }
}

/// An immutable copy of one recorded session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Nanoseconds from session epoch to the snapshot.
    pub elapsed_ns: u64,
    /// Finished spans in completion order (oldest evicted beyond the
    /// recorder's span capacity).
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the bounded window before this snapshot.
    pub spans_dropped: u64,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name (spans feed `span.<name>`).
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Writes the session as JSON lines with a stable schema and field
    /// order:
    ///
    /// ```text
    /// {"type":"meta","version":2,"elapsed_ns":…,"spans_dropped":…}
    /// {"type":"span","name":…,"trace_id":"<16 hex>","span_id":"<16 hex>","parent_id":"<16 hex>","tid":…,"start_ns":…,"dur_ns":…}
    /// {"type":"counter","name":…,"value":…}
    /// {"type":"gauge","name":…,"value":…}
    /// {"type":"hist","name":…,"count":…,"sum_ns":…,"min_ns":…,"max_ns":…,"buckets":[[i,c],…]}
    /// ```
    ///
    /// IDs are 16-hex-digit strings (not JSON numbers) so consumers that
    /// parse numbers as doubles cannot corrupt them; `parent_id` is
    /// `"0000000000000000"` for a root span.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        use crate::json::escape;
        writeln!(
            w,
            "{{\"type\":\"meta\",\"version\":2,\"elapsed_ns\":{},\"spans_dropped\":{}}}",
            self.elapsed_ns, self.spans_dropped
        )?;
        for s in &self.spans {
            writeln!(
                w,
                "{{\"type\":\"span\",\"name\":\"{}\",\"trace_id\":\"{:016x}\",\
                 \"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\",\"tid\":{},\
                 \"start_ns\":{},\"dur_ns\":{}}}",
                escape(s.name),
                s.trace_id,
                s.span_id,
                s.parent_id,
                s.tid,
                s.start_ns,
                s.dur_ns
            )?;
        }
        for (name, value) in &self.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                escape(name)
            )?;
        }
        for (name, value) in &self.gauges {
            writeln!(w, "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}", escape(name))?;
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> =
                h.nonzero_buckets().iter().map(|(i, c)| format!("[{i},{c}]")).collect();
            writeln!(
                w,
                "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[{}]}}",
                escape(name),
                h.count,
                h.sum_ns,
                h.min_ns,
                h.max_ns,
                buckets.join(",")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_peak() {
        let rec = Recorder::new();
        rec.count("mixes", 3);
        rec.count("mixes", 4);
        rec.gauge_max("peak", 5);
        rec.gauge_max("peak", 2);
        rec.gauge_set("exact", 9);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["mixes"], 7);
        assert_eq!(snap.gauges["peak"], 5);
        assert_eq!(snap.gauges["exact"], 9);
        assert_eq!(rec.counter("mixes"), 7);
        assert_eq!(rec.counter("never"), 0);
    }

    #[test]
    fn spans_record_duration_and_histogram() {
        let rec = Recorder::new();
        {
            let _g = rec.span("phase_a");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "phase_a");
        assert!(snap.spans[0].dur_ns >= 1_000_000, "slept 2ms");
        let h = &snap.histograms["span.phase_a"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum_ns, snap.spans[0].dur_ns);
    }

    #[test]
    fn nested_spans_form_a_tree() {
        let rec = Recorder::new();
        {
            let outer = rec.span("outer");
            let (outer_trace, outer_id) = outer.ids().unwrap();
            assert_eq!(outer_trace, outer_id, "a root's trace_id is its span_id");
            {
                let inner = rec.span("inner");
                let (inner_trace, inner_id) = inner.ids().unwrap();
                assert_eq!(inner_trace, outer_trace);
                assert_ne!(inner_id, outer_id);
            }
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Inner finishes first.
        let inner = &snap.spans[0];
        let outer = &snap.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent_id, 0);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_eq!(outer.trace_id, outer.span_id);
        assert!(inner.tid > 0);
    }

    #[test]
    fn sibling_roots_get_distinct_traces() {
        let rec = Recorder::new();
        {
            let _a = rec.span("a");
        }
        {
            let _b = rec.span("b");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_ne!(snap.spans[0].trace_id, snap.spans[1].trace_id);
        assert!(snap.spans.iter().all(|s| s.parent_id == 0));
    }

    #[test]
    fn record_span_at_attaches_to_an_explicit_parent() {
        let rec = Recorder::new();
        let (trace_id, parent_id) = {
            let root = rec.span("root");
            root.ids().unwrap()
        };
        let start = Instant::now();
        let end = start + Duration::from_micros(100);
        rec.record_span_at("queue_wait", trace_id, parent_id, start, end);
        let spans = rec.trace_spans(trace_id);
        assert_eq!(spans.len(), 2);
        let wait = spans.iter().find(|s| s.name == "queue_wait").unwrap();
        assert_eq!(wait.parent_id, parent_id);
        assert_eq!(wait.trace_id, trace_id);
        assert_eq!(wait.dur_ns, 100_000);
    }

    #[test]
    fn span_window_is_bounded_and_counts_evictions() {
        let rec = Recorder::new();
        rec.set_span_capacity(4);
        for _ in 0..10 {
            let _s = rec.span("tick");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.spans_dropped, 6);
        // The histogram still saw every span.
        assert_eq!(snap.histograms["span.tick"].count, 10);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        {
            let g = rec.span("never");
            assert!(g.ids().is_none());
        }
        rec.count("never", 1);
        rec.gauge_max("never", 1);
        rec.record_duration("never", Duration::from_secs(1));
        rec.record_span_at("never", 1, 0, Instant::now(), Instant::now());
        let snap = rec.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn reset_clears_the_session() {
        let rec = Recorder::new();
        rec.count("x", 1);
        rec.set_span_capacity(7);
        rec.reset();
        assert!(rec.snapshot().counters.is_empty());
        // Capacity survives the reset.
        for _ in 0..9 {
            let _s = rec.span("tick");
        }
        assert_eq!(rec.snapshot().spans.len(), 7);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count, 3);
        assert_eq!(h.min_ns, 0);
        assert_eq!(h.max_ns, 1000);
        assert_eq!(h.mean_ns(), 334);
        assert_eq!(h.nonzero_buckets().len(), 3);
    }

    #[test]
    fn percentiles_are_ordered_and_clamped() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        for v in [100u64, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200] {
            h.record(v);
        }
        let (p50, p90, p99) = (h.percentile(0.50), h.percentile(0.90), h.percentile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");
        assert!(p50 >= h.min_ns && p99 <= h.max_ns);
        // The p99 of this spread must land in the top decade.
        assert!(p99 > 25_600, "p99={p99}");
        // A single-sample histogram pins every percentile to that sample.
        let mut one = Histogram::default();
        one.record(777);
        assert_eq!(one.percentile(0.5), 777);
        assert_eq!(one.percentile(0.99), 777);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let rec = std::sync::Arc::new(Recorder::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        rec.count("shared", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.snapshot().counters["shared"], 8000);
    }
}
