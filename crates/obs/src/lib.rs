//! Zero-dependency observability for the droplet-streaming pipeline.
//!
//! The paper's whole evaluation is metrics-driven — completion time `Tc`,
//! input droplets `I`, waste `W`, storage units `q`, electrode actuations —
//! yet the pipeline had no way to answer "where did the time go, what did
//! this demand cost" except scraping `println!` output. This crate is the
//! missing layer: a std-only [`Recorder`] of **spans** (wall-clock phase
//! timings), **counters**, **gauges** and fixed-bucket **histograms**, a
//! hand-rolled JSON-lines exporter (no serde), and a [`MetricsReport`]
//! aggregator that folds a recorded session into the paper's vocabulary.
//!
//! # Model
//!
//! * A [`Recorder`] is a thread-safe metric store. Libraries record into
//!   the process-wide [`global()`] recorder, which starts **disabled**:
//!   every instrumented hot path first checks an atomic flag and does no
//!   work — and no allocation — until someone (the CLI's `--metrics` flag,
//!   `DMF_OBS=1`, a test) calls [`Recorder::set_enabled`]. Tests and
//!   embedders can also construct private recorders and pass them around.
//! * [`Recorder::span`] returns a guard; dropping it records the elapsed
//!   wall time under the span's name and feeds the `span.<name>` histogram.
//!   The span taxonomy of the pipeline is documented in `DESIGN.md`
//!   (§ Observability): `ratio_approx`, `mixalgo_build`, `forest_build`,
//!   `sched_mms` / `sched_srs`, `sched_storage`, `chip_place`,
//!   `engine_plan`, `engine_realize`, `sim_execute`.
//! * Domain gauges use dotted names with the paper's symbols spelled out:
//!   `plan.storage_peak` (`q`), `plan.waste` (`W`), `plan.mix_splits`
//!   (`Tms`), `plan.inputs` (`I`), `plan.cycles` (`Tc`),
//!   `sim.storage_peak`, `sim.droplet_hops`, `sim.electrode_actuations`…
//! * [`Snapshot`] / [`Recorder::export_jsonl`] serialize a session as
//!   JSON lines (see `json` for the schema and the minimal parser used in
//!   round-trip tests); [`MetricsReport`] renders the human summary table.
//!
//! # Examples
//!
//! ```
//! use dmf_obs::{MetricsReport, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let _guard = rec.span("engine_plan");
//!     rec.count("plan.passes", 1);
//!     rec.gauge_max("plan.storage_peak", 5);
//! }
//! let report = MetricsReport::from_recorder(&rec);
//! assert_eq!(report.gauges["plan.storage_peak"], 5);
//! assert_eq!(report.phases[0].name, "engine_plan");
//! let mut jsonl = Vec::new();
//! rec.export_jsonl(&mut jsonl).unwrap();
//! assert!(String::from_utf8(jsonl).unwrap().contains("\"engine_plan\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// TODO(lint-wall): exempt from the workspace `unwrap_used`/`expect_used`/
// `panic` deny wall. Remaining offenders are poisoned-mutex `expect`s in
// `recorder` and provably-safe UTF-8/ASCII `expect`s in `json`; burn them
// down and drop this crate-wide allow.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod json;
mod profile;
mod recorder;
mod report;
mod table;

pub use profile::{chrome_trace, ProfileNode, ProfileReport};
pub use recorder::{
    current_span, thread_ordinal, Histogram, Recorder, Snapshot, Span, SpanRecord,
    DEFAULT_SPAN_CAPACITY, HIST_BUCKETS,
};
pub use report::{MetricsReport, PhaseLatency};
pub use table::Table;

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder. Starts disabled; instrumented code is a
/// no-op until [`Recorder::set_enabled`]`(true)` is called on it.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::disabled)
}

/// Starts a span on the thread's current sink: the recorder adopted via
/// [`TraceContext::enter`] if one is active, else the [`global`] recorder.
///
/// ```
/// {
///     let _guard = dmf_obs::span!("mms_schedule");
///     // ... phase under measurement ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::current_span($name)
    };
}

/// A portable handle to "where spans should go and what they hang under":
/// a sink [`Recorder`] plus a `(trace_id, parent_id)` edge.
///
/// Capture one with [`TraceContext::current`] before handing work to
/// another thread (or build one from an explicit root with
/// [`Recorder::trace_context`]); the receiving thread calls
/// [`TraceContext::enter`] and every span it starts — including
/// [`crate::span!`] call sites deep inside library code — joins the
/// originating trace as children of the captured span.
///
/// ```
/// use dmf_obs::{Recorder, TraceContext};
/// use std::sync::Arc;
///
/// let rec = Arc::new(Recorder::new());
/// let root = rec.span("request");
/// let (trace_id, span_id) = root.ids().unwrap();
/// let ctx = rec.trace_context(trace_id, span_id);
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         let _adopted = ctx.enter();
///         let _work = dmf_obs::span!("worker_phase"); // child of "request"
///     });
/// });
/// drop(root);
/// assert_eq!(rec.trace_spans(trace_id).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceContext {
    pub(crate) sink: Option<Arc<Recorder>>,
    pub(crate) trace_id: u64,
    pub(crate) parent_id: u64,
}

impl TraceContext {
    /// Captures the calling thread's current position: the adopted sink
    /// (if any) and the innermost open span. With no open span the
    /// context is empty and [`TraceContext::enter`] is a no-op — which
    /// makes capture-and-enter safe to leave in place when tracing is off.
    pub fn current() -> TraceContext {
        let (trace_id, parent_id) = recorder::current_frame().unwrap_or((0, 0));
        TraceContext { sink: recorder::current_sink(), trace_id, parent_id }
    }

    /// An empty context; entering it does nothing.
    pub fn none() -> TraceContext {
        TraceContext::default()
    }

    /// Whether entering this context links new spans into a trace.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }

    /// The trace this context belongs to (0 when inactive).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The span new children will hang under (0 when inactive).
    pub fn parent_id(&self) -> u64 {
        self.parent_id
    }

    /// Adopts the context on the calling thread until the returned guard
    /// drops: the sink becomes the target of [`crate::span!`], and spans
    /// started meanwhile nest under the context's parent span.
    pub fn enter(&self) -> TraceScope {
        let previous_sink =
            self.sink.as_ref().map(|sink| recorder::swap_sink(Some(Arc::clone(sink))));
        let pushed = if self.trace_id != 0 {
            recorder::push_frame(self.trace_id, self.parent_id);
            Some(self.parent_id)
        } else {
            None
        };
        TraceScope { previous_sink, pushed }
    }
}

/// Guard for an adopted [`TraceContext`]; restores the thread's previous
/// sink and span stack when dropped.
#[must_use = "the context is only adopted while this guard is live"]
#[derive(Debug)]
pub struct TraceScope {
    /// `Some(prev)` when the sink was swapped and must be restored.
    previous_sink: Option<Option<Arc<Recorder>>>,
    /// The frame pushed on enter, identified by its span_id.
    pushed: Option<u64>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some(span_id) = self.pushed.take() {
            recorder::pop_frame(span_id);
        }
        if let Some(previous) = self.previous_sink.take() {
            let _ = recorder::swap_sink(previous);
        }
    }
}

/// Formats a nanosecond quantity with an adaptive unit (`ns`, `µs`, `ms`,
/// `s`), keeping three significant digits.
pub fn fmt_ns(ns: u64) -> String {
    let f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", f / 1e6)
    } else {
        format!("{:.2}s", f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn global_starts_disabled_and_spans_are_inert() {
        // The global recorder must not accumulate anything while disabled.
        let before = global().snapshot();
        {
            let _g = span!("should_not_record");
            global().count("should_not_count", 1);
        }
        let after = global().snapshot();
        assert_eq!(before.spans.len(), after.spans.len());
        assert!(!after.counters.contains_key("should_not_count"));
    }
}
