//! Zero-dependency observability for the droplet-streaming pipeline.
//!
//! The paper's whole evaluation is metrics-driven — completion time `Tc`,
//! input droplets `I`, waste `W`, storage units `q`, electrode actuations —
//! yet the pipeline had no way to answer "where did the time go, what did
//! this demand cost" except scraping `println!` output. This crate is the
//! missing layer: a std-only [`Recorder`] of **spans** (wall-clock phase
//! timings), **counters**, **gauges** and fixed-bucket **histograms**, a
//! hand-rolled JSON-lines exporter (no serde), and a [`MetricsReport`]
//! aggregator that folds a recorded session into the paper's vocabulary.
//!
//! # Model
//!
//! * A [`Recorder`] is a thread-safe metric store. Libraries record into
//!   the process-wide [`global()`] recorder, which starts **disabled**:
//!   every instrumented hot path first checks an atomic flag and does no
//!   work — and no allocation — until someone (the CLI's `--metrics` flag,
//!   `DMF_OBS=1`, a test) calls [`Recorder::set_enabled`]. Tests and
//!   embedders can also construct private recorders and pass them around.
//! * [`Recorder::span`] returns a guard; dropping it records the elapsed
//!   wall time under the span's name and feeds the `span.<name>` histogram.
//!   The span taxonomy of the pipeline is documented in `DESIGN.md`
//!   (§ Observability): `ratio_approx`, `mixalgo_build`, `forest_build`,
//!   `sched_mms` / `sched_srs`, `sched_storage`, `chip_place`,
//!   `engine_plan`, `engine_realize`, `sim_execute`.
//! * Domain gauges use dotted names with the paper's symbols spelled out:
//!   `plan.storage_peak` (`q`), `plan.waste` (`W`), `plan.mix_splits`
//!   (`Tms`), `plan.inputs` (`I`), `plan.cycles` (`Tc`),
//!   `sim.storage_peak`, `sim.droplet_hops`, `sim.electrode_actuations`…
//! * [`Snapshot`] / [`Recorder::export_jsonl`] serialize a session as
//!   JSON lines (see `json` for the schema and the minimal parser used in
//!   round-trip tests); [`MetricsReport`] renders the human summary table.
//!
//! # Examples
//!
//! ```
//! use dmf_obs::{MetricsReport, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let _guard = rec.span("engine_plan");
//!     rec.count("plan.passes", 1);
//!     rec.gauge_max("plan.storage_peak", 5);
//! }
//! let report = MetricsReport::from_recorder(&rec);
//! assert_eq!(report.gauges["plan.storage_peak"], 5);
//! assert_eq!(report.phases[0].name, "engine_plan");
//! let mut jsonl = Vec::new();
//! rec.export_jsonl(&mut jsonl).unwrap();
//! assert!(String::from_utf8(jsonl).unwrap().contains("\"engine_plan\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// TODO(lint-wall): exempt from the workspace `unwrap_used`/`expect_used`/
// `panic` deny wall. Remaining offenders are poisoned-mutex `expect`s in
// `recorder` and provably-safe UTF-8/ASCII `expect`s in `json`; burn them
// down and drop this crate-wide allow.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod json;
mod recorder;
mod report;
mod table;

pub use recorder::{Histogram, Recorder, Snapshot, Span, SpanRecord, HIST_BUCKETS};
pub use report::{MetricsReport, PhaseLatency};
pub use table::Table;

use std::sync::OnceLock;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder. Starts disabled; instrumented code is a
/// no-op until [`Recorder::set_enabled`]`(true)` is called on it.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::disabled)
}

/// Starts a span on the [`global`] recorder.
///
/// ```
/// {
///     let _guard = dmf_obs::span!("mms_schedule");
///     // ... phase under measurement ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
}

/// Formats a nanosecond quantity with an adaptive unit (`ns`, `µs`, `ms`,
/// `s`), keeping three significant digits.
pub fn fmt_ns(ns: u64) -> String {
    let f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", f / 1e6)
    } else {
        format!("{:.2}s", f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn global_starts_disabled_and_spans_are_inert() {
        // The global recorder must not accumulate anything while disabled.
        let before = global().snapshot();
        {
            let _g = span!("should_not_record");
            global().count("should_not_count", 1);
        }
        let after = global().snapshot();
        assert_eq!(before.spans.len(), after.spans.len());
        assert!(!after.counters.contains_key("should_not_count"));
    }
}
