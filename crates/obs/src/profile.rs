//! Profile trees and trace exporters built over recorded span trees.
//!
//! [`ProfileReport`] folds a [`Snapshot`]'s spans into a
//! name-aggregated call tree with total/self wall time per node — the
//! text answer to "where did the time go". The same tree serialises to
//! flamegraph.pl's folded-stacks format ([`ProfileReport::folded`]), and
//! the raw spans serialise to Chrome trace-event JSON ([`chrome_trace`])
//! loadable in Perfetto or `chrome://tracing`.

use crate::{fmt_ns, Snapshot, SpanRecord, Table};
use dmf_hash::FnvBuildHasher;
use std::collections::HashMap;
use std::fmt;

/// One node of the aggregated profile tree: all spans sharing a name
/// under the same parent path, folded together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name.
    pub name: String,
    /// Number of spans folded into this node.
    pub calls: u64,
    /// Total wall time including children, nanoseconds.
    pub total_ns: u64,
    /// Wall time not covered by child spans, nanoseconds.
    pub self_ns: u64,
    /// Child nodes, ordered by earliest start.
    pub children: Vec<ProfileNode>,
}

/// A snapshot's span forest aggregated by name-path, with per-node total
/// and self (exclusive) wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Root nodes (spans with no recorded parent), ordered by earliest
    /// start.
    pub roots: Vec<ProfileNode>,
    /// Spans folded into the report.
    pub span_count: usize,
    /// Spans evicted from the recorder's bounded window before the
    /// snapshot — the report cannot account for their time.
    pub spans_dropped: u64,
}

impl ProfileReport {
    /// Builds the aggregated tree from a snapshot.
    ///
    /// A span whose parent was evicted from the bounded window (or that
    /// was adopted from a trace recorded elsewhere) is treated as a root,
    /// so the report never silently drops time.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let spans = &snapshot.spans;
        let mut by_id: HashMap<u64, usize, FnvBuildHasher> = HashMap::default();
        for (i, s) in spans.iter().enumerate() {
            by_id.insert(s.span_id, i);
        }
        let mut children: HashMap<u64, Vec<usize>, FnvBuildHasher> = HashMap::default();
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            // A self-parent (impossible from the recorder, conceivable in
            // a hand-built snapshot) must not recurse forever.
            if s.parent_id != 0 && s.parent_id != s.span_id && by_id.contains_key(&s.parent_id) {
                children.entry(s.parent_id).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        let roots = fold(spans, &roots, &children);
        ProfileReport { roots, span_count: spans.len(), spans_dropped: snapshot.spans_dropped }
    }

    /// Total wall time across all roots, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// The report as flamegraph.pl-compatible folded stacks: one
    /// `root;child;leaf self_ns` line per node with non-zero self time,
    /// sorted lexicographically. Feed the output straight to
    /// `flamegraph.pl` (weights are nanoseconds).
    pub fn folded(&self) -> String {
        let mut lines = Vec::new();
        for root in &self.roots {
            fold_lines(root, "", &mut lines);
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

fn fold(
    spans: &[SpanRecord],
    members: &[usize],
    children: &HashMap<u64, Vec<usize>, FnvBuildHasher>,
) -> Vec<ProfileNode> {
    // Group sibling spans by name, preserving earliest-start order.
    let mut order: Vec<&'static str> = Vec::new();
    let mut groups: HashMap<&'static str, Vec<usize>, FnvBuildHasher> = HashMap::default();
    let mut sorted: Vec<usize> = members.to_vec();
    sorted.sort_by_key(|&i| (spans[i].start_ns, spans[i].span_id));
    for i in sorted {
        let name = spans[i].name;
        if !groups.contains_key(name) {
            order.push(name);
        }
        groups.entry(name).or_default().push(i);
    }
    order
        .into_iter()
        .map(|name| {
            let member_ids = &groups[name];
            let calls = member_ids.len() as u64;
            let total_ns: u64 = member_ids.iter().map(|&i| spans[i].dur_ns).sum();
            let child_ids: Vec<usize> = member_ids
                .iter()
                .flat_map(|&i| {
                    children.get(&spans[i].span_id).map_or(&[] as &[usize], Vec::as_slice)
                })
                .copied()
                .collect();
            let nodes = fold(spans, &child_ids, children);
            let child_total: u64 = nodes.iter().map(|c| c.total_ns).sum();
            ProfileNode {
                name: name.to_owned(),
                calls,
                total_ns,
                // Children overlapping their parent's end (clock skew,
                // cross-thread adoption) could exceed it; saturate.
                self_ns: total_ns.saturating_sub(child_total),
                children: nodes,
            }
        })
        .collect()
}

fn fold_lines(node: &ProfileNode, prefix: &str, out: &mut Vec<String>) {
    let path =
        if prefix.is_empty() { node.name.clone() } else { format!("{prefix};{}", node.name) };
    if node.self_ns > 0 {
        out.push(format!("{path} {}", node.self_ns));
    }
    for child in &node.children {
        fold_lines(child, &path, out);
    }
}

impl fmt::Display for ProfileReport {
    /// The text profile: an indented tree with per-node calls, total,
    /// self, and self time as a share of the report total.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_ns().max(1);
        writeln!(
            f,
            "profile ({} spans, {} total{}):",
            self.span_count,
            fmt_ns(self.total_ns()),
            if self.spans_dropped > 0 {
                format!(", {} spans evicted", self.spans_dropped)
            } else {
                String::new()
            }
        )?;
        let mut t = Table::new(["span", "calls", "total", "self", "self%"]);
        for root in &self.roots {
            table_rows(root, 0, total, &mut t);
        }
        write!(f, "{t}")
    }
}

fn table_rows(node: &ProfileNode, depth: usize, report_total: u64, t: &mut Table) {
    t.row([
        format!("{}{}", "  ".repeat(depth), node.name),
        node.calls.to_string(),
        fmt_ns(node.total_ns),
        fmt_ns(node.self_ns),
        format!("{:.1}%", 100.0 * node.self_ns as f64 / report_total as f64),
    ]);
    for child in &node.children {
        table_rows(child, depth + 1, report_total, t);
    }
}

/// Serialises a snapshot's spans as Chrome trace-event JSON (`X` complete
/// events, microsecond timestamps), loadable in Perfetto and
/// `chrome://tracing`. The recorder's thread ordinal becomes `tid`;
/// trace/span/parent IDs ride along in `args` as 16-hex-digit strings.
///
/// Events are sorted by `(start_ns, span_id)`, so equal sessions
/// serialise byte-identically.
pub fn chrome_trace(snapshot: &Snapshot) -> String {
    let mut spans: Vec<&SpanRecord> = snapshot.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.span_id));
    let events: Vec<String> = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\",\
                 \"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\"}}}}",
                crate::json::escape(s.name),
                micros(s.start_ns),
                micros(s.dur_ns),
                s.tid,
                s.trace_id,
                s.span_id,
                s.parent_id,
            )
        })
        .collect();
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

/// Nanoseconds as a decimal microsecond literal with sub-µs precision
/// (`1234` ns → `1.234`), the unit Chrome trace events use.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::collections::BTreeMap;

    fn span(
        name: &'static str,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanRecord {
        SpanRecord { name, trace_id, span_id, parent_id, tid: 1, start_ns, dur_ns }
    }

    fn snapshot(spans: Vec<SpanRecord>) -> Snapshot {
        Snapshot {
            elapsed_ns: 10_000,
            spans,
            spans_dropped: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn aggregates_self_and_total_time() {
        // root(1000) -> a(300), a(200); second root-less span is a root.
        let snap = snapshot(vec![
            span("a", 7, 2, 1, 100, 300),
            span("a", 7, 3, 1, 500, 200),
            span("root", 7, 1, 0, 0, 1000),
        ]);
        let report = ProfileReport::from_snapshot(&snap);
        assert_eq!(report.roots.len(), 1);
        let root = &report.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.calls, 1);
        assert_eq!(root.total_ns, 1000);
        assert_eq!(root.self_ns, 500);
        assert_eq!(root.children.len(), 1);
        let a = &root.children[0];
        assert_eq!((a.name.as_str(), a.calls, a.total_ns, a.self_ns), ("a", 2, 500, 500));
        assert_eq!(report.total_ns(), 1000);
    }

    #[test]
    fn orphans_become_roots() {
        // Parent 99 was evicted; the span must still be accounted for.
        let snap = snapshot(vec![span("lost", 7, 2, 99, 100, 300)]);
        let report = ProfileReport::from_snapshot(&snap);
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].name, "lost");
    }

    #[test]
    fn folded_output_is_sorted_and_semicolon_joined() {
        let snap = snapshot(vec![
            span("root", 7, 1, 0, 0, 1000),
            span("b", 7, 2, 1, 100, 300),
            span("a", 7, 3, 1, 500, 200),
        ]);
        let folded = ProfileReport::from_snapshot(&snap).folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["root 500", "root;a 200", "root;b 300"]);
        assert!(folded.ends_with('\n'));
    }

    #[test]
    fn zero_self_time_nodes_are_omitted_from_folded() {
        let snap = snapshot(vec![span("root", 7, 1, 0, 0, 500), span("all", 7, 2, 1, 0, 500)]);
        let folded = ProfileReport::from_snapshot(&snap).folded();
        assert_eq!(folded, "root;all 500\n");
    }

    #[test]
    fn chrome_trace_parses_back_with_ids_and_micros() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        let snap = rec.snapshot();
        let text = chrome_trace(&snap);
        let v = crate::json::parse(&text).expect("chrome trace must parse");
        let crate::json::Json::Arr(events) = v.get("traceEvents").expect("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(events.len(), 2);
        for e in events {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert_eq!(e.get("ph").and_then(crate::json::Json::as_str), Some("X"));
        }
        // Events are start-ordered: outer first despite finishing last.
        let names: Vec<_> = events
            .iter()
            .map(|e| e.get("name").and_then(crate::json::Json::as_str).unwrap_or(""))
            .collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let args = events[1].get("args").expect("args");
        let parent = args.get("parent_id").and_then(crate::json::Json::as_str).expect("parent");
        let outer_id = events[0]
            .get("args")
            .and_then(|a| a.get("span_id"))
            .and_then(crate::json::Json::as_str)
            .expect("span_id");
        assert_eq!(parent, outer_id, "inner's parent must be outer");
    }

    #[test]
    fn micros_renders_sub_microsecond_precision() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(999), "0.999");
    }

    #[test]
    fn display_renders_an_indented_tree() {
        let snap = snapshot(vec![span("root", 7, 1, 0, 0, 1000), span("kid", 7, 2, 1, 0, 400)]);
        let text = ProfileReport::from_snapshot(&snap).to_string();
        assert!(text.contains("profile (2 spans"));
        assert!(text.contains("root"));
        assert!(text.contains("  kid"), "children indent: {text}");
        assert!(text.contains("self%"));
    }
}
