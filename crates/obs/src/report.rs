use crate::{fmt_ns, Histogram, Recorder, Snapshot, Table};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate latency of one pipeline phase (all spans sharing a name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseLatency {
    /// Span name (`engine_plan`, `sched_srs`, …).
    pub name: String,
    /// Number of spans recorded under the name.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Mean wall time per call, nanoseconds.
    pub mean_ns: u64,
    /// Slowest call, nanoseconds.
    pub max_ns: u64,
}

/// A recorded session folded into the paper's vocabulary: per-phase
/// latency plus the domain counters and gauges (`q`, `W`, `Tms`, hops,
/// actuations, …) the instrumented crates emitted.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Phases in order of first appearance in the session.
    pub phases: Vec<PhaseLatency>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name (spans feed `span.<name>`); rendered as a
    /// count/mean/p50/p90/p99/max percentile table.
    pub histograms: BTreeMap<String, Histogram>,
    /// Wall time covered by the session, nanoseconds.
    pub elapsed_ns: u64,
}

impl MetricsReport {
    /// Folds a snapshot into a report.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut order: Vec<String> = Vec::new();
        let mut agg: BTreeMap<&str, PhaseLatency> = BTreeMap::new();
        for span in &snapshot.spans {
            let entry = agg.entry(span.name).or_insert_with(|| {
                order.push(span.name.to_owned());
                PhaseLatency {
                    name: span.name.to_owned(),
                    calls: 0,
                    total_ns: 0,
                    mean_ns: 0,
                    max_ns: 0,
                }
            });
            entry.calls += 1;
            entry.total_ns += span.dur_ns;
            entry.max_ns = entry.max_ns.max(span.dur_ns);
        }
        let phases = order
            .iter()
            .map(|name| {
                let mut p = agg[name.as_str()].clone();
                p.mean_ns = p.total_ns / p.calls.max(1);
                p
            })
            .collect();
        MetricsReport {
            phases,
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            histograms: snapshot.histograms.clone(),
            elapsed_ns: snapshot.elapsed_ns,
        }
    }

    /// Snapshots `recorder` and folds it into a report.
    pub fn from_recorder(recorder: &Recorder) -> Self {
        MetricsReport::from_snapshot(&recorder.snapshot())
    }

    /// Looks up a gauge, then a counter, under `name`.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).or_else(|| self.counters.get(name)).copied()
    }

    /// The phase entry named `name`, if recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseLatency> {
        self.phases.iter().find(|p| p.name == name)
    }
}

impl fmt::Display for MetricsReport {
    /// The human-readable summary the CLI and the bench binaries print: a
    /// per-phase latency table followed by a metric table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.phases.is_empty() {
            writeln!(f, "phase latency (wall clock, {} total):", fmt_ns(self.elapsed_ns))?;
            let mut t = Table::new(["phase", "calls", "total", "mean", "max"]);
            for p in &self.phases {
                t.row([
                    p.name.clone(),
                    p.calls.to_string(),
                    fmt_ns(p.total_ns),
                    fmt_ns(p.mean_ns),
                    fmt_ns(p.max_ns),
                ]);
            }
            write!(f, "{t}")?;
        }
        if !self.gauges.is_empty() || !self.counters.is_empty() {
            if !self.phases.is_empty() {
                writeln!(f)?;
            }
            writeln!(f, "metrics:")?;
            let mut t = Table::new(["metric", "kind", "value"]);
            for (name, value) in &self.gauges {
                t.row([name.clone(), "gauge".to_owned(), value.to_string()]);
            }
            for (name, value) in &self.counters {
                t.row([name.clone(), "counter".to_owned(), value.to_string()]);
            }
            write!(f, "{t}")?;
        }
        if !self.histograms.is_empty() {
            if !self.phases.is_empty() || !self.gauges.is_empty() || !self.counters.is_empty() {
                writeln!(f)?;
            }
            writeln!(f, "latency percentiles (2x-bucket estimates):")?;
            let mut t = Table::new(["histogram", "count", "mean", "p50", "p90", "p99", "max"]);
            for (name, h) in &self.histograms {
                t.row([
                    name.clone(),
                    h.count.to_string(),
                    fmt_ns(h.mean_ns()),
                    fmt_ns(h.percentile(0.50)),
                    fmt_ns(h.percentile(0.90)),
                    fmt_ns(h.percentile(0.99)),
                    fmt_ns(h.max_ns),
                ]);
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRecord;

    fn span(name: &'static str, span_id: u64, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord { name, trace_id: 1, span_id, parent_id: 0, tid: 1, start_ns, dur_ns }
    }

    fn snapshot_with_spans() -> Snapshot {
        Snapshot {
            elapsed_ns: 10_000,
            spans: vec![
                span("forest_build", 2, 0, 300),
                span("sched_srs", 3, 300, 700),
                span("forest_build", 4, 1_000, 500),
            ],
            spans_dropped: 0,
            counters: BTreeMap::from([("plan.mix_splits".to_owned(), 27u64)]),
            gauges: BTreeMap::from([("plan.storage_peak".to_owned(), 5u64)]),
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn phases_aggregate_in_first_seen_order() {
        let report = MetricsReport::from_snapshot(&snapshot_with_spans());
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].name, "forest_build");
        assert_eq!(report.phases[0].calls, 2);
        assert_eq!(report.phases[0].total_ns, 800);
        assert_eq!(report.phases[0].mean_ns, 400);
        assert_eq!(report.phases[0].max_ns, 500);
        assert_eq!(report.phases[1].name, "sched_srs");
    }

    #[test]
    fn lookups_cover_gauges_and_counters() {
        let report = MetricsReport::from_snapshot(&snapshot_with_spans());
        assert_eq!(report.value("plan.storage_peak"), Some(5));
        assert_eq!(report.value("plan.mix_splits"), Some(27));
        assert_eq!(report.value("missing"), None);
        assert!(report.phase("sched_srs").is_some());
        assert!(report.phase("missing").is_none());
    }

    #[test]
    fn renders_both_tables() {
        let text = MetricsReport::from_snapshot(&snapshot_with_spans()).to_string();
        assert!(text.contains("phase latency"));
        assert!(text.contains("forest_build"));
        assert!(text.contains("metrics:"));
        assert!(text.contains("plan.storage_peak"));
        assert!(text.contains("gauge"));
    }

    #[test]
    fn renders_percentiles_for_histograms() {
        let mut snap = snapshot_with_spans();
        let mut h = Histogram::default();
        for v in [100u64, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        snap.histograms.insert("serve.latency".to_owned(), h);
        let report = MetricsReport::from_snapshot(&snap);
        assert_eq!(report.histograms.len(), 1);
        let text = report.to_string();
        assert!(text.contains("latency percentiles"));
        assert!(text.contains("serve.latency"));
        assert!(text.contains("p99"));
    }
}
