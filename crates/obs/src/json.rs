//! Hand-rolled JSON primitives: string escaping for the JSONL writer and a
//! minimal line parser for round-trip tests and downstream tooling.
//!
//! Deliberately small: objects, arrays, strings, numbers, booleans and
//! null — the subset the [`crate::Snapshot::write_jsonl`] schema emits.
//! Integers up to `u64::MAX` parse losslessly into [`Json::Int`]; anything
//! fractional or negative falls back to [`Json::Num`].

use std::collections::BTreeMap;
use std::fmt;

/// Escapes a string for embedding in a JSON string literal (without the
/// surrounding quotes): `"` and `\` are backslash-escaped, control
/// characters use `\n`/`\r`/`\t` or `\u00XX`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with source-independent (sorted) key access.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `u64`, if it is an [`Json::Int`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value (typically one JSONL line).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

/// Parses every non-empty line of a JSONL document, in order.
///
/// # Errors
///
/// Fails on the first malformed line.
pub fn parse_lines(input: &str) -> Result<Vec<Json>, ParseError> {
    input.lines().filter(|l| !l.trim().is_empty()).map(parse).collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { at: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar as-is.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Int(v));
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { at: start, message: "bad number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_control() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("µs"), "µs");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-1.5").unwrap(), Json::Num(-1.5));
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap();
        match arr {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Int(1));
                assert_eq!(items[2].get("b").unwrap().as_str(), Some("c"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn roundtrips_escaped_strings() {
        let original = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode µ";
        let wire = format!("\"{}\"", escape(original));
        assert_eq!(parse(&wire).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn parses_lines() {
        let lines = parse_lines("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].get("b").unwrap().as_u64(), Some(2));
    }
}
