use std::fmt;

/// A plain-text summary table: auto-sized columns, numeric cells
/// right-aligned, text cells left-aligned.
///
/// The shared formatter for every benchmark binary and the CLI's
/// `--metrics` summary, so all exhibits present metrics one way.
///
/// # Examples
///
/// ```
/// use dmf_obs::Table;
///
/// let mut t = Table::new(["scheme", "Tc", "q"]);
/// t.row(["MM+SRS", "11", "5"]);
/// t.row(["RMM", "128", "1"]);
/// let text = t.to_string();
/// assert!(text.contains("MM+SRS"));
/// assert!(text.lines().count() == 4); // header + rule + two rows
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; missing cells render empty, extra cells are kept
    /// and widen the table.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows.iter().map(Vec::len).chain(std::iter::once(self.headers.len())).max().unwrap_or(0)
    }

    fn numeric(cell: &str) -> bool {
        !cell.is_empty() && cell.trim_end_matches('%').parse::<f64>().is_ok()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let columns = self.column_count();
        let mut widths = vec![0usize; columns];
        fn cell_at(row: &[String], i: usize) -> &str {
            row.get(i).map(String::as_str).unwrap_or("")
        }
        for (i, width) in widths.iter_mut().enumerate() {
            *width = std::iter::once(cell_at(&self.headers, i))
                .chain(self.rows.iter().map(|r| cell_at(r, i)))
                .map(|c| c.chars().count())
                .max()
                .unwrap_or(0);
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cell_at(row, i);
                let pad = width.saturating_sub(cell.chars().count());
                if i > 0 {
                    line.push_str("  ");
                }
                if Table::numeric(cell) {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    if i + 1 < columns {
                        line.push_str(&" ".repeat(pad));
                    }
                }
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_numbers_right_and_text_left() {
        let mut t = Table::new(["name", "value"]);
        t.row(["long-name", "1"]);
        t.row(["x", "12345"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("long-name"));
        assert!(lines[3].ends_with("12345"));
        // Numeric column is right-aligned: "1" ends where "12345" ends.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn percentages_count_as_numeric() {
        assert!(Table::numeric("72.5%"));
        assert!(Table::numeric("-4.2"));
        assert!(!Table::numeric("MM+SRS"));
        assert!(!Table::numeric(""));
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2", "3"]);
        t.row(Vec::<String>::new());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.to_string();
        assert!(text.contains('3'));
    }
}
