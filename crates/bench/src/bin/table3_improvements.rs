//! Table 3 — average % improvements of MMS/SRS over repeated baselines,
//! and of SRS over MMS, across the synthetic corpus (L = 32, N = 2..=12,
//! D = 32).
//!
//! The algorithm columns come from the mixing-algorithm registry
//! ([`dmf_bench::sdst_baselines`]): every registered SDST-only algorithm
//! gets a column, so a newly registered baseline appears here without any
//! change to this binary.
//!
//! Pass a corpus size as the first argument to subsample (default: the
//! full 6066-ratio corpus; use e.g. `500` for a quick run). Set `DMF_OBS=1`
//! to dump the run's metrics to `results/obs/table3_improvements.jsonl`.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{export_obs, obs_from_env, run_schemes_batch, sdst_baselines, Scheme};
use dmf_engine::PlanCache;
use dmf_obs::Table;
use dmf_sched::SchedulerId;
use dmf_workloads::synthetic;

fn main() {
    let obs_path = obs_from_env("table3_improvements");
    let sample: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let corpus = match sample {
        Some(k) => synthetic::sampled_corpus(k, 2014),
        None => synthetic::paper_corpus(),
    };
    println!(
        "Table 3: average % improvements over {} target ratios (L = 32, D = 32)\n",
        corpus.len()
    );

    let demand = 32;
    let algorithms = sdst_baselines();
    let n = algorithms.len();

    // Accumulators per algorithm: sums of ratios for each comparison.
    let mut tc_mms = vec![0.0f64; n];
    let mut tc_srs = vec![0.0f64; n];
    let mut i_stream = vec![0.0f64; n];
    let mut q_srs_vs_mms = vec![0.0f64; n];
    let mut tc_srs_vs_mms = vec![0.0f64; n];
    let mut counted = vec![0usize; n];

    // Batch the corpus through the parallel planner in chunks (three
    // requests per (target, algorithm): {Repeated, MMS, SRS}), sharing one
    // plan cache across chunks.
    let cache = PlanCache::shared();
    for chunk in corpus.chunks(256) {
        let work: Vec<(Scheme, _, u64)> = chunk
            .iter()
            .flat_map(|target| {
                algorithms.iter().flat_map(move |&algorithm| {
                    [
                        (Scheme::Repeated(algorithm), target.clone(), demand),
                        (Scheme::Streaming(algorithm, SchedulerId::MMS), target.clone(), demand),
                        (Scheme::Streaming(algorithm, SchedulerId::SRS), target.clone(), demand),
                    ]
                })
            })
            .collect();
        let results = run_schemes_batch(&work, None, &cache);
        for t in 0..chunk.len() {
            for k in 0..n {
                let base = (t * n + k) * 3;
                let (Ok(repeated), Ok(mms), Ok(srs)) =
                    (&results[base], &results[base + 1], &results[base + 2])
                else {
                    continue;
                };
                counted[k] += 1;
                let pct =
                    |new: f64, old: f64| if old > 0.0 { (old - new) / old * 100.0 } else { 0.0 };
                tc_mms[k] += pct(mms.cycles as f64, repeated.cycles as f64);
                tc_srs[k] += pct(srs.cycles as f64, repeated.cycles as f64);
                // MMS and SRS build the same forest, so I is shared.
                i_stream[k] += pct(mms.inputs as f64, repeated.inputs as f64);
                q_srs_vs_mms[k] += pct(srs.storage as f64, mms.storage as f64);
                tc_srs_vs_mms[k] += pct(srs.cycles as f64, mms.cycles as f64);
            }
        }
    }

    let avg = |sums: &[f64], k: usize| sums[k] / counted[k].max(1) as f64;
    let mut headers = vec!["Parameter / relative scheme".to_owned()];
    headers.extend(algorithms.iter().map(|a| a.label().to_owned()));
    let mut table = Table::new(headers);
    for (label, sums) in [
        ("Tc: MMS || Repeated", &tc_mms),
        ("Tc: SRS || Repeated", &tc_srs),
        ("I: streaming || Repeated", &i_stream),
        ("q: SRS || MMS", &q_srs_vs_mms),
        ("Tc: SRS || MMS", &tc_srs_vs_mms),
    ] {
        let mut cells = vec![label.to_owned()];
        cells.extend((0..n).map(|k| format!("{:.1}%", avg(sums, k))));
        table.row(cells);
    }
    println!("{table}");
    let evaluated: Vec<String> =
        algorithms.iter().zip(&counted).map(|(a, c)| format!("{}={}", a.label(), c)).collect();
    println!("\nratios evaluated per algorithm: {}", evaluated.join(" "));
    println!("(paper Table 3: Tc ~72-73%, I ~72-77%, q(SRS||MMS) ~23-27%, Tc(SRS||MMS) ~ -4..-6%)");
    if let Some(path) = obs_path {
        export_obs(&path);
    }
}
