//! Table 3 — average % improvements of MMS/SRS over repeated baselines,
//! and of SRS over MMS, across the synthetic corpus (L = 32, N = 2..=12,
//! D = 32).
//!
//! Pass a corpus size as the first argument to subsample (default: the
//! full 6066-ratio corpus; use e.g. `500` for a quick run). Set `DMF_OBS=1`
//! to dump the run's metrics to `results/obs/table3_improvements.jsonl`.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{export_obs, obs_from_env, run_schemes_batch, Scheme};
use dmf_engine::PlanCache;
use dmf_mixalgo::BaseAlgorithm;
use dmf_obs::Table;
use dmf_sched::SchedulerKind;
use dmf_workloads::synthetic;

fn main() {
    let obs_path = obs_from_env("table3_improvements");
    let sample: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let corpus = match sample {
        Some(k) => synthetic::sampled_corpus(k, 2014),
        None => synthetic::paper_corpus(),
    };
    println!(
        "Table 3: average % improvements over {} target ratios (L = 32, D = 32)\n",
        corpus.len()
    );

    let demand = 32;
    let algorithms = [BaseAlgorithm::MinMix, BaseAlgorithm::Rma, BaseAlgorithm::Mtcs];

    // Accumulators per algorithm: sums of ratios for each comparison.
    let mut tc_mms = [0.0f64; 3];
    let mut tc_srs = [0.0f64; 3];
    let mut i_stream = [0.0f64; 3];
    let mut q_srs_vs_mms = [0.0f64; 3];
    let mut tc_srs_vs_mms = [0.0f64; 3];
    let mut counted = [0usize; 3];

    // Batch the corpus through the parallel planner in chunks (9 requests
    // per target: 3 algorithms x {Repeated, MMS, SRS}), sharing one plan
    // cache across chunks.
    let cache = PlanCache::shared();
    for chunk in corpus.chunks(256) {
        let work: Vec<(Scheme, _, u64)> = chunk
            .iter()
            .flat_map(|target| {
                algorithms.iter().flat_map(move |&algorithm| {
                    [
                        (Scheme::Repeated(algorithm), target.clone(), demand),
                        (Scheme::Streaming(algorithm, SchedulerKind::Mms), target.clone(), demand),
                        (Scheme::Streaming(algorithm, SchedulerKind::Srs), target.clone(), demand),
                    ]
                })
            })
            .collect();
        let results = run_schemes_batch(&work, None, &cache);
        for t in 0..chunk.len() {
            for k in 0..algorithms.len() {
                let base = (t * algorithms.len() + k) * 3;
                let (Ok(repeated), Ok(mms), Ok(srs)) =
                    (&results[base], &results[base + 1], &results[base + 2])
                else {
                    continue;
                };
                counted[k] += 1;
                let pct =
                    |new: f64, old: f64| if old > 0.0 { (old - new) / old * 100.0 } else { 0.0 };
                tc_mms[k] += pct(mms.cycles as f64, repeated.cycles as f64);
                tc_srs[k] += pct(srs.cycles as f64, repeated.cycles as f64);
                // MMS and SRS build the same forest, so I is shared.
                i_stream[k] += pct(mms.inputs as f64, repeated.inputs as f64);
                q_srs_vs_mms[k] += pct(srs.storage as f64, mms.storage as f64);
                tc_srs_vs_mms[k] += pct(srs.cycles as f64, mms.cycles as f64);
            }
        }
    }

    let avg = |sums: &[f64; 3], k: usize| sums[k] / counted[k].max(1) as f64;
    let mut table = Table::new(["Parameter / relative scheme", "MM", "RMA", "MTCS"]);
    for (label, sums) in [
        ("Tc: MMS || Repeated", &tc_mms),
        ("Tc: SRS || Repeated", &tc_srs),
        ("I: streaming || Repeated", &i_stream),
        ("q: SRS || MMS", &q_srs_vs_mms),
        ("Tc: SRS || MMS", &tc_srs_vs_mms),
    ] {
        table.row([
            label.to_owned(),
            format!("{:.1}%", avg(sums, 0)),
            format!("{:.1}%", avg(sums, 1)),
            format!("{:.1}%", avg(sums, 2)),
        ]);
    }
    println!("{table}");
    println!(
        "\nratios evaluated per algorithm: MM={} RMA={} MTCS={}",
        counted[0], counted[1], counted[2]
    );
    println!("(paper Table 3: Tc ~72-73%, I ~72-77%, q(SRS||MMS) ~23-27%, Tc(SRS||MMS) ~ -4..-6%)");
    if let Some(path) = obs_path {
        export_obs(&path);
    }
}
