//! Ablation: all five schedulers head to head.
//!
//! Compares the paper's MMS and SRS with Hu's HLF rule, path scheduling
//! (Grissom–Brisk) and GA-based scheduling (Su–Chakrabarty) over a corpus
//! sample — average completion time and storage on MinMix forests.
//!
//! Optional first argument: sample size (default 150; GA is the slow one).

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_sched::{ga_schedule, mms_schedule, oms_schedule, path_schedule, srs_schedule, GaConfig};
use dmf_workloads::synthetic;

fn main() {
    let sample: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(150);
    let corpus = synthetic::sampled_corpus(sample, 42);
    let mixers = 3usize;
    let demand = 20u64;
    println!(
        "Scheduler comparison over {} ratios (L = 32, D = {demand}, {mixers} mixers)\n",
        corpus.len()
    );
    let names = ["MMS", "SRS", "HLF", "Path", "GA"];
    let mut tc = [0u64; 5];
    let mut q = [0u64; 5];
    let mut evaluated = 0usize;
    let ga_config = GaConfig { generations: 30, population: 24, ..GaConfig::default() };
    for target in &corpus {
        let Ok(template) = BaseAlgorithm::MinMix.algorithm().build_template(target) else {
            continue;
        };
        let Ok(forest) = build_forest(&template, target, demand, ReusePolicy::AcrossTrees) else {
            continue;
        };
        let schedules = [
            mms_schedule(&forest, mixers).expect("schedules"),
            srs_schedule(&forest, mixers).expect("schedules"),
            oms_schedule(&forest, mixers).expect("schedules"),
            path_schedule(&forest, mixers).expect("schedules"),
            ga_schedule(&forest, mixers, &ga_config).expect("schedules"),
        ];
        evaluated += 1;
        for (k, s) in schedules.iter().enumerate() {
            tc[k] += u64::from(s.makespan());
            q[k] += s.storage(&forest).peak as u64;
        }
    }
    println!("{:<6} {:>10} {:>10}", "sched", "avg Tc", "avg q");
    for (k, name) in names.iter().enumerate() {
        println!(
            "{:<6} {:>10.2} {:>10.2}",
            name,
            tc[k] as f64 / evaluated.max(1) as f64,
            q[k] as f64 / evaluated.max(1) as f64
        );
    }
    println!("\n({evaluated} forests; GA fitness = Tc + 0.5 q, 24x30 evolution)");
}
