//! Ablation: heuristic schedulers versus the exact optimum.
//!
//! For every small forest (≤ 20 mix-splits) derived from two-fluid targets
//! of the corpus, compare MMS, SRS and HLF makespans against the exact DP
//! optimum, per mixer count.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_sched::{mms_schedule, oms_schedule, optimal_makespan, srs_schedule, OPTIMAL_LIMIT};
use dmf_workloads::synthetic;

fn main() {
    let corpus = synthetic::paper_corpus();
    println!("Scheduler optimality ablation (forests with <= {OPTIMAL_LIMIT} mix-splits)\n");
    println!(
        "{:>3} {:>9} {:>12} {:>12} {:>12}",
        "M", "forests", "MMS gap avg", "SRS gap avg", "HLF gap avg"
    );
    for mixers in 1..=4usize {
        let mut gaps = [0u64; 3];
        let mut optimal_total = 0u64;
        let mut count = 0usize;
        for target in &corpus {
            let Ok(template) = BaseAlgorithm::MinMix.algorithm().build_template(target) else {
                continue;
            };
            for demand in [4u64, 8] {
                let Ok(forest) = build_forest(&template, target, demand, ReusePolicy::AcrossTrees)
                else {
                    continue;
                };
                if forest.node_count() > OPTIMAL_LIMIT {
                    continue;
                }
                let Some(optimal) = optimal_makespan(&forest, mixers) else { continue };
                let mms = mms_schedule(&forest, mixers).expect("schedules").makespan();
                let srs = srs_schedule(&forest, mixers).expect("schedules").makespan();
                let hlf = oms_schedule(&forest, mixers).expect("schedules").makespan();
                gaps[0] += u64::from(mms - optimal);
                gaps[1] += u64::from(srs - optimal);
                gaps[2] += u64::from(hlf - optimal);
                optimal_total += u64::from(optimal);
                count += 1;
                if count >= 4000 {
                    break;
                }
            }
            if count >= 4000 {
                break;
            }
        }
        let avg = |g: u64| g as f64 / count.max(1) as f64;
        println!(
            "{:>3} {:>9} {:>12.3} {:>12.3} {:>12.3}   (avg optimal Tc {:.2})",
            mixers,
            count,
            avg(gaps[0]),
            avg(gaps[1]),
            avg(gaps[2]),
            optimal_total as f64 / count.max(1) as f64
        );
    }
    println!("\n(gap = heuristic makespan - exact optimum, in cycles)");
}
