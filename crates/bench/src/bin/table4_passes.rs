//! Table 4 — the PCR master-mix engine with three mixers and a fixed
//! number of storage units: passes, total cycles and total waste for
//! every (q', d, D) combination the paper reports.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_engine::{EngineConfig, StreamingEngine};
use dmf_ratio::TargetRatio;
use dmf_workloads::protocols::PCR_MASTER_MIX_PERCENT;

fn main() {
    println!("Table 4: PCR master-mix engine, three mixers, fixed storage (SRS)\n");
    println!(
        "{:>3} | {}",
        "D",
        ["d=4", "d=5", "d=6"]
            .iter()
            .map(|d| format!("{:<30}", format!("{d}: q'=3 / q'=5 / q'=7")))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    for demand in [2u64, 16, 20, 32] {
        let mut cells = Vec::new();
        for d in [4u32, 5, 6] {
            let target = TargetRatio::paper_approximate(&PCR_MASTER_MIX_PERCENT, d)
                .expect("PCR approximates at d>=3");
            let mut sub = Vec::new();
            for limit in [3usize, 5, 7] {
                let config = EngineConfig::default().with_storage_limit(limit).with_mixers(3);
                match StreamingEngine::new(config).plan(&target, demand) {
                    Ok(plan) => sub.push(format!(
                        "{}({},{})",
                        plan.pass_count(),
                        plan.total_cycles,
                        plan.total_waste
                    )),
                    Err(_) => sub.push("inf".into()),
                }
            }
            cells.push(format!("{:<30}", sub.join(" / ")));
        }
        println!("{:>3} | {}", demand, cells.join(" | "));
    }
    println!("\ncell format: passes(total cycles, total waste)");
    println!("(paper examples, D=32 d=4: 3(17,7) / 1(14,0) / 1(14,0))");
}
