//! Table 4 — the PCR master-mix engine with three mixers and a fixed
//! number of storage units: passes, total cycles and total waste for
//! every (q', d, D) combination the paper reports.
//!
//! The full (D, d, q') grid is planned in one [`dmf_engine::plan_batch`]
//! call over a shared plan cache, then formatted row by row.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_engine::{plan_batch, BatchOptions, EngineConfig, PlanCache, PlanRequest};
use dmf_ratio::TargetRatio;
use dmf_workloads::protocols::PCR_MASTER_MIX_PERCENT;

const DEMANDS: [u64; 4] = [2, 16, 20, 32];
const ACCURACIES: [u32; 3] = [4, 5, 6];
const LIMITS: [usize; 3] = [3, 5, 7];

fn main() {
    println!("Table 4: PCR master-mix engine, three mixers, fixed storage (SRS)\n");
    println!(
        "{:>3} | {}",
        "D",
        ["d=4", "d=5", "d=6"]
            .iter()
            .map(|d| format!("{:<30}", format!("{d}: q'=3 / q'=5 / q'=7")))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    // The whole grid as one batch, in row-major (D, d, q') order.
    let mut requests = Vec::new();
    for &demand in &DEMANDS {
        for &d in &ACCURACIES {
            let target = TargetRatio::paper_approximate(&PCR_MASTER_MIX_PERCENT, d)
                .expect("PCR approximates at d>=3");
            for &limit in &LIMITS {
                let config = EngineConfig::default().with_storage_limit(limit).with_mixers(3);
                requests.push(PlanRequest::new(target.clone(), demand).with_config(config));
            }
        }
    }
    let options = BatchOptions::new().with_cache(PlanCache::shared());
    let results = plan_batch(&requests, &options);

    let mut grid = results.iter();
    for demand in DEMANDS {
        let mut cells = Vec::new();
        for _ in ACCURACIES {
            let mut sub = Vec::new();
            for _ in LIMITS {
                match grid.next().and_then(|r| r.as_ref().ok()) {
                    Some(plan) => sub.push(format!(
                        "{}({},{})",
                        plan.pass_count(),
                        plan.total_cycles,
                        plan.total_waste
                    )),
                    None => sub.push("inf".into()),
                }
            }
            cells.push(format!("{:<30}", sub.join(" / ")));
        }
        println!("{:>3} | {}", demand, cells.join(" | "));
    }
    println!("\ncell format: passes(total cycles, total waste)");
    println!("(paper examples, D=32 d=4: 3(17,7) / 1(14,0) / 1(14,0))");
}
