//! Monte-Carlo fault-injection exhibit: yield and cycle overhead of the
//! recovering streaming engine versus fault rate, over the paper's five
//! Table 2 protocols.
//!
//! ```bash
//! fault_sweep --seed 42 --fault-rate 0.05          # one rate, all protocols
//! fault_sweep --seed 7 --trials 10                 # default rate ladder
//! fault_sweep --seed 42 --fault-rate 0.05 --demand 8 --trials 1
//! ```
//!
//! Each trial runs a whole resilient campaign
//! ([`dmf_fault::run_resilient`]): seeded fault injection, sensor-cycle
//! detection, demand-level re-synthesis and rerouting around diagnosed
//! dead electrodes. Yield is the fraction of trials that delivered the
//! full demand; overhead is the extra completion time over the
//! fault-free baseline. The injected/detected/replanned totals at the
//! bottom are read back from the global `dmf-obs` recorder, not from the
//! outcomes. Exits non-zero if any trial misses its demand.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{export_obs, obs_from_env};
use dmf_engine::{EngineConfig, PlanCache, RecoveryPolicy};
use dmf_fault::{run_resilient_cached, FaultConfig};
use dmf_obs::{MetricsReport, Table};
use dmf_workloads::protocols;
use std::process::ExitCode;

struct SweepArgs {
    seed: u64,
    rates: Vec<f64>,
    trials: u64,
    demand: u64,
}

fn parse_args() -> Result<SweepArgs, String> {
    let mut args =
        SweepArgs { seed: 42, rates: vec![0.0, 0.01, 0.02, 0.05, 0.1], trials: 3, demand: 12 };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let value = argv.next().ok_or(format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--seed" => args.seed = value.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--fault-rate" => {
                args.rates = vec![value.parse().map_err(|e| format!("bad fault rate: {e}"))?]
            }
            "--trials" => args.trials = value.parse().map_err(|e| format!("bad trials: {e}"))?,
            "--demand" => args.demand = value.parse().map_err(|e| format!("bad demand: {e}"))?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let obs_path = obs_from_env("fault_sweep");
    // The closing counter summary is read back from dmf-obs, so the
    // recorder is on regardless of DMF_OBS.
    dmf_obs::global().set_enabled(true);
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: fault_sweep [--seed S] [--fault-rate R] [--trials N] [--demand D]");
            return ExitCode::from(2);
        }
    };
    println!(
        "Fault-injection sweep: D = {} per campaign, {} trial(s) per cell, base seed {}\n",
        args.demand, args.trials, args.seed
    );
    let mut table = Table::new([
        "protocol", "rate", "yield", "inj", "det", "replans", "restarts", "dead", "overhead",
    ]);
    let mut all_met = true;
    // One plan cache for the whole sweep: every trial's baseline plan and
    // every replan for an already-seen residual demand is a cache hit.
    let cache = PlanCache::shared();
    for (p, protocol) in protocols::table2_examples().iter().enumerate() {
        for &rate in &args.rates {
            let mut met = 0u64;
            let (mut inj, mut det, mut replans, mut restarts, mut dead) = (0, 0, 0, 0, 0);
            let (mut base_cycles, mut extra_cycles) = (0u64, 0u64);
            for trial in 0..args.trials {
                // One seed per (protocol, rate, trial) cell, derived from
                // the base seed so the whole sweep is reproducible.
                let seed = args
                    .seed
                    .wrapping_add(1_000_003 * p as u64)
                    .wrapping_add(1_009 * trial)
                    .wrapping_add((rate * 1e6) as u64);
                let config = FaultConfig::default().with_seed(seed).with_fault_rate(rate);
                let policy = RecoveryPolicy::default().with_max_replans(64);
                match run_resilient_cached(
                    &protocol.ratio,
                    args.demand,
                    EngineConfig::default(),
                    &config,
                    policy,
                    std::sync::Arc::clone(&cache),
                ) {
                    Ok(out) => {
                        if out.demand_met() {
                            met += 1;
                        } else {
                            all_met = false;
                        }
                        inj += out.injected;
                        det += out.detected;
                        replans += u64::from(out.replans);
                        restarts += u64::from(out.restarts);
                        dead += out.dead_cells.len() as u64;
                        base_cycles += out.baseline_cycles;
                        extra_cycles += out.extra_cycles();
                    }
                    Err(e) => {
                        all_met = false;
                        eprintln!("{} rate {rate}: campaign failed: {e}", protocol.id);
                    }
                }
            }
            let overhead = if base_cycles > 0 {
                100.0 * extra_cycles as f64 / base_cycles as f64
            } else {
                0.0
            };
            table.row([
                format!("{} {}", protocol.id, protocol.name),
                format!("{rate:.2}"),
                format!("{}/{}", met, args.trials),
                inj.to_string(),
                det.to_string(),
                replans.to_string(),
                restarts.to_string(),
                dead.to_string(),
                format!("{overhead:.1}%"),
            ]);
        }
    }
    println!("{table}");
    let report = MetricsReport::from_recorder(dmf_obs::global());
    println!(
        "\ndmf-obs totals: fault.injected={} fault.detected={} recovery.replans={} \
         recovery.extra_cycles={}",
        report.value("fault.injected").unwrap_or(0),
        report.value("fault.detected").unwrap_or(0),
        report.value("recovery.replans").unwrap_or(0),
        report.value("recovery.extra_cycles").unwrap_or(0),
    );
    if let Some(path) = obs_path {
        export_obs(&path);
    }
    if all_met {
        println!("\nall campaigns met their demand");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nerror: at least one campaign missed its demand");
        ExitCode::FAILURE
    }
}
