//! Tracing-overhead exhibit: the same cold-planning sweep with the span
//! recorder disabled versus enabled.
//!
//! The disabled recorder must cost next to nothing (one relaxed atomic
//! load per `span!` site) and the enabled recorder must stay cheap enough
//! to leave on in production serving. Prints both wall times and writes
//! the figures as hand-rolled JSON to `results/BENCH_obs.json` (override
//! the path with the first argument). Exits non-zero if enabling tracing
//! slows the sweep by more than the gate.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_engine::{EngineConfig, StreamingEngine};
use dmf_ratio::TargetRatio;
use dmf_workloads::protocols;
use std::process::ExitCode;
use std::time::Instant;

/// Maximum tolerated slowdown of the enabled-tracer sweep, percent.
const MAX_OVERHEAD_PCT: f64 = 10.0;

/// Interleaved rounds; each request keeps its fastest time on each side,
/// so a scheduler interruption costs one sample of one request instead of
/// poisoning a whole sweep — on a shared single-core box, whole-sweep
/// walls swing far more than the per-span cost being measured.
const ROUNDS: usize = 15;

fn plan_ns(engine: &StreamingEngine, target: &TargetRatio, demand: u64) -> u64 {
    let t = Instant::now();
    std::hint::black_box(engine.plan(target, demand).unwrap());
    t.elapsed().as_nanos() as u64
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "results/BENCH_obs.json".into());
    let targets: Vec<(TargetRatio, u64)> = protocols::table2_examples()
        .into_iter()
        .flat_map(|p| [16u64, 32].map(|d| (p.ratio.clone(), d)))
        .collect();
    let recorder = dmf_obs::global();
    let engine = StreamingEngine::new(EngineConfig::default());

    // Warm up allocators and code paths once on each side.
    recorder.set_enabled(false);
    for (target, demand) in &targets {
        plan_ns(&engine, target, *demand);
    }
    recorder.set_enabled(true);
    for (target, demand) in &targets {
        plan_ns(&engine, target, *demand);
    }

    let mut disabled_min = vec![u64::MAX; targets.len()];
    let mut enabled_min = vec![u64::MAX; targets.len()];
    let mut spans_per_sweep = 0u64;
    for _ in 0..ROUNDS {
        recorder.set_enabled(false);
        for (i, (target, demand)) in targets.iter().enumerate() {
            disabled_min[i] = disabled_min[i].min(plan_ns(&engine, target, *demand));
        }
        // A fresh window per round so eviction never skews the timing.
        recorder.reset();
        recorder.set_enabled(true);
        for (i, (target, demand)) in targets.iter().enumerate() {
            enabled_min[i] = enabled_min[i].min(plan_ns(&engine, target, *demand));
        }
        spans_per_sweep = recorder.snapshot().spans.len() as u64;
    }
    recorder.set_enabled(false);
    let disabled_ns: u64 = disabled_min.iter().sum();
    let enabled_ns: u64 = enabled_min.iter().sum();

    let overhead_pct = (enabled_ns as f64 - disabled_ns as f64) * 100.0 / disabled_ns.max(1) as f64;
    println!(
        "cold-plan sweep over {} requests: tracing off {disabled_ns} ns, \
         tracing on {enabled_ns} ns ({overhead_pct:+.2}% overhead, {spans_per_sweep} spans/sweep)",
        targets.len(),
    );

    let json = format!(
        "{{\n  \"suite\": \"obs\",\n  \"requests\": {},\n  \"rounds\": {ROUNDS},\n  \
         \"tracing_off_wall_ns\": {disabled_ns},\n  \
         \"tracing_on_wall_ns\": {enabled_ns},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"spans_per_sweep\": {spans_per_sweep},\n  \
         \"gate_max_overhead_pct\": {MAX_OVERHEAD_PCT:.1}\n}}\n",
        targets.len(),
    );
    let path = std::path::Path::new(&out_path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("tracing overhead: {overhead_pct:.2}% (gate: <= {MAX_OVERHEAD_PCT:.0}%)");
    if overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!("error: enabled tracing costs {overhead_pct:.2}%, over the gate");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
