//! Planner micro-benchmark exhibit: cold planning versus warm-cache
//! lookups, and a batch wall-time curve at 1/2/4/8 workers against the
//! sharded plan cache.
//!
//! Prints a [`dmf_bench::micro`] summary table and writes the figures as
//! hand-rolled JSON to `results/BENCH_plan.json` (override the path with
//! the first argument). Two regression gates, both exit non-zero:
//!
//! - a warm-cache plan must be at least 10x faster than a cold plan —
//!   the gate the cache exists to win;
//! - the jobs curve must show parallel planning paying off, scaled to the
//!   machine: with >= 4 hardware threads, `--jobs 4` must halve the
//!   `--jobs 1` wall time; on narrower machines (where a 2x parallel
//!   speedup is physically impossible) `--jobs 4` must at least not lose
//!   to `--jobs 1` beyond scheduler noise — the original regression this
//!   curve guards against was jobs=4 running 16% *slower* than serial on
//!   one core because every request serialized on a single cache mutex.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::micro::MicroBench;
use dmf_engine::{plan_batch, BatchOptions, EngineConfig, PlanCache, PlanRequest, StreamingEngine};
use dmf_ratio::TargetRatio;
use dmf_workloads::protocols;
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::Instant;

/// The minimum cold/warm latency ratio the cache must deliver.
const REQUIRED_SPEEDUP: f64 = 10.0;

/// The worker counts the batch curve records.
const JOBS_CURVE: [usize; 4] = [1, 2, 4, 8];

/// With at least this many hardware threads, `--jobs 4` must beat
/// `--jobs 1` by [`REQUIRED_PARALLEL_SPEEDUP`].
const PARALLEL_GATE_THREADS: usize = 4;

/// The jobs=1 / jobs=4 wall-time ratio required on wide machines.
const REQUIRED_PARALLEL_SPEEDUP: f64 = 2.0;

/// On narrow machines, how much slower than serial `--jobs 4` may run
/// before it counts as a regression. Four workers timeslicing one core
/// measure 1.06-1.09x of serial on a quiet box; the mutex-serialized
/// regression this gate exists to catch measured 1.16x.
const SERIAL_NOISE_TOLERANCE: f64 = 1.15;

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "results/BENCH_plan.json".into());
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let demand = 20u64;
    let mut bench = MicroBench::new("plan: cold vs warm cache");

    // Cold: a full pipeline run (tree, forest, schedule, pass split).
    let cold_engine = StreamingEngine::new(EngineConfig::default());
    let cold =
        bench.bench("plan_cold (PCR d4, D=20)", || cold_engine.plan(&target, demand).unwrap());

    // Warm: the same request against a warmed cache — one lookup plus an
    // `Arc` clone.
    let warm_engine = StreamingEngine::new(EngineConfig::default()).with_cache(PlanCache::shared());
    warm_engine.plan_shared(&target, demand).unwrap();
    let warm =
        bench.bench("plan_warm (cache hit)", || warm_engine.plan_shared(&target, demand).unwrap());
    bench.finish();

    // Batch wall time over the five Table 2 protocols plus a synthetic
    // corpus sample. Every key is distinct, so a fresh sharded cache per
    // measurement means every worker does real planning work (miss +
    // store through the sharded write path) with no cross-round warmth.
    let requests: Vec<PlanRequest> = protocols::table2_examples()
        .into_iter()
        .map(|p| p.ratio)
        .chain(dmf_workloads::synthetic::sampled_corpus(250, 2014))
        .flat_map(|ratio| [16u64, 32].map(|d| PlanRequest::new(ratio.clone(), d)))
        .collect();
    let wall_ns = |jobs: usize| {
        let options = BatchOptions::new()
            .with_jobs(NonZeroUsize::new(jobs).unwrap())
            .with_cache(PlanCache::shared());
        let t = Instant::now();
        // Corpus ratios that cannot plan (pure targets) count as work too;
        // the comparison only needs every jobs value to do the same work.
        std::hint::black_box(plan_batch(&requests, &options));
        t.elapsed().as_nanos() as u64
    };
    // Interleave a few rounds and keep the fastest of each, so scheduler
    // noise cannot favour any point on the curve.
    let mut curve = [u64::MAX; JOBS_CURVE.len()];
    for _ in 0..5 {
        for (slot, &jobs) in curve.iter_mut().zip(JOBS_CURVE.iter()) {
            *slot = (*slot).min(wall_ns(jobs));
        }
    }
    let parallelism = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let jobs1_ns = curve[0];
    let jobs4_ns = curve[2];
    println!("\nplan_batch over {} requests ({parallelism} hardware threads):", requests.len());
    for (&jobs, &ns) in JOBS_CURVE.iter().zip(curve.iter()) {
        println!("  jobs={jobs} {ns} ns ({:.2}x vs jobs=1)", jobs1_ns as f64 / ns.max(1) as f64);
    }

    let speedup = cold.mean_ns as f64 / warm.mean_ns.max(1) as f64;
    let curve_json: Vec<String> = JOBS_CURVE
        .iter()
        .zip(curve.iter())
        .map(|(jobs, ns)| format!("{{ \"jobs\": {jobs}, \"wall_ns\": {ns} }}"))
        .collect();
    let json = format!(
        "{{\n  \"suite\": \"plan\",\n  \"target\": \"2:1:1:1:1:1:9\",\n  \"demand\": {demand},\n  \
         \"cold_plan_ns\": {{ \"min\": {}, \"mean\": {}, \"max\": {} }},\n  \
         \"warm_cache_plan_ns\": {{ \"min\": {}, \"mean\": {}, \"max\": {} }},\n  \
         \"warm_speedup\": {speedup:.1},\n  \
         \"batch\": {{ \"requests\": {}, \"parallelism\": {parallelism}, \
         \"jobs1_wall_ns\": {jobs1_ns}, \"jobs4_wall_ns\": {jobs4_ns}, \
         \"jobs_curve\": [ {} ] }}\n}}\n",
        cold.min_ns,
        cold.mean_ns,
        cold.max_ns,
        warm.min_ns,
        warm.mean_ns,
        warm.max_ns,
        requests.len(),
        curve_json.join(", "),
    );
    let path = std::path::Path::new(&out_path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("warm-cache speedup: {speedup:.1}x (required: >= {REQUIRED_SPEEDUP:.0}x)");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("error: warm-cache plan is only {speedup:.1}x faster than cold");
        return ExitCode::FAILURE;
    }
    // Parallel gate, scaled to the machine: a 2x speedup at jobs=4 needs
    // four hardware threads; on narrower machines the curve must instead
    // show jobs=4 not losing to serial (the original regression).
    let parallel_speedup = jobs1_ns as f64 / jobs4_ns.max(1) as f64;
    if parallelism >= PARALLEL_GATE_THREADS {
        println!(
            "parallel speedup (jobs=4 vs jobs=1): {parallel_speedup:.2}x \
             (required: >= {REQUIRED_PARALLEL_SPEEDUP:.1}x on {parallelism} threads)"
        );
        if parallel_speedup < REQUIRED_PARALLEL_SPEEDUP {
            eprintln!(
                "error: jobs=4 is only {parallel_speedup:.2}x faster than jobs=1 \
                 on {parallelism} hardware threads"
            );
            return ExitCode::FAILURE;
        }
    } else {
        println!(
            "parallel speedup (jobs=4 vs jobs=1): {parallel_speedup:.2}x \
             (required: >= {:.2}x — only {parallelism} hardware thread(s), \
             a {REQUIRED_PARALLEL_SPEEDUP:.1}x speedup is impossible here)",
            1.0 / SERIAL_NOISE_TOLERANCE,
        );
        if (jobs4_ns as f64) > jobs1_ns as f64 * SERIAL_NOISE_TOLERANCE {
            eprintln!(
                "error: jobs=4 regressed to {parallel_speedup:.2}x of jobs=1 on a \
                 {parallelism}-thread machine (tolerance {SERIAL_NOISE_TOLERANCE:.2}x)"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
