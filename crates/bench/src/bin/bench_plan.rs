//! Planner micro-benchmark exhibit: cold planning versus warm-cache
//! lookups, and batch wall time at one versus four workers.
//!
//! Prints a [`dmf_bench::micro`] summary table and writes the figures as
//! hand-rolled JSON to `results/BENCH_plan.json` (override the path with
//! the first argument). Exits non-zero if a warm-cache plan is not at
//! least 10x faster than a cold plan — the regression gate the cache
//! exists to win.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::micro::MicroBench;
use dmf_engine::{plan_batch, BatchOptions, EngineConfig, PlanCache, PlanRequest, StreamingEngine};
use dmf_ratio::TargetRatio;
use dmf_workloads::protocols;
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::Instant;

/// The minimum cold/warm latency ratio the cache must deliver.
const REQUIRED_SPEEDUP: f64 = 10.0;

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "results/BENCH_plan.json".into());
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let demand = 20u64;
    let mut bench = MicroBench::new("plan: cold vs warm cache");

    // Cold: a full pipeline run (tree, forest, schedule, pass split).
    let cold_engine = StreamingEngine::new(EngineConfig::default());
    let cold =
        bench.bench("plan_cold (PCR d4, D=20)", || cold_engine.plan(&target, demand).unwrap());

    // Warm: the same request against a warmed cache — one lookup plus an
    // `Arc` clone.
    let warm_engine = StreamingEngine::new(EngineConfig::default()).with_cache(PlanCache::shared());
    warm_engine.plan_shared(&target, demand).unwrap();
    let warm =
        bench.bench("plan_warm (cache hit)", || warm_engine.plan_shared(&target, demand).unwrap());
    bench.finish();

    // Batch wall time over the five Table 2 protocols plus a synthetic
    // corpus sample, uncached so every worker does real planning work.
    let requests: Vec<PlanRequest> = protocols::table2_examples()
        .into_iter()
        .map(|p| p.ratio)
        .chain(dmf_workloads::synthetic::sampled_corpus(250, 2014))
        .flat_map(|ratio| [16u64, 32].map(|d| PlanRequest::new(ratio.clone(), d)))
        .collect();
    let wall_ns = |jobs: usize| {
        let options = BatchOptions::new().with_jobs(NonZeroUsize::new(jobs).unwrap());
        let t = Instant::now();
        // Corpus ratios that cannot plan (pure targets) count as work too;
        // the comparison only needs both sides to do the same work.
        std::hint::black_box(plan_batch(&requests, &options));
        t.elapsed().as_nanos() as u64
    };
    // Interleave a few rounds and keep the fastest of each, so scheduler
    // noise cannot favour either side.
    let (mut jobs1_ns, mut jobs4_ns) = (u64::MAX, u64::MAX);
    for _ in 0..5 {
        jobs1_ns = jobs1_ns.min(wall_ns(1));
        jobs4_ns = jobs4_ns.min(wall_ns(4));
    }
    println!(
        "\nplan_batch over {} requests: jobs=1 {} ns, jobs=4 {} ns ({:.2}x)",
        requests.len(),
        jobs1_ns,
        jobs4_ns,
        jobs1_ns as f64 / jobs4_ns.max(1) as f64
    );

    let speedup = cold.mean_ns as f64 / warm.mean_ns.max(1) as f64;
    let json = format!(
        "{{\n  \"suite\": \"plan\",\n  \"target\": \"2:1:1:1:1:1:9\",\n  \"demand\": {demand},\n  \
         \"cold_plan_ns\": {{ \"min\": {}, \"mean\": {}, \"max\": {} }},\n  \
         \"warm_cache_plan_ns\": {{ \"min\": {}, \"mean\": {}, \"max\": {} }},\n  \
         \"warm_speedup\": {speedup:.1},\n  \
         \"batch\": {{ \"requests\": {}, \"jobs1_wall_ns\": {jobs1_ns}, \"jobs4_wall_ns\": {jobs4_ns} }}\n}}\n",
        cold.min_ns,
        cold.mean_ns,
        cold.max_ns,
        warm.min_ns,
        warm.mean_ns,
        warm.max_ns,
        requests.len(),
    );
    let path = std::path::Path::new(&out_path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("warm-cache speedup: {speedup:.1}x (required: >= {REQUIRED_SPEEDUP:.0}x)");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("error: warm-cache plan is only {speedup:.1}x faster than cold");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
