//! Fig. 6 — average completion time `Tc` and input requirement `I` versus
//! demand `D` over the synthetic corpus, for RMM, RMTCS, MM+MMS and
//! MTCS+MMS.
//!
//! Pass a corpus size as the first argument (default 600 sampled ratios;
//! pass `full` for the entire 6066-ratio corpus). Set `DMF_OBS=1` to dump
//! the run's metrics to `results/obs/fig6_sweep.jsonl`.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{export_obs, obs_from_env, run_scheme, Scheme};
use dmf_mixalgo::BaseAlgorithm;
use dmf_obs::Table;
use dmf_sched::SchedulerKind;
use dmf_workloads::synthetic;

fn main() {
    let obs_path = obs_from_env("fig6_sweep");
    let arg = std::env::args().nth(1);
    let corpus = match arg.as_deref() {
        Some("full") => synthetic::paper_corpus(),
        Some(k) => synthetic::sampled_corpus(k.parse().unwrap_or(600), 2014),
        None => synthetic::sampled_corpus(600, 2014),
    };
    println!(
        "Fig. 6: average Tc and I vs demand over {} ratios (L = 32, N = 2..=12)\n",
        corpus.len()
    );
    let schemes = [
        Scheme::Repeated(BaseAlgorithm::MinMix),
        Scheme::Repeated(BaseAlgorithm::Mtcs),
        Scheme::Streaming(BaseAlgorithm::MinMix, SchedulerKind::Mms),
        Scheme::Streaming(BaseAlgorithm::Mtcs, SchedulerKind::Mms),
    ];
    let mut headers = vec!["D".to_owned()];
    headers.extend(schemes.iter().map(|s| format!("Tc {}", s.name())));
    headers.extend(schemes.iter().map(|s| format!("I {}", s.name())));
    let mut table = Table::new(headers);
    for demand in (2..=32u64).step_by(2) {
        let mut tc = [0.0f64; 4];
        let mut inputs = [0.0f64; 4];
        let mut n = 0usize;
        for target in &corpus {
            let mut results = Vec::with_capacity(4);
            for &scheme in &schemes {
                match run_scheme(scheme, target, demand) {
                    Ok(r) => results.push(r),
                    Err(_) => break,
                }
            }
            if results.len() == 4 {
                n += 1;
                for (k, r) in results.iter().enumerate() {
                    tc[k] += r.cycles as f64;
                    inputs[k] += r.inputs as f64;
                }
            }
        }
        let mut cells = vec![demand.to_string()];
        cells.extend(tc.iter().map(|v| format!("{:.1}", v / n.max(1) as f64)));
        cells.extend(inputs.iter().map(|v| format!("{:.1}", v / n.max(1) as f64)));
        table.row(cells);
    }
    println!("{table}");
    println!(
        "\n(the paper's Fig. 6 shape: repeated schemes grow linearly in D; MMS grows far slower)"
    );
    if let Some(path) = obs_path {
        export_obs(&path);
    }
}
