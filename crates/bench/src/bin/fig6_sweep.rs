//! Fig. 6 — average completion time `Tc` and input requirement `I` versus
//! demand `D` over the synthetic corpus.
//!
//! The scheme set is built from the mixing-algorithm registry: every
//! registered algorithm is swept as a repeated baseline and as an
//! MMS-scheduled streaming scheme, so a newly registered algorithm joins
//! the sweep without any change to this binary. (The paper's Fig. 6 plots
//! the RMM, RMTCS, MM+MMS and MTCS+MMS subset of these curves.)
//!
//! Pass a corpus size as the first argument (default 600 sampled ratios;
//! pass `full` for the entire 6066-ratio corpus). Set `DMF_OBS=1` to dump
//! the run's metrics to `results/obs/fig6_sweep.jsonl`.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{export_obs, obs_from_env, run_schemes_batch, Scheme};
use dmf_engine::PlanCache;
use dmf_mixalgo::MixingAlgorithmRegistry;
use dmf_obs::Table;
use dmf_sched::SchedulerId;
use dmf_workloads::synthetic;

fn main() {
    let obs_path = obs_from_env("fig6_sweep");
    let arg = std::env::args().nth(1);
    let corpus = match arg.as_deref() {
        Some("full") => synthetic::paper_corpus(),
        Some(k) => synthetic::sampled_corpus(k.parse().unwrap_or(600), 2014),
        None => synthetic::sampled_corpus(600, 2014),
    };
    println!(
        "Fig. 6: average Tc and I vs demand over {} ratios (L = 32, N = 2..=12)\n",
        corpus.len()
    );
    let mut schemes = Vec::new();
    for entry in MixingAlgorithmRegistry::entries() {
        schemes.push(Scheme::Repeated(entry.id));
        schemes.push(Scheme::Streaming(entry.id, SchedulerId::MMS));
    }
    let mut headers = vec!["D".to_owned()];
    headers.extend(schemes.iter().map(|s| format!("Tc {}", s.name())));
    headers.extend(schemes.iter().map(|s| format!("I {}", s.name())));
    let mut table = Table::new(headers);
    // One shared plan cache across every demand level; each demand level
    // batches the whole corpus (every scheme per target) through the
    // parallel planner in chunks.
    let cache = PlanCache::shared();
    for demand in (2..=32u64).step_by(2) {
        let mut tc = vec![0.0f64; schemes.len()];
        let mut inputs = vec![0.0f64; schemes.len()];
        let mut n = 0usize;
        for chunk in corpus.chunks(512) {
            let work: Vec<(Scheme, _, u64)> = chunk
                .iter()
                .flat_map(|target| schemes.iter().map(move |&s| (s, target.clone(), demand)))
                .collect();
            let results = run_schemes_batch(&work, None, &cache);
            for per_target in results.chunks(schemes.len()) {
                if per_target.iter().all(Result::is_ok) {
                    n += 1;
                    for (k, r) in per_target.iter().flatten().enumerate() {
                        tc[k] += r.cycles as f64;
                        inputs[k] += r.inputs as f64;
                    }
                }
            }
        }
        let mut cells = vec![demand.to_string()];
        cells.extend(tc.iter().map(|v| format!("{:.1}", v / n.max(1) as f64)));
        cells.extend(inputs.iter().map(|v| format!("{:.1}", v / n.max(1) as f64)));
        table.row(cells);
    }
    println!("{table}");
    println!(
        "\n(the paper's Fig. 6 shape: repeated schemes grow linearly in D; MMS grows far slower)"
    );
    if let Some(path) = obs_path {
        export_obs(&path);
    }
}
