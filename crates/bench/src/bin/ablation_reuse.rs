//! Ablation: waste-reuse policy in forest construction.
//!
//! The paper's forest only reuses droplets *across* component trees
//! (each tree is a literal partial copy of the base tree). The `Eager`
//! policy also shares content-identical subtrees *within* a tree. This
//! ablation quantifies what the relaxation buys over the synthetic corpus.
//!
//! Optional first argument: sample size (default 400).

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_workloads::synthetic;

fn main() {
    let sample: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let corpus = synthetic::sampled_corpus(sample, 77);
    println!("Reuse-policy ablation over {} ratios (L = 32, D = 20, MM templates)\n", corpus.len());
    let mut totals = [[0u64; 3]; 2]; // [policy][Tms, I, W]
    let mut wins = 0usize;
    let mut evaluated = 0usize;
    for target in &corpus {
        let Ok(template) = BaseAlgorithm::MinMix.algorithm().build_template(target) else {
            continue;
        };
        let mut per_policy = Vec::with_capacity(2);
        for policy in [ReusePolicy::AcrossTrees, ReusePolicy::Eager] {
            let forest = build_forest(&template, target, 20, policy).expect("forest builds");
            let stats = forest.stats();
            per_policy.push((stats.mix_splits as u64, stats.input_total, stats.waste as u64));
        }
        evaluated += 1;
        for (row, (tms, inputs, waste)) in per_policy.iter().enumerate() {
            totals[row][0] += tms;
            totals[row][1] += inputs;
            totals[row][2] += waste;
        }
        if per_policy[1].0 < per_policy[0].0 {
            wins += 1;
        }
    }
    println!("{:<14} {:>12} {:>12} {:>12}", "policy", "avg Tms", "avg I", "avg W");
    for (row, name) in ["across-trees", "eager"].iter().enumerate() {
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.2}",
            name,
            totals[row][0] as f64 / evaluated as f64,
            totals[row][1] as f64 / evaluated as f64,
            totals[row][2] as f64 / evaluated as f64
        );
    }
    println!(
        "\neager strictly reduced Tms on {wins}/{evaluated} ratios \
         (ratios whose MM trees carry duplicate sub-mixtures)"
    );
}
