//! Table 2 — `Tc`, `q` and `I` for the five example bioprotocols under the
//! nine schemes (D = 32, Mlb mixers of each target's MM tree).

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{run_scheme, Scheme};
use dmf_workloads::protocols;

fn main() {
    let schemes = Scheme::table2_columns();
    let labels: Vec<String> = schemes.iter().map(Scheme::name).collect();
    println!("Table 2: MDST with three schedulers x three mixing algorithms (D = 32)\n");

    for metric in ["Tc (completion cycles)", "q (storage units)", "I (input droplets)"] {
        println!("{metric}:");
        print!("{:<6}", "Ratio");
        for l in &labels {
            print!(" {l:>9}");
        }
        println!();
        for protocol in protocols::table2_examples() {
            print!("{:<6}", protocol.id);
            for &scheme in &schemes {
                let r = run_scheme(scheme, &protocol.ratio, 32).expect("published ratios plan");
                let value = match metric.chars().next() {
                    Some('T') => r.cycles,
                    Some('q') => r.storage as u64,
                    _ => r.inputs,
                };
                print!(" {value:>9}");
            }
            println!();
        }
        println!();
    }
    println!(
        "Columns: A=RMM B=MM+MMS C=MM+SRS D=RRMA E=RMA+MMS F=RMA+SRS G=RMTCS H=MTCS+MMS I=MTCS+SRS"
    );
}
