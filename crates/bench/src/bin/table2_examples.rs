//! Table 2 — `Tc`, `q` and `I` for the five example bioprotocols under the
//! nine schemes (D = 32, Mlb mixers of each target's MM tree).
//!
//! All 45 (protocol, scheme) cells are planned in one
//! [`dmf_bench::run_schemes_batch`] call — parallel workers over a shared
//! plan cache — and each cell's three metrics are read from the same
//! result instead of re-planning per metric.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{run_schemes_batch, Scheme};
use dmf_engine::PlanCache;
use dmf_workloads::protocols;

fn main() {
    let schemes = Scheme::table2_columns();
    let labels: Vec<String> = schemes.iter().map(Scheme::name).collect();
    println!("Table 2: MDST with three schedulers x three mixing algorithms (D = 32)\n");

    let examples = protocols::table2_examples();
    let work: Vec<(Scheme, _, u64)> = examples
        .iter()
        .flat_map(|p| schemes.iter().map(move |&s| (s, p.ratio.clone(), 32)))
        .collect();
    let results = run_schemes_batch(&work, None, &PlanCache::shared());

    for metric in ["Tc (completion cycles)", "q (storage units)", "I (input droplets)"] {
        println!("{metric}:");
        print!("{:<6}", "Ratio");
        for l in &labels {
            print!(" {l:>9}");
        }
        println!();
        for (row, protocol) in examples.iter().enumerate() {
            print!("{:<6}", protocol.id);
            for col in 0..schemes.len() {
                let r = results[row * schemes.len() + col].as_ref().expect("published ratios plan");
                let value = match metric.chars().next() {
                    Some('T') => r.cycles,
                    Some('q') => r.storage as u64,
                    _ => r.inputs,
                };
                print!(" {value:>9}");
            }
            println!();
        }
        println!();
    }
    println!(
        "Columns: A=RMM B=MM+MMS C=MM+SRS D=RRMA E=RMA+MMS F=RMA+SRS G=RMTCS H=MTCS+MMS I=MTCS+SRS"
    );
}
