//! Figs. 1–2 — mixing-forest construction for the PCR master mix
//! (2:1:1:1:1:1:9, d = 4) at demands 16 and 20, plus the Graphviz export
//! of the D = 16 forest.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_forest::{build_forest, build_forest_report, ReusePolicy};
use dmf_mixalgo::{MinMix, MixingAlgorithm};
use dmf_ratio::TargetRatio;

fn main() {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("paper ratio");
    let template = MinMix.build_template(&target).expect("multi-fluid target");

    println!(
        "Base MM tree (Fig. 1, T1): Tms={} leaves={:?}\n",
        template.mix_count(),
        template.leaf_counts()
    );
    for demand in [16u64, 20] {
        let (_, report) = build_forest_report(&template, &target, demand, ReusePolicy::AcrossTrees)
            .expect("forest builds");
        println!("D = {demand}: {report}");
    }
    println!("\npaper: D=16 -> |F|=8 Tms=19 W=0 I=16; D=20 -> |F|=10 Tms=27 W=5 I=25\n");

    let forest = build_forest(&template, &target, 16, ReusePolicy::AcrossTrees).expect("forest");
    println!("Graphviz of the D = 16 forest (pipe through `dot -Tsvg`):\n");
    println!("{}", forest.to_dot());
}
