//! Pin-backend comparison exhibit: what electrode sharing costs and buys.
//!
//! ```bash
//! bench_backends                          # writes results/BENCH_backends.json
//! bench_backends out.json --demand 12 --seed 42
//! ```
//!
//! Three sections, written as hand-rolled JSON:
//!
//! 1. **Execution** — every [`dmf_pins::BackendKind`] runs the five Table 2
//!    protocols fault-free under the pinned simulator: pin count versus
//!    direct electrode count, cycles, total and ghost actuations, droplets
//!    emitted, plus the dispense-wave route makespan (concurrent where the
//!    backend permits it — `null` when pin sharing makes the concurrent
//!    wave unroutable — and serialized, one droplet at a time, which every
//!    backend supports).
//! 2. **Fault sweep** — seeded campaigns per backend at one fault rate;
//!    a stuck electrode under a shared-pin backend retires its whole pin
//!    group, so yield can only suffer. Gate: direct addressing's yield is
//!    at least every pin-constrained backend's yield under the same seeds.
//! 3. **Wear loop** — rounds of fault campaigns where the *aware* arm
//!    re-places its chip each round from the accumulated
//!    [`dmf_fault::WearTracker`] (via [`dmf_chip::WearMap`]) while the
//!    *blind* arm keeps the round-1 placement. Gate: the aware arm's peak
//!    per-electrode actuation count is strictly below the blind arm's.
//!
//! Exits non-zero when any protocol misses its demand or a gate fails.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_chip::presets::streaming_chip;
use dmf_chip::{
    ChipSpec, FlowMatrix, ModuleKind, PlacementConfig, PlacementContext, PlacementRequest, Placer,
    WearMap,
};
use dmf_engine::{realize_pass, EngineConfig, PlanCache, RecoveryPolicy, StreamingEngine};
use dmf_fault::{run_campaign, Campaign, FaultConfig, WearTracker};
use dmf_obs::Table;
use dmf_pins::{BackendKind, PinAssignment};
use dmf_route::{route_concurrent, route_concurrent_pinned, Grid, RouteRequest};
use dmf_sim::Simulator;
use dmf_workloads::protocols;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    out_path: String,
    demand: u64,
    seed: u64,
    rate: f64,
    trials: u64,
    rounds: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out_path: "results/BENCH_backends.json".into(),
        demand: 12,
        seed: 42,
        rate: 0.05,
        trials: 3,
        rounds: 4,
    };
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().is_some_and(|a| !a.starts_with("--")) {
        args.out_path = argv.next().unwrap();
    }
    while let Some(flag) = argv.next() {
        let value = argv.next().ok_or(format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--demand" => args.demand = value.parse().map_err(|e| format!("bad demand: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--fault-rate" => args.rate = value.parse().map_err(|e| format!("bad rate: {e}"))?,
            "--trials" => args.trials = value.parse().map_err(|e| format!("bad trials: {e}"))?,
            "--rounds" => args.rounds = value.parse().map_err(|e| format!("bad rounds: {e}"))?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Fault-free execution of one protocol under one backend.
struct ExecRow {
    id: String,
    pins: usize,
    electrodes: usize,
    cycles: u64,
    actuations: u64,
    ghosts: u64,
    emitted: u64,
    demand_met: bool,
    concurrent_makespan: Option<usize>,
    serialized_makespan: usize,
}

/// The dispense wave `dmfstream check` routes: one droplet per
/// reservoir / storage-cell pair.
fn dispense_wave(chip: &ChipSpec) -> (Grid, Vec<RouteRequest>) {
    let open: Vec<_> = chip.reservoirs().chain(chip.storage_cells()).map(|m| m.id()).collect();
    let grid = Grid::from_spec(chip, &open);
    let requests: Vec<RouteRequest> = chip
        .reservoirs()
        .zip(chip.storage_cells())
        .map(|(r, s)| RouteRequest { from: r.port(), to: s.port() })
        .collect();
    (grid, requests)
}

fn route_makespans(chip: &ChipSpec, pins: &PinAssignment) -> (Option<usize>, usize) {
    let (grid, requests) = dispense_wave(chip);
    let concurrent = if pins.is_direct() {
        route_concurrent(&grid, &requests).ok()
    } else {
        route_concurrent_pinned(&grid, &requests, pins).ok()
    }
    .map(|paths| paths.iter().map(|p| p.duration()).max().unwrap_or(0));
    // Serialized: one droplet at a time (the transport discipline the
    // simulator actually uses), so the makespan is the sum of hops.
    let serialized = requests
        .iter()
        .map(|req| {
            let one = std::slice::from_ref(req);
            let routed = if pins.is_direct() {
                route_concurrent(&grid, one)
            } else {
                route_concurrent_pinned(&grid, one, pins)
            };
            routed.expect("a lone droplet always routes")[0].duration()
        })
        .sum();
    (concurrent, serialized)
}

fn run_exec(
    backend: BackendKind,
    demand: u64,
    cache: &Arc<PlanCache>,
) -> Result<Vec<ExecRow>, String> {
    let engine = StreamingEngine::new(EngineConfig::default()).with_cache(Arc::clone(cache));
    let mut rows = Vec::new();
    for protocol in protocols::table2_examples() {
        let fail = |what: String| format!("{} under {backend}: {what}", protocol.id);
        let plan = engine.plan(&protocol.ratio, demand).map_err(|e| fail(e.to_string()))?;
        let chip =
            streaming_chip(protocol.ratio.fluid_count(), plan.mixers, plan.storage_peak.max(1))
                .map_err(|e| fail(e.to_string()))?;
        let pins = backend.assign(&chip).map_err(|e| fail(e.to_string()))?;
        let (mut cycles, mut actuations, mut ghosts, mut emitted) = (0u64, 0u64, 0u64, 0u64);
        for (i, pass) in plan.passes.iter().enumerate() {
            let program =
                realize_pass(pass, &chip).map_err(|e| fail(format!("pass {}: {e}", i + 1)))?;
            let report = Simulator::new(&chip)
                .with_pins(&pins)
                .run(&program)
                .map_err(|e| fail(format!("pass {}: {e}", i + 1)))?;
            cycles += u64::from(report.cycles);
            actuations += report.electrode_actuations.values().map(|&n| u64::from(n)).sum::<u64>();
            ghosts += report.ghost_actuations;
            emitted += report.emitted;
        }
        let (concurrent_makespan, serialized_makespan) = route_makespans(&chip, &pins);
        rows.push(ExecRow {
            id: protocol.id.to_string(),
            pins: pins.pin_count(),
            electrodes: pins.electrode_count(),
            cycles,
            actuations,
            ghosts,
            emitted,
            demand_met: emitted >= demand,
            concurrent_makespan,
            serialized_makespan,
        });
    }
    Ok(rows)
}

/// Seeded fault sweep for one backend: identical per-cell seeds across
/// backends, so yields are comparable droplet for droplet.
struct SweepRow {
    trials: u64,
    met: u64,
    dead: u64,
}

fn run_sweep(backend: BackendKind, args: &Args, cache: &Arc<PlanCache>) -> SweepRow {
    let mut met = 0u64;
    let mut dead = 0u64;
    let mut trials = 0u64;
    for (p, protocol) in protocols::table2_examples().iter().enumerate() {
        for trial in 0..args.trials {
            trials += 1;
            let seed = args
                .seed
                .wrapping_add(1_000_003 * p as u64)
                .wrapping_add(1_009 * trial)
                .wrapping_add((args.rate * 1e6) as u64);
            let campaign = Campaign {
                faults: FaultConfig::default().with_seed(seed).with_fault_rate(args.rate),
                policy: RecoveryPolicy::default().with_max_replans(64),
                backend,
                ..Campaign::default()
            };
            // A fresh tracker per trial: each campaign starts on a
            // pristine chip, like the fault_sweep exhibit.
            let mut wear = WearTracker::new();
            match run_campaign(
                &protocol.ratio,
                args.demand,
                &campaign,
                Arc::clone(cache),
                &mut wear,
            ) {
                Ok(out) => {
                    if out.demand_met() {
                        met += 1;
                    }
                    dead += out.dead_cells.len() as u64;
                }
                Err(e) => {
                    eprintln!("note: {} {backend} trial {trial}: {e}", protocol.id);
                }
            }
        }
    }
    SweepRow { trials, met, dead }
}

/// Places the PCR inventory (7 reservoirs, 3 mixers, 5 storage, waste,
/// output) on a roomy grid, optionally steering off worn electrodes.
fn place_pcr_chip(seed: u64, ctx: &PlacementContext) -> Result<ChipSpec, String> {
    let mut requests = Vec::new();
    for f in 0..7usize {
        requests.push(PlacementRequest::conventional(
            format!("R{}", f + 1),
            ModuleKind::Reservoir { fluid: f },
        ));
    }
    for m in 0..3 {
        requests.push(PlacementRequest::conventional(format!("M{}", m + 1), ModuleKind::Mixer));
    }
    for s in 0..5 {
        requests.push(PlacementRequest::conventional(format!("q{}", s + 1), ModuleKind::Storage));
    }
    requests.push(PlacementRequest::conventional("W1", ModuleKind::Waste));
    requests.push(PlacementRequest::conventional("W2", ModuleKind::Waste));
    requests.push(PlacementRequest::conventional("O1", ModuleKind::Output));
    // Flows mirror the streaming traffic: every reservoir feeds every
    // mixer, every mixer drains to storage and output.
    let mut flows = FlowMatrix::new();
    for f in 0..7 {
        for m in 7..10 {
            flows.add(f, m, 2.0);
        }
    }
    for m in 7..10 {
        for s in 10..15 {
            flows.add(m, s, 1.0);
        }
        flows.add(m, 17, 1.0);
    }
    let config = PlacementConfig { width: 24, height: 14, seed, ..PlacementConfig::default() };
    let chip = Placer::new(config).place_with(&requests, &flows, ctx).map_err(|e| e.to_string())?;
    chip.validate_for_engine(7).map_err(|e| e.to_string())?;
    Ok(chip)
}

struct WearLoop {
    rounds: u64,
    blind_peak: u64,
    aware_peak: u64,
    blind_total: u64,
    aware_total: u64,
}

/// Rounds of seeded campaigns on placed chips. The blind arm keeps its
/// round-1 placement forever; the aware arm re-places each round with the
/// accumulated wear as a placement cost, rotating hot spots away.
fn run_wear_loop(args: &Args, cache: &Arc<PlanCache>) -> Result<WearLoop, String> {
    let target = &protocols::table2_examples()[0].ratio; // Ex.1, PCR
    let engine = EngineConfig::default().with_storage_limit(5);
    let policy = RecoveryPolicy::default().with_max_replans(64);
    let blind_chip = place_pcr_chip(args.seed, &PlacementContext::default())?;
    let mut blind_wear = WearTracker::new();
    let mut aware_wear = WearTracker::new();
    for round in 0..args.rounds {
        let faults = FaultConfig::default()
            .with_seed(args.seed.wrapping_add(7_919 * round))
            .with_fault_rate(args.rate);
        let campaign = |chip: ChipSpec| Campaign {
            engine,
            faults,
            policy,
            backend: BackendKind::DirectAddress,
            chip: Some(chip),
        };
        run_campaign(
            target,
            args.demand,
            &campaign(blind_chip.clone()),
            Arc::clone(cache),
            &mut blind_wear,
        )
        .map_err(|e| format!("blind round {round}: {e}"))?;
        let ctx = if aware_wear.total() == 0 {
            PlacementContext::default()
        } else {
            let map: WearMap = aware_wear.iter().map(|(c, n)| (c, n as f64)).collect();
            PlacementContext::with_wear(map, 5.0)
        };
        let aware_chip = place_pcr_chip(args.seed, &ctx)?;
        run_campaign(
            target,
            args.demand,
            &campaign(aware_chip),
            Arc::clone(cache),
            &mut aware_wear,
        )
        .map_err(|e| format!("aware round {round}: {e}"))?;
    }
    let peak = |w: &WearTracker| w.iter().map(|(_, n)| n).max().unwrap_or(0);
    Ok(WearLoop {
        rounds: args.rounds,
        blind_peak: peak(&blind_wear),
        aware_peak: peak(&aware_wear),
        blind_total: blind_wear.total(),
        aware_total: aware_wear.total(),
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench_backends [OUT.json] [--demand D] [--seed S] [--fault-rate R] \
                 [--trials N] [--rounds N]"
            );
            return ExitCode::from(2);
        }
    };
    println!(
        "Pin-backend comparison: D = {} per protocol, {} fault trial(s) per cell at rate {}, \
         {} wear rounds, base seed {}\n",
        args.demand, args.trials, args.rate, args.rounds, args.seed
    );
    let cache = PlanCache::shared();
    let mut failed = false;

    let mut exec_table = Table::new([
        "backend",
        "protocol",
        "pins",
        "cycles",
        "actuations",
        "ghosts",
        "emitted",
        "wave",
        "serial",
    ]);
    let mut sweep_table = Table::new(["backend", "yield", "dead"]);
    let mut backend_sections = Vec::new();
    let mut direct_met: Option<u64> = None;
    for backend in BackendKind::ALL {
        let rows = match run_exec(backend, args.demand, &cache) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        for row in &rows {
            if !row.demand_met {
                eprintln!(
                    "error: {} under {backend}: emitted {} < demand {}",
                    row.id, row.emitted, args.demand
                );
                failed = true;
            }
            exec_table.row([
                backend.to_string(),
                row.id.clone(),
                format!("{}/{}", row.pins, row.electrodes),
                row.cycles.to_string(),
                row.actuations.to_string(),
                row.ghosts.to_string(),
                row.emitted.to_string(),
                row.concurrent_makespan.map_or("-".into(), |m| m.to_string()),
                row.serialized_makespan.to_string(),
            ]);
        }
        let sweep = run_sweep(backend, &args, &cache);
        sweep_table.row([
            backend.to_string(),
            format!("{}/{}", sweep.met, sweep.trials),
            sweep.dead.to_string(),
        ]);
        match direct_met {
            None => direct_met = Some(sweep.met),
            Some(direct) if sweep.met > direct => {
                eprintln!(
                    "error: {backend} yield {}/{} beats direct addressing's {direct}/{} under \
                     the same seeds",
                    sweep.met, sweep.trials, sweep.trials
                );
                failed = true;
            }
            Some(_) => {}
        }
        let protocols_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "      {{ \"id\": \"{}\", \"pins\": {}, \"electrodes\": {}, \"cycles\": {}, \
                     \"actuations\": {}, \"ghost_actuations\": {}, \"emitted\": {}, \
                     \"demand_met\": {}, \"route_makespan_concurrent\": {}, \
                     \"route_makespan_serialized\": {} }}",
                    r.id,
                    r.pins,
                    r.electrodes,
                    r.cycles,
                    r.actuations,
                    r.ghosts,
                    r.emitted,
                    r.demand_met,
                    r.concurrent_makespan.map_or("null".into(), |m| m.to_string()),
                    r.serialized_makespan,
                )
            })
            .collect();
        backend_sections.push(format!(
            "    {{\n      \"backend\": \"{backend}\",\n      \"protocols\": [\n{}\n      ],\n      \
             \"fault_sweep\": {{ \"rate\": {}, \"trials\": {}, \"met\": {}, \"dead_cells\": {} \
             }}\n    }}",
            protocols_json.join(",\n"),
            args.rate,
            sweep.trials,
            sweep.met,
            sweep.dead,
        ));
    }
    println!("{exec_table}");
    println!("\nFault sweep at rate {} ({} campaigns per backend):", args.rate, args.trials * 5);
    println!("{sweep_table}");

    let wear = match run_wear_loop(&args, &cache) {
        Ok(wear) => wear,
        Err(e) => {
            eprintln!("error: wear loop: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "\nWear loop over {} rounds: blind peak {} (total {}), aware peak {} (total {})",
        wear.rounds, wear.blind_peak, wear.blind_total, wear.aware_peak, wear.aware_total
    );
    if wear.aware_peak >= wear.blind_peak {
        eprintln!(
            "error: wear-aware placement peak {} is not below wear-blind peak {}",
            wear.aware_peak, wear.blind_peak
        );
        failed = true;
    }

    let json = format!(
        "{{\n  \"suite\": \"backends\",\n  \"demand\": {},\n  \"seed\": {},\n  \"backends\": \
         [\n{}\n  ],\n  \"wear_loop\": {{ \"rounds\": {}, \"blind_peak\": {}, \"aware_peak\": {}, \
         \"blind_total\": {}, \"aware_total\": {} }}\n}}\n",
        args.demand,
        args.seed,
        backend_sections.join(",\n"),
        wear.rounds,
        wear.blind_peak,
        wear.aware_peak,
        wear.blind_total,
        wear.aware_total,
    );
    let path = std::path::Path::new(&args.out_path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if failed {
        eprintln!("\nerror: at least one backend gate failed");
        ExitCode::FAILURE
    } else {
        println!("\nall backends met their demand; direct addressing's yield is an upper bound");
        ExitCode::SUCCESS
    }
}
