//! Figs. 3–4 — SRS schedule of the D = 20 PCR forest on three mixers,
//! rendered as the paper's modified Gantt chart with the storage row and
//! droplet-emission sequence.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::{MinMix, MixingAlgorithm};
use dmf_ratio::TargetRatio;
use dmf_sched::{mms_schedule, srs_schedule};

fn main() {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("paper ratio");
    let template = MinMix.build_template(&target).expect("multi-fluid target");
    let forest = build_forest(&template, &target, 20, ReusePolicy::AcrossTrees).expect("forest");

    let srs = srs_schedule(&forest, 3).expect("three mixers");
    println!("SRS, 3 mixers (paper: Tc = 11, q = 5):\n");
    println!("{}", srs.gantt(&forest));

    let mms = mms_schedule(&forest, 3).expect("three mixers");
    println!("MMS, 3 mixers (latency-oriented comparison):\n");
    println!("{}", mms.gantt(&forest));

    if std::fs::create_dir_all("results").is_ok() {
        match std::fs::write("results/fig4_gantt.svg", srs.to_svg(&forest)) {
            Ok(()) => println!("wrote results/fig4_gantt.svg"),
            Err(e) => eprintln!("could not write SVG: {e}"),
        }
    }
}
