//! Robustness exhibit: tolerance of each base algorithm's preparation to
//! volumetric split errors.
//!
//! Electrowetting splits yield daughter volumes `1 ± ε`. This binary
//! propagates that uncertainty through base trees and streaming forests
//! (interval arithmetic, `MixGraph::cf_error_bounds`) and reports the
//! largest ε for which every emitted target stays within the paper's
//! `1/2^d` accuracy band.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_workloads::protocols;

fn main() {
    println!("Split-error margins: largest ε keeping every target within 1/2^d\n");
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8} | {:>14}",
        "Ratio", "MM", "RMA", "MTCS", "RSM", "MM forest D=32"
    );
    for protocol in protocols::table2_examples() {
        print!("{:<6}", protocol.id);
        for algorithm in BaseAlgorithm::ALL {
            match algorithm.algorithm().build_graph(&protocol.ratio) {
                Ok(graph) => print!(" {:>7.4}", graph.split_error_margin(1e-4)),
                Err(_) => print!(" {:>8}", "-"),
            }
        }
        let template = BaseAlgorithm::MinMix
            .algorithm()
            .build_template(&protocol.ratio)
            .expect("published ratios build");
        let forest = build_forest(&template, &protocol.ratio, 32, ReusePolicy::AcrossTrees)
            .expect("forest builds");
        println!(" | {:>14.4}", forest.split_error_margin(1e-4));
    }
    println!(
        "\n(deeper trees compound split errors: higher-accuracy targets tolerate \
         smaller ε; droplet reuse does not change the bound because reused \
         droplets carry the same worst-case interval)"
    );
}
