//! Fig. 5 — the PCR master-mix chip: layout, droplet-transportation cost
//! matrix and the electrode-actuation comparison between the streaming
//! engine and repeated mixture preparation.
//!
//! Two accountings are reported:
//!
//! 1. **module-level**, using the paper's published Fig. 5 cost matrix
//!    (the paper reports 386 actuations for the SRS forest vs 980 for
//!    repeated MM);
//! 2. **simulated**, executing the fully routed program on this
//!    repository's preset chip and counting every electrode hop.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{default_plan, matrix_transport_cost};
use dmf_chip::presets::pcr_chip;
use dmf_chip::CostMatrix;
use dmf_engine::realize_pass;
use dmf_ratio::TargetRatio;
use dmf_sim::Simulator;

fn main() {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("paper ratio");
    let demand = 20;

    // --- published matrix accounting -------------------------------------
    let matrix = CostMatrix::fig5_pcr();
    println!("Fig. 5 published droplet-transportation cost matrix:\n{matrix}");

    let streaming = default_plan(&target, demand).expect("plan");
    let streaming_cost = matrix_transport_cost(&streaming.passes[0], &matrix);
    let single_pass = default_plan(&target, 2).expect("plan");
    let repeated_cost = (demand / 2) * matrix_transport_cost(&single_pass.passes[0], &matrix);
    println!("module-level actuations (published matrix), D = {demand}:");
    println!("  streaming (SRS forest): {streaming_cost}");
    println!("  repeated MM           : {repeated_cost}");
    println!("  paper                 : 386 vs 980\n");

    // --- full simulation on the preset chip ------------------------------
    let chip = pcr_chip();
    println!("preset chip layout:\n{}", chip.render());
    println!("derived cost matrix:\n{}", CostMatrix::from_spec(&chip));

    let program = realize_pass(&streaming.passes[0], &chip).expect("fits the preset chip");
    let report = Simulator::new(&chip).run(&program).expect("valid program");
    let single = realize_pass(&single_pass.passes[0], &chip).expect("fits");
    let single_report = Simulator::new(&chip).run(&single).expect("valid program");
    if std::fs::create_dir_all("results").is_ok() {
        match std::fs::write("results/fig5_chip.svg", chip.to_svg()) {
            Ok(()) => println!("wrote results/fig5_chip.svg"),
            Err(e) => eprintln!("could not write SVG: {e}"),
        }
    }
    println!("simulated electrode actuations, D = {demand}:");
    println!(
        "  streaming: {} ({} mixes, {} emitted)",
        report.transport_actuations, report.mix_splits, report.emitted
    );
    println!(
        "  repeated : {} ({} passes x {})",
        (demand / 2) * single_report.transport_actuations,
        demand / 2,
        single_report.transport_actuations
    );
}
