//! Reliability exhibit: per-electrode wear of the streaming engine versus
//! repeated mixture preparation.
//!
//! The paper motivates its electrode-actuation comparison with chip
//! reliability: "excessive electrode actuation leads to reliability
//! problems and reduced lifetime" (citing Huang et al., ICCAD 2011). This
//! binary simulates both approaches on the same preset PCR chip and
//! reports total actuations, the wear hot-spot, and the emission cadence.
//! Set `DMF_OBS=1` to dump the run's metrics to
//! `results/obs/reliability.jsonl`.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::{default_plan, export_obs, obs_from_env};
use dmf_chip::presets::pcr_chip;
use dmf_engine::realize_pass;
use dmf_obs::Table;
use dmf_ratio::TargetRatio;
use dmf_sim::{SimReport, Simulator};

fn wear_row(table: &mut Table, name: &str, report: &SimReport, repeats: u64) {
    let (cell, per_run) = report.hottest_electrode().expect("programs actuate electrodes");
    table.row([
        name.to_owned(),
        (report.transport_actuations * repeats).to_string(),
        cell.to_string(),
        (u64::from(per_run) * repeats).to_string(),
        report.actuated_electrodes().to_string(),
    ]);
}

fn main() {
    let obs_path = obs_from_env("reliability");
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("paper ratio");
    let demand = 20u64;
    let chip = pcr_chip();

    let streaming = default_plan(&target, demand).expect("plan");
    let pass = &streaming.passes[0];
    let program = realize_pass(pass, &chip).expect("fits");
    let report = Simulator::new(&chip).run(&program).expect("valid");

    let single = default_plan(&target, 2).expect("plan");
    let single_program = realize_pass(&single.passes[0], &chip).expect("fits");
    let single_report = Simulator::new(&chip).run(&single_program).expect("valid");

    println!("Electrode wear on the PCR chip, D = {demand}:\n");
    let mut table =
        Table::new(["scheme", "total actuations", "hot-spot", "hot-spot wear", "electrodes"]);
    wear_row(&mut table, "streaming", &report, 1);
    wear_row(&mut table, "repeated", &single_report, demand / 2);
    println!("{table}");
    println!();
    println!(
        "emission cadence (streaming): first pair at cycle {}, intervals {:?}",
        pass.schedule.first_emission(&pass.forest),
        pass.schedule.emission_intervals(&pass.forest)
    );
    println!("emission cadence (repeated) : one pair every {} cycles", single.total_cycles);
    if let Some(path) = obs_path {
        export_obs(&path);
    }
}
