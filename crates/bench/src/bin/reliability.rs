//! Reliability exhibit: per-electrode wear of the streaming engine versus
//! repeated mixture preparation.
//!
//! The paper motivates its electrode-actuation comparison with chip
//! reliability: "excessive electrode actuation leads to reliability
//! problems and reduced lifetime" (citing Huang et al., ICCAD 2011). This
//! binary simulates both approaches on the same preset PCR chip and
//! reports total actuations, the wear hot-spot, and the emission cadence.

use dmf_bench::default_plan;
use dmf_chip::presets::pcr_chip;
use dmf_engine::realize_pass;
use dmf_ratio::TargetRatio;
use dmf_sim::{SimReport, Simulator};

fn wear_line(name: &str, report: &SimReport, repeats: u64) {
    let (cell, per_run) = report.hottest_electrode().expect("programs actuate electrodes");
    println!(
        "{:<12} total={:>6}  hot-spot {} x{:<5} distinct electrodes={}",
        name,
        report.transport_actuations * repeats,
        cell,
        u64::from(per_run) * repeats,
        report.actuated_electrodes()
    );
}

fn main() {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("paper ratio");
    let demand = 20u64;
    let chip = pcr_chip();

    let streaming = default_plan(&target, demand).expect("plan");
    let pass = &streaming.passes[0];
    let program = realize_pass(pass, &chip).expect("fits");
    let report = Simulator::new(&chip).run(&program).expect("valid");

    let single = default_plan(&target, 2).expect("plan");
    let single_program = realize_pass(&single.passes[0], &chip).expect("fits");
    let single_report = Simulator::new(&chip).run(&single_program).expect("valid");

    println!("Electrode wear on the PCR chip, D = {demand}:\n");
    wear_line("streaming", &report, 1);
    wear_line("repeated", &single_report, demand / 2);
    println!();
    println!(
        "emission cadence (streaming): first pair at cycle {}, intervals {:?}",
        pass.schedule.first_emission(&pass.forest),
        pass.schedule.emission_intervals(&pass.forest)
    );
    println!(
        "emission cadence (repeated) : one pair every {} cycles",
        single.total_cycles
    );
}
