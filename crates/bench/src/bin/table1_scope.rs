//! Table 1 — scope of earlier work versus the proposed streaming engine.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_mixalgo::{BaseAlgorithm, Capabilities};

fn cell(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}

fn print_row(name: &str, c: Capabilities) {
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        name,
        cell(c.sdst_dilution),
        cell(c.sdst_mixing),
        cell(c.mdst_dilution),
        cell(c.mdst_mixing),
        cell(c.sdmt_dilution),
        cell(c.sdmt_mixing)
    );
}

fn main() {
    println!("Table 1: scope of mixing algorithms (paper taxonomy)\n");
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Algorithm", "SDST2", "SDST+", "MDST2", "MDST+", "SDMT2", "SDMT+"
    );
    for algorithm in BaseAlgorithm::ALL {
        print_row(algorithm.name(), algorithm.algorithm().capabilities());
    }
    print_row("Proposed", Capabilities::PROPOSED);
    println!("\n(2 = dilution N=2, + = mixing N>2; 'Proposed' is the streaming engine)");
}
