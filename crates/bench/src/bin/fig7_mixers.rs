//! Fig. 7 — completion time `Tc` and storage requirement `q` versus the
//! number of on-chip mixers for the PCR master mix (2:1:1:1:1:1:9,
//! D = 32), comparing RMA+MMS against RMA+SRS.

// Binary/example target: the workspace `unwrap_used`/`expect_used`/`panic`
// deny wall applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::{MixingAlgorithm, Rma};
use dmf_ratio::TargetRatio;
use dmf_sched::{mms_schedule, srs_schedule};

fn main() {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).expect("paper ratio");
    let template = Rma.build_template(&target).expect("multi-fluid target");
    let forest = build_forest(&template, &target, 32, ReusePolicy::AcrossTrees).expect("forest");
    println!("Fig. 7: RMA-seeded forest for D = 32 ({} mix-splits)\n", forest.node_count());
    println!("{:>3} {:>10} {:>10} {:>9} {:>9}", "M", "Tc(MMS)", "Tc(SRS)", "q(MMS)", "q(SRS)");
    for mixers in 1..=15usize {
        let mms = mms_schedule(&forest, mixers).expect("schedules");
        let srs = srs_schedule(&forest, mixers).expect("schedules");
        println!(
            "{:>3} {:>10} {:>10} {:>9} {:>9}",
            mixers,
            mms.makespan(),
            srs.makespan(),
            mms.storage(&forest).peak,
            srs.storage(&forest).peak
        );
    }
    println!(
        "\n(the paper's Fig. 7 shape: Tc falls steeply then flattens; SRS keeps q well below MMS)"
    );
}
