//! Shared harness for regenerating every table and figure of the DAC 2014
//! paper.
//!
//! Each `src/bin/*.rs` binary reproduces one exhibit:
//!
//! | binary | exhibit |
//! |--------|---------|
//! | `table1_scope` | Table 1 — capability taxonomy |
//! | `table2_examples` | Table 2 — Tc/q/I for Ex.1–Ex.5 across nine schemes |
//! | `table3_improvements` | Table 3 — average % improvements over the corpus |
//! | `table4_passes` | Table 4 — multi-pass PCR engine under storage budgets |
//! | `fig1_fig2` | Figs. 1–2 — forest construction stats |
//! | `fig3_fig4` | Figs. 3–4 — SRS schedule + Gantt chart |
//! | `fig5_layout` | Fig. 5 — layout, cost matrix, electrode actuations |
//! | `fig6_sweep` | Fig. 6 — avg Tc and I versus demand |
//! | `fig7_mixers` | Fig. 7 — Tc and q versus mixer count |
//!
//! The `benches/` directory carries micro-benchmarks for the construction,
//! scheduling, placement, routing and simulation layers, built on the
//! std-only [`micro`] harness (the build environment is offline, so no
//! external benchmarking framework is used).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// TODO(lint-wall): crate-wide exemption from the workspace
// `unwrap_used`/`expect_used`/`panic` deny wall. Offenders here predate the
// wall (documented-panic convenience constructors and provably-safe
// `expect`s); burn them down and drop this allow.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod micro;

use dmf_chip::CostMatrix;
use dmf_engine::{EngineConfig, MixerBudget, PassPlan, StreamPlan, StreamingEngine};
use dmf_mixalgo::{AlgorithmId, BaseAlgorithm, Capabilities, MixingAlgorithmRegistry};
use dmf_mixgraph::{NodeId, Operand};
use dmf_ratio::TargetRatio;
use dmf_sched::{mixer_lower_bound, SchedulerId, SchedulerRegistry};

/// The nine evaluation schemes of Table 2, in column order A–I.
///
/// Schemes carry registry ids ([`AlgorithmId`] / [`SchedulerId`]), so any
/// registered algorithm can drive an exhibit; `BaseAlgorithm` /
/// `SchedulerKind` enum values still convert via `.into()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Repeated base-tree passes (the paper's RMM / RRMA / RMTCS).
    Repeated(AlgorithmId),
    /// Streaming engine: forest seeded by the algorithm, scheduled by MMS
    /// or SRS.
    Streaming(AlgorithmId, SchedulerId),
}

/// The algorithms a Table 2 / Table 3 comparison sweeps: every registered
/// algorithm with the paper's SDST-only capability row — the MM/RMA/MTCS
/// baselines plus anything registered later with the same row. RSM (whose
/// capability row differs) and streaming-native algorithms stay out, as in
/// the paper.
pub fn sdst_baselines() -> Vec<AlgorithmId> {
    MixingAlgorithmRegistry::entries()
        .into_iter()
        .filter(|e| e.id.algorithm().capabilities() == Capabilities::SDST_ONLY)
        .map(|e| e.id)
        .collect()
}

impl Scheme {
    /// Table 2's column order: A=RMM, B=MM+MMS, C=MM+SRS, D=RRMA,
    /// E=RMA+MMS, F=RMA+SRS, G=RMTCS, H=MTCS+MMS, I=MTCS+SRS — built by
    /// sweeping [`sdst_baselines`] against every registered scheduler, so
    /// registering a new SDST algorithm (or scheduler) grows the table.
    pub fn table2_columns() -> Vec<Scheme> {
        let schedulers: Vec<SchedulerId> =
            SchedulerRegistry::entries().into_iter().map(|e| e.id).collect();
        let mut columns = Vec::new();
        for algorithm in sdst_baselines() {
            columns.push(Scheme::Repeated(algorithm));
            for &scheduler in &schedulers {
                columns.push(Scheme::Streaming(algorithm, scheduler));
            }
        }
        columns
    }

    /// Short name ("RMM", "MM+MMS", …).
    pub fn name(&self) -> String {
        match self {
            Scheme::Repeated(a) => format!("R{}", a.label()),
            Scheme::Streaming(a, s) => format!("{}+{}", a.label(), s.label()),
        }
    }
}

/// The three figures of merit the paper tabulates per scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeResult {
    /// Completion time in cycles.
    pub cycles: u64,
    /// Storage units.
    pub storage: usize,
    /// Input reactant droplets.
    pub inputs: u64,
    /// Waste droplets.
    pub waste: u64,
}

/// Evaluates one scheme on one target, following the paper's protocol:
/// every scheme runs with the `Mlb` of the target's MinMix tree.
///
/// # Errors
///
/// Propagates engine failures (pure targets, scheduling errors).
pub fn run_scheme(
    scheme: Scheme,
    target: &TargetRatio,
    demand: u64,
) -> Result<SchemeResult, dmf_engine::EngineError> {
    let _span = dmf_obs::span!("bench_scheme");
    let mixers = minmix_mlb(target)?;
    match scheme {
        Scheme::Repeated(algorithm) => {
            let baseline = dmf_engine::repeated(algorithm, target, demand, mixers)?;
            Ok(SchemeResult {
                cycles: baseline.total_cycles,
                storage: baseline.storage,
                inputs: baseline.total_inputs,
                waste: baseline.total_waste,
            })
        }
        Scheme::Streaming(algorithm, scheduler) => {
            let config = EngineConfig {
                algorithm,
                scheduler,
                mixers: MixerBudget::Fixed(mixers),
                ..EngineConfig::default()
            };
            let plan = StreamingEngine::new(config).plan(target, demand)?;
            Ok(SchemeResult {
                cycles: plan.total_cycles,
                storage: plan.storage_peak,
                inputs: plan.total_inputs,
                waste: plan.total_waste,
            })
        }
    }
}

/// Evaluates many `(scheme, target, demand)` requests at once.
///
/// Streaming schemes are planned by [`dmf_engine::plan_batch`] — parallel
/// workers plus the supplied content-addressed plan cache, so duplicate
/// requests (the same target under the same scheme at the same demand)
/// are planned exactly once. Repeated baselines are closed-form and
/// evaluated inline. The `Mlb` mixer budget of each target's MinMix tree
/// is computed once per distinct target rather than once per request.
///
/// Results come back in input order, one slot per request, and are
/// byte-identical to calling [`run_scheme`] on each request in sequence.
pub fn run_schemes_batch(
    work: &[(Scheme, TargetRatio, u64)],
    jobs: Option<std::num::NonZeroUsize>,
    cache: &std::sync::Arc<dmf_engine::PlanCache>,
) -> Vec<Result<SchemeResult, dmf_engine::EngineError>> {
    use dmf_engine::{plan_batch, BatchOptions, PlanRequest};

    let _span = dmf_obs::span!("bench_scheme_batch");
    let mut mlb: std::collections::HashMap<(u32, Vec<u64>), usize> =
        std::collections::HashMap::new();
    let mut slots: Vec<Option<Result<SchemeResult, dmf_engine::EngineError>>> = Vec::new();
    slots.resize_with(work.len(), || None);
    let mut requests: Vec<PlanRequest> = Vec::new();
    let mut request_slots: Vec<usize> = Vec::new();
    for (i, (scheme, target, demand)) in work.iter().enumerate() {
        let key = (target.accuracy(), target.parts().to_vec());
        let mixers = match mlb.get(&key) {
            Some(&m) => m,
            None => match minmix_mlb(target) {
                Ok(m) => {
                    mlb.insert(key, m);
                    m
                }
                Err(e) => {
                    slots[i] = Some(Err(e));
                    continue;
                }
            },
        };
        match *scheme {
            Scheme::Repeated(algorithm) => {
                slots[i] = Some(dmf_engine::repeated(algorithm, target, *demand, mixers).map(
                    |baseline| SchemeResult {
                        cycles: baseline.total_cycles,
                        storage: baseline.storage,
                        inputs: baseline.total_inputs,
                        waste: baseline.total_waste,
                    },
                ));
            }
            Scheme::Streaming(algorithm, scheduler) => {
                let config = EngineConfig {
                    algorithm,
                    scheduler,
                    mixers: MixerBudget::Fixed(mixers),
                    ..EngineConfig::default()
                };
                requests.push(PlanRequest::new(target.clone(), *demand).with_config(config));
                request_slots.push(i);
            }
        }
    }
    let mut options = BatchOptions::new().with_cache(std::sync::Arc::clone(cache));
    if let Some(jobs) = jobs {
        options = options.with_jobs(jobs);
    }
    for (slot, outcome) in request_slots.into_iter().zip(plan_batch(&requests, &options)) {
        slots[slot] = Some(outcome.map(|plan| SchemeResult {
            cycles: plan.total_cycles,
            storage: plan.storage_peak,
            inputs: plan.total_inputs,
            waste: plan.total_waste,
        }));
    }
    slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                Err(dmf_engine::EngineError::Internal { what: "batch slot unfilled".into() })
            })
        })
        .collect()
}

/// `Mlb` of the target's MinMix tree — the mixer budget every Table 2
/// scheme runs with.
fn minmix_mlb(target: &TargetRatio) -> Result<usize, dmf_engine::EngineError> {
    let mm = BaseAlgorithm::MinMix.algorithm().build_graph(target)?;
    Ok(mixer_lower_bound(&mm)?)
}

/// Enables the global [`dmf_obs`] recorder when the `DMF_OBS` environment
/// variable is set (to anything but `0`) and returns the JSONL export path
/// for the calling exhibit binary, `results/obs/<exhibit>.jsonl`.
///
/// Exhibit binaries call this at startup and pass the path to
/// [`export_obs`] before exiting.
pub fn obs_from_env(exhibit: &str) -> Option<std::path::PathBuf> {
    if std::env::var_os("DMF_OBS").is_some_and(|v| v != "0") {
        dmf_obs::global().set_enabled(true);
        Some(std::path::PathBuf::from(format!("results/obs/{exhibit}.jsonl")))
    } else {
        None
    }
}

/// Dumps the global recorder as JSON lines to `path` and prints the
/// human-readable [`dmf_obs::MetricsReport`] summary.
pub fn export_obs(path: &std::path::Path) {
    match dmf_obs::global().export_jsonl_path(path) {
        Ok(()) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("error: cannot write metrics to {}: {e}", path.display()),
    }
    println!("\n{}", dmf_obs::MetricsReport::from_recorder(dmf_obs::global()));
}

/// Builds the default streaming plan (used by several exhibits).
///
/// # Errors
///
/// Propagates engine failures.
pub fn default_plan(
    target: &TargetRatio,
    demand: u64,
) -> Result<StreamPlan, dmf_engine::EngineError> {
    StreamingEngine::new(EngineConfig::default()).plan(target, demand)
}

/// Module-level droplet-transport cost of a scheduled pass against a named
/// [`CostMatrix`] (such as the paper's Fig. 5 matrix): dispenses, direct
/// hand-offs, storage round-trips and waste disposal are charged at the
/// matrix's electrode counts. Target emission carries no matrix column and
/// is charged zero, as in the paper.
///
/// Mirrors the storage-allocation policy of the physical realizer
/// (nearest free cell), so the estimate is consistent with simulation.
pub fn matrix_transport_cost(pass: &PassPlan, matrix: &CostMatrix) -> u64 {
    let mixer_names: Vec<String> = matrix.mixers().to_vec();
    let storage_names: Vec<String> =
        matrix.rows().iter().filter(|r| r.starts_with('q')).cloned().collect();
    let waste_names: Vec<String> =
        matrix.rows().iter().filter(|r| r.starts_with('W')).cloned().collect();
    let mixer_of = |n: NodeId| mixer_names[pass.schedule.mixer_of(n).0 % mixer_names.len()].clone();
    let mut total = 0u64;
    let mut storage_free: Vec<bool> = vec![true; storage_names.len()];
    // Where each produced droplet currently sits: (producer, droplet slot).
    let mut stored_at: std::collections::HashMap<(NodeId, usize), usize> =
        std::collections::HashMap::new();
    let cost = |a: &str, b: &str| matrix.cost_between(a, b).unwrap_or(0) as u64;

    // Consumers ordered by consumption cycle, as in the realizer.
    let ordered_consumers = |n: NodeId| {
        let mut consumers = pass.forest.consumers(n).to_vec();
        consumers.sort_by_key(|&c| (pass.schedule.cycle_of(c), c));
        consumers
    };

    for t in 1..=pass.schedule.makespan() {
        for (_, node) in pass.schedule.cycle_contents(t) {
            let mixer = mixer_of(node);
            // Gather operands.
            for op in pass.forest.node(node).operands() {
                match op {
                    Operand::Input(f) => {
                        total += cost(&format!("R{}", f.0 + 1), &mixer);
                    }
                    Operand::Droplet(src) => {
                        // Which slot of src feeds us?
                        let consumers = ordered_consumers(src);
                        let slot = consumers
                            .iter()
                            .position(|&c| c == node)
                            .expect("operand edge implies consumption");
                        if let Some(cell) = stored_at.remove(&(src, slot)) {
                            total += cost(&storage_names[cell], &mixer);
                            storage_free[cell] = true;
                        } else {
                            // Direct hand-off from the producer's mixer.
                            total += cost(&mixer_of(src), &mixer);
                        }
                    }
                }
            }
            // Dispatch outputs.
            let consumers = ordered_consumers(node);
            for slot in 0..2usize {
                match consumers.get(slot) {
                    Some(&c) => {
                        if pass.schedule.cycle_of(c) > t + 1 && !storage_names.is_empty() {
                            // Park in the nearest free storage cell.
                            let mut best: Option<(u64, usize)> = None;
                            for (i, free) in storage_free.iter().enumerate() {
                                if !free {
                                    continue;
                                }
                                let d = cost(&mixer, &storage_names[i]);
                                if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                                    best = Some((d, i));
                                }
                            }
                            if let Some((d, i)) = best {
                                total += d;
                                storage_free[i] = false;
                                stored_at.insert((node, slot), i);
                            }
                            // No free cell: the droplet notionally waits at
                            // its producer mixer and is charged as a direct
                            // hand-off at consumption — a benign
                            // under-estimate that only triggers when the
                            // schedule's q exceeds the matrix's cells.
                        }
                        // Direct hand-offs are charged at consumption time.
                    }
                    None => {
                        if !pass.forest.is_root(node) {
                            // Nearest waste reservoir.
                            total += waste_names.iter().map(|w| cost(&mixer, w)).min().unwrap_or(0);
                        }
                        // Targets leave at the mixer-adjacent output (no
                        // matrix column; charged zero like the paper).
                    }
                }
            }
        }
    }
    total
}

/// Formats a row of right-aligned cells under `width` columns.
pub fn row(cells: &[String], width: usize) -> String {
    cells.iter().map(|c| format!("{c:>width$}")).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_workloads::protocols;

    #[test]
    fn table2_has_nine_columns() {
        let columns = Scheme::table2_columns();
        assert_eq!(columns.len(), 9);
        assert_eq!(columns[0].name(), "RMM");
        assert_eq!(columns[4].name(), "RMA+MMS");
        assert_eq!(columns[8].name(), "MTCS+SRS");
    }

    #[test]
    fn repeated_mm_matches_paper_tr_128() {
        // Table 2 column A: every L = 256 example costs 16 passes x 8
        // cycles = 128 under RMM.
        for protocol in protocols::table2_examples() {
            let r = run_scheme(Scheme::Repeated(AlgorithmId::MINMIX), &protocol.ratio, 32).unwrap();
            assert_eq!(r.cycles, 128, "{}", protocol.id);
        }
    }

    #[test]
    fn streaming_never_worse_than_repeated_same_algorithm() {
        for protocol in protocols::table2_examples() {
            for algorithm in sdst_baselines() {
                let repeated =
                    run_scheme(Scheme::Repeated(algorithm), &protocol.ratio, 32).unwrap();
                for scheduler in [SchedulerId::MMS, SchedulerId::SRS] {
                    let streaming =
                        run_scheme(Scheme::Streaming(algorithm, scheduler), &protocol.ratio, 32)
                            .unwrap();
                    assert!(streaming.cycles <= repeated.cycles, "{}", protocol.id);
                    assert!(streaming.inputs <= repeated.inputs, "{}", protocol.id);
                }
            }
        }
    }

    #[test]
    fn fig5_matrix_cost_is_positive_and_smaller_than_repeated() {
        let target = dmf_ratio::TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        let matrix = CostMatrix::fig5_pcr();
        let plan = default_plan(&target, 20).unwrap();
        let streaming_cost = matrix_transport_cost(&plan.passes[0], &matrix);
        assert!(streaming_cost > 0);
        // Repeated MM as ten demand-2 passes.
        let single = default_plan(&target, 2).unwrap();
        let repeated_cost = 10 * matrix_transport_cost(&single.passes[0], &matrix);
        assert!(
            streaming_cost < repeated_cost,
            "streaming {streaming_cost} vs repeated {repeated_cost}"
        );
    }
}
