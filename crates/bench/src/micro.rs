//! Std-only micro-benchmark harness.
//!
//! The build environment has no network access, so the `benches/` binaries
//! (declared with `harness = false`) use this module instead of Criterion.
//! Each benchmark warms up, picks an iteration count targeting a fixed
//! batch duration, then reports min / mean / max per-iteration wall time
//! over several batches through the shared [`dmf_obs::Table`] writer.

use dmf_obs::{fmt_ns, Table};
use std::hint::black_box;
use std::time::Instant;

/// Wall time budget for sizing one measurement batch.
const TARGET_BATCH_NS: u64 = 20_000_000;
/// Number of measured batches per benchmark.
const BATCHES: usize = 7;
/// Iteration count ceiling, keeping total runtime bounded for fast closures.
const MAX_ITERS: u64 = 100_000;

/// Per-benchmark timing statistics, per iteration, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroStats {
    /// Iterations executed per measured batch.
    pub iters: u64,
    /// Fastest batch, per iteration.
    pub min_ns: u64,
    /// Mean over all measured batches, per iteration.
    pub mean_ns: u64,
    /// Slowest batch, per iteration.
    pub max_ns: u64,
}

/// A named suite of micro-benchmarks that prints one summary table.
pub struct MicroBench {
    suite: &'static str,
    rows: Vec<(String, MicroStats)>,
}

impl MicroBench {
    /// Opens a suite; `suite` heads the printed output.
    pub fn new(suite: &'static str) -> Self {
        MicroBench { suite, rows: Vec::new() }
    }

    /// Runs `f` under the harness and records it as `id`.
    pub fn bench<T, F: FnMut() -> T>(&mut self, id: impl Into<String>, mut f: F) -> MicroStats {
        let id = id.into();
        // Warm-up and calibration: time single calls until the budget or a
        // call count cap is reached, then derive the batch iteration count.
        let calib = Instant::now();
        let mut calls = 0u64;
        while calib.elapsed().as_nanos() < TARGET_BATCH_NS as u128 && calls < 1_000 {
            black_box(f());
            calls += 1;
        }
        let per_call = (calib.elapsed().as_nanos() as u64 / calls.max(1)).max(1);
        let iters = (TARGET_BATCH_NS / per_call).clamp(1, MAX_ITERS);

        let mut batch_ns = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            batch_ns.push(t.elapsed().as_nanos() as u64 / iters);
        }
        let stats = MicroStats {
            iters,
            min_ns: batch_ns.iter().copied().min().unwrap_or(0),
            mean_ns: batch_ns.iter().sum::<u64>() / batch_ns.len().max(1) as u64,
            max_ns: batch_ns.iter().copied().max().unwrap_or(0),
        };
        eprintln!("  {id}: {} per iter ({iters} iters/batch)", fmt_ns(stats.mean_ns));
        self.rows.push((id, stats));
        stats
    }

    /// Prints the suite's summary table to stdout.
    pub fn finish(self) {
        let mut table = Table::new(["benchmark", "iters", "min", "mean", "max"]);
        for (id, s) in &self.rows {
            table.row([
                id.clone(),
                s.iters.to_string(),
                fmt_ns(s.min_ns),
                fmt_ns(s.mean_ns),
                fmt_ns(s.max_ns),
            ]);
        }
        println!("{} ({} batches per benchmark)", self.suite, BATCHES);
        println!("{table}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        let mut b = MicroBench::new("test-suite");
        let stats = b.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..64u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(stats.iters >= 1);
        assert!(stats.min_ns <= stats.mean_ns && stats.mean_ns <= stats.max_ns);
        assert_eq!(b.rows.len(), 1);
    }
}
