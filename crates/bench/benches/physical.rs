//! Micro-benchmarks: placement, routing, program compilation and full
//! simulation of the PCR engine.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::micro::MicroBench;
use dmf_chip::presets::pcr_chip;
use dmf_chip::{Coord, FlowMatrix, ModuleKind, PlacementConfig, PlacementRequest, Placer};
use dmf_engine::{realize_pass, EngineConfig, StreamingEngine};
use dmf_ratio::TargetRatio;
use dmf_route::{route_concurrent, shortest_path, Grid, RouteRequest};
use dmf_sim::Simulator;

fn main() {
    let mut suite = MicroBench::new("physical");

    let mut requests = vec![
        PlacementRequest::conventional("M1", ModuleKind::Mixer),
        PlacementRequest::conventional("M2", ModuleKind::Mixer),
        PlacementRequest::conventional("M3", ModuleKind::Mixer),
        PlacementRequest::conventional("W1", ModuleKind::Waste),
        PlacementRequest::conventional("O1", ModuleKind::Output),
    ];
    for f in 0..7 {
        requests.push(PlacementRequest::conventional(
            format!("R{}", f + 1),
            ModuleKind::Reservoir { fluid: f },
        ));
    }
    let mut flows = FlowMatrix::new();
    flows.add(0, 5, 20.0);
    flows.add(1, 6, 20.0);
    suite.bench("placement_sa_pcr", || {
        Placer::new(PlacementConfig { width: 20, height: 14, ..Default::default() })
            .place(&requests, &flows)
            .unwrap()
    });

    let grid = Grid::new(24, 24);
    suite.bench("astar_single", || {
        shortest_path(&grid, Coord::new(0, 0), Coord::new(23, 23), &Default::default()).unwrap()
    });
    let routes: Vec<RouteRequest> = (0..6)
        .map(|i| RouteRequest { from: Coord::new(0, 4 * i), to: Coord::new(23, 4 * (5 - i)) })
        .collect();
    suite.bench("concurrent_six_droplets", || route_concurrent(&grid, &routes).unwrap());

    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
    let chip = pcr_chip();
    suite.bench("realize_pcr_d20", || realize_pass(&plan.passes[0], &chip).unwrap());
    let program = realize_pass(&plan.passes[0], &chip).unwrap();
    suite.bench("simulate_pcr_d20", || Simulator::new(&chip).run(&program).unwrap());
    suite.bench("end_to_end_pcr_d20", || {
        let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
        let program = realize_pass(&plan.passes[0], &chip).unwrap();
        Simulator::new(&chip).run(&program).unwrap()
    });

    suite.finish();
}
