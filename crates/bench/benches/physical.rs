//! Criterion micro-benchmarks: placement, routing, program compilation and
//! full simulation of the PCR engine.

use criterion::{criterion_group, criterion_main, Criterion};
use dmf_chip::presets::pcr_chip;
use dmf_chip::{Coord, FlowMatrix, ModuleKind, PlacementConfig, PlacementRequest, Placer};
use dmf_engine::{realize_pass, EngineConfig, StreamingEngine};
use dmf_ratio::TargetRatio;
use dmf_route::{route_concurrent, shortest_path, Grid, RouteRequest};
use dmf_sim::Simulator;

fn bench_placement(c: &mut Criterion) {
    let mut requests = vec![
        PlacementRequest::conventional("M1", ModuleKind::Mixer),
        PlacementRequest::conventional("M2", ModuleKind::Mixer),
        PlacementRequest::conventional("M3", ModuleKind::Mixer),
        PlacementRequest::conventional("W1", ModuleKind::Waste),
        PlacementRequest::conventional("O1", ModuleKind::Output),
    ];
    for f in 0..7 {
        requests.push(PlacementRequest::conventional(
            format!("R{}", f + 1),
            ModuleKind::Reservoir { fluid: f },
        ));
    }
    let mut flows = FlowMatrix::new();
    flows.add(0, 5, 20.0);
    flows.add(1, 6, 20.0);
    c.bench_function("placement_sa_pcr", |b| {
        b.iter(|| {
            Placer::new(PlacementConfig { width: 20, height: 14, ..Default::default() })
                .place(&requests, &flows)
                .unwrap()
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let grid = Grid::new(24, 24);
    c.bench_function("astar_single", |b| {
        b.iter(|| {
            shortest_path(&grid, Coord::new(0, 0), Coord::new(23, 23), &Default::default())
                .unwrap()
        })
    });
    let requests: Vec<RouteRequest> = (0..6)
        .map(|i| RouteRequest { from: Coord::new(0, 4 * i), to: Coord::new(23, 4 * (5 - i)) })
        .collect();
    c.bench_function("concurrent_six_droplets", |b| {
        b.iter(|| route_concurrent(&grid, &requests).unwrap())
    });
}

fn bench_realize_and_simulate(c: &mut Criterion) {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
    let chip = pcr_chip();
    c.bench_function("realize_pcr_d20", |b| {
        b.iter(|| realize_pass(&plan.passes[0], &chip).unwrap())
    });
    let program = realize_pass(&plan.passes[0], &chip).unwrap();
    c.bench_function("simulate_pcr_d20", |b| {
        b.iter(|| Simulator::new(&chip).run(&program).unwrap())
    });
    c.bench_function("end_to_end_pcr_d20", |b| {
        b.iter(|| {
            let plan = StreamingEngine::new(EngineConfig::default()).plan(&target, 20).unwrap();
            let program = realize_pass(&plan.passes[0], &chip).unwrap();
            Simulator::new(&chip).run(&program).unwrap()
        })
    });
}

criterion_group!(benches, bench_placement, bench_routing, bench_realize_and_simulate);
criterion_main!(benches);
