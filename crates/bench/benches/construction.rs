//! Micro-benchmarks: base-tree algorithms and mixing-forest construction.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::micro::MicroBench;
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_ratio::TargetRatio;
use dmf_workloads::protocols;

fn main() {
    let mut suite = MicroBench::new("construction");
    for protocol in protocols::table2_examples() {
        for algorithm in BaseAlgorithm::ALL {
            let ratio = protocol.ratio.clone();
            suite.bench(format!("base_tree/{}/{}", algorithm.name(), protocol.id), move || {
                algorithm.algorithm().build_graph(&ratio).unwrap()
            });
        }
    }
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
    for demand in [16u64, 64, 256, 1024] {
        suite.bench(format!("forest_build/{demand}"), || {
            build_forest(&template, &target, demand, ReusePolicy::AcrossTrees).unwrap()
        });
    }
    suite.finish();
}
