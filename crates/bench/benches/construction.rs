//! Criterion micro-benchmarks: base-tree algorithms and mixing-forest
//! construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_ratio::TargetRatio;
use dmf_workloads::protocols;

fn bench_tree_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("base_tree");
    for protocol in protocols::table2_examples() {
        for algorithm in BaseAlgorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), protocol.id),
                &protocol.ratio,
                |b, ratio| b.iter(|| algorithm.algorithm().build_graph(ratio).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_forest_build(c: &mut Criterion) {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
    let mut group = c.benchmark_group("forest_build");
    for demand in [16u64, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(demand), &demand, |b, &d| {
            b.iter(|| build_forest(&template, &target, d, ReusePolicy::AcrossTrees).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_algorithms, bench_forest_build);
criterion_main!(benches);
