//! Micro-benchmarks: MMS, SRS and OMS scheduling plus storage accounting
//! on forests of growing size.

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_bench::micro::MicroBench;
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_ratio::TargetRatio;
use dmf_sched::{mms_schedule, oms_schedule, srs_schedule};

fn forests() -> Vec<(u64, dmf_mixgraph::MixGraph)> {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
    [32u64, 128, 512]
        .into_iter()
        .map(|d| (d, build_forest(&template, &target, d, ReusePolicy::AcrossTrees).unwrap()))
        .collect()
}

fn main() {
    let mut suite = MicroBench::new("scheduling");
    let forests = forests();
    for (demand, forest) in &forests {
        suite.bench(format!("schedulers/MMS/{demand}"), || mms_schedule(forest, 3).unwrap());
        suite.bench(format!("schedulers/SRS/{demand}"), || srs_schedule(forest, 3).unwrap());
        suite.bench(format!("schedulers/OMS-HLF/{demand}"), || oms_schedule(forest, 3).unwrap());
    }
    for (demand, forest) in &forests {
        let schedule = srs_schedule(forest, 3).unwrap();
        suite.bench(format!("storage_accounting/{demand}"), || schedule.storage(forest).peak);
    }
    suite.finish();
}
