//! Criterion micro-benchmarks: MMS, SRS and OMS scheduling plus storage
//! accounting on forests of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmf_forest::{build_forest, ReusePolicy};
use dmf_mixalgo::BaseAlgorithm;
use dmf_ratio::TargetRatio;
use dmf_sched::{mms_schedule, oms_schedule, srs_schedule};

fn forests() -> Vec<(u64, dmf_mixgraph::MixGraph)> {
    let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
    let template = BaseAlgorithm::MinMix.algorithm().build_template(&target).unwrap();
    [32u64, 128, 512]
        .into_iter()
        .map(|d| (d, build_forest(&template, &target, d, ReusePolicy::AcrossTrees).unwrap()))
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let forests = forests();
    let mut group = c.benchmark_group("schedulers");
    for (demand, forest) in &forests {
        group.bench_with_input(BenchmarkId::new("MMS", demand), forest, |b, f| {
            b.iter(|| mms_schedule(f, 3).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("SRS", demand), forest, |b, f| {
            b.iter(|| srs_schedule(f, 3).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("OMS-HLF", demand), forest, |b, f| {
            b.iter(|| oms_schedule(f, 3).unwrap())
        });
    }
    group.finish();
}

fn bench_storage_accounting(c: &mut Criterion) {
    let forests = forests();
    let mut group = c.benchmark_group("storage_accounting");
    for (demand, forest) in &forests {
        let schedule = srs_schedule(forest, 3).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(demand), forest, |b, f| {
            b.iter(|| schedule.storage(f).peak)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_storage_accounting);
criterion_main!(benches);
