//! The seeded fault model: turns a fault rate, the chip's wear history
//! and a program into a concrete [`InjectedFaults`] plan.

use crate::{FaultConfig, WearTracker};
use dmf_chip::{ChipSpec, Coord};
use dmf_rng::{Rng, SeedableRng, StdRng};
use dmf_sim::{ChipProgram, InjectedFaults, Instruction};
use std::collections::HashSet;

/// A deterministic fault sampler: same seed, same chip history, same
/// program → same fault plan.
#[derive(Debug, Clone)]
pub struct FaultModel {
    config: FaultConfig,
    rng: StdRng,
}

impl FaultModel {
    /// Creates a model seeded from `config.seed`.
    pub fn new(config: FaultConfig) -> Self {
        FaultModel { rng: StdRng::seed_from_u64(config.seed), config }
    }

    /// The model's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Samples a fault plan for one run of `program` on `chip`.
    ///
    /// * every open, still-alive electrode dies (stuck-open/closed) with
    ///   probability `fault_rate · electrode_weight` plus the wear term
    ///   `wear_factor · excess(cell, wear_threshold)` — the degradation
    ///   model consuming the simulator's actuation counts;
    /// * every dispense ordinal fails with `fault_rate · dispense_weight`;
    /// * every mix-split ordinal is volume-perturbed with
    ///   `fault_rate · split_weight`; the perturbation magnitude is drawn
    ///   uniformly from `[0, 2 · split_margin)` and only out-of-margin
    ///   draws make the split erroneous.
    ///
    /// A non-positive `fault_rate` short-circuits to an empty plan
    /// without consuming any randomness, so zero-rate campaigns stay
    /// byte-identical to the baseline regardless of wear history.
    pub fn sample(
        &mut self,
        chip: &ChipSpec,
        program: &ChipProgram,
        wear: &WearTracker,
        split_margin: f64,
    ) -> InjectedFaults {
        let mut plan =
            InjectedFaults { sensor_period: self.config.sensor_period, ..Default::default() };
        if self.config.fault_rate <= 0.0 {
            return plan;
        }
        let module_cells: HashSet<Coord> =
            chip.modules().iter().flat_map(|m| m.rect().cells().collect::<Vec<_>>()).collect();
        let base = self.config.fault_rate * self.config.electrode_weight;
        for y in 0..chip.height() {
            for x in 0..chip.width() {
                let cell = Coord::new(x, y);
                if module_cells.contains(&cell) || chip.is_dead(cell) {
                    continue;
                }
                let degradation =
                    self.config.wear_factor * wear.excess(cell, self.config.wear_threshold) as f64;
                if self.rng.gen_bool((base + degradation).min(1.0)) {
                    plan.dead_cells.insert(cell);
                }
            }
        }
        let p_dispense = (self.config.fault_rate * self.config.dispense_weight).min(1.0);
        let dispenses = program
            .instructions()
            .iter()
            .filter(|i| matches!(i, Instruction::Dispense { .. }))
            .count() as u64;
        for ordinal in 0..dispenses {
            if self.rng.gen_bool(p_dispense) {
                plan.failed_dispenses.insert(ordinal);
            }
        }
        let p_split = (self.config.fault_rate * self.config.split_weight).min(1.0);
        for ordinal in 0..program.mix_count() as u64 {
            if self.rng.gen_bool(p_split) {
                // A perturbed split: the volumetric error is uniform in
                // [0, 2·margin), so half the perturbations stay inside
                // the forest's tolerated split-error margin.
                let epsilon = self.rng.gen::<f64>() * 2.0 * split_margin;
                if epsilon > split_margin {
                    plan.bad_splits.insert(ordinal);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_chip::presets::pcr_chip;
    use dmf_sim::DropletId;

    fn program_with(dispenses: usize, mixes: usize) -> ChipProgram {
        let chip = pcr_chip();
        let r = chip.reservoir_for(0).unwrap().id();
        let m = chip.mixers().next().unwrap().id();
        let mut p = ChipProgram::new();
        for i in 0..dispenses {
            p.push(Instruction::Dispense { reservoir: r, droplet: DropletId(i as u64) });
        }
        for i in 0..mixes {
            let base = 100 + 4 * i as u64;
            p.push(Instruction::MixSplit {
                mixer: m,
                a: DropletId(base),
                b: DropletId(base + 1),
                out_a: DropletId(base + 2),
                out_b: DropletId(base + 3),
            });
        }
        p
    }

    #[test]
    fn zero_rate_samples_nothing() {
        let chip = pcr_chip();
        let mut model = FaultModel::new(FaultConfig::default().with_seed(7));
        let plan = model.sample(&chip, &program_with(50, 50), &WearTracker::new(), 0.05);
        assert!(plan.is_empty());
        assert_eq!(plan.sensor_period, FaultConfig::default().sensor_period);
    }

    #[test]
    fn same_seed_same_plan() {
        let chip = pcr_chip();
        let cfg = FaultConfig::default().with_seed(42).with_fault_rate(0.2);
        let wear = WearTracker::new();
        let p = program_with(40, 40);
        let a = FaultModel::new(cfg).sample(&chip, &p, &wear, 0.05);
        let b = FaultModel::new(cfg).sample(&chip, &p, &wear, 0.05);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rate 0.2 over 80 ordinals injects something");
    }

    #[test]
    fn wear_raises_electrode_failure_probability() {
        let chip = pcr_chip();
        let cfg = FaultConfig::default().with_fault_rate(1e-9).with_wear(0, 1.0);
        let mut worn = WearTracker::new();
        let mut report = dmf_sim::SimReport::default();
        // A non-module cell, actuated far past the (zero) threshold.
        let hot = Coord::new(0, 1);
        report.electrode_actuations.insert(hot, 1000);
        worn.absorb(&report);
        let plan = FaultModel::new(cfg).sample(&chip, &program_with(1, 1), &worn, 0.05);
        assert!(plan.dead_cells.contains(&hot), "worn-out electrode must die");
    }

    #[test]
    fn diagnosed_dead_cells_are_not_resampled() {
        let mut chip = pcr_chip();
        let cfg = FaultConfig::default().with_fault_rate(50.0); // every cell dies
        let diagnosed = Coord::new(0, 1);
        chip.mark_dead(diagnosed);
        let plan =
            FaultModel::new(cfg).sample(&chip, &program_with(0, 0), &WearTracker::new(), 0.05);
        assert!(!plan.dead_cells.contains(&diagnosed));
        assert!(!plan.dead_cells.is_empty());
    }
}
