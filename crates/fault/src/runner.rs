//! The resilient campaign runner: plan → realize → fault-injected run →
//! detect → recover, looping until the demand is met.

use crate::lineage::droplet_mixtures;
use crate::{FaultConfig, FaultModel, WearTracker};
use dmf_chip::presets::streaming_chip;
use dmf_chip::{ChipError, ChipSpec, Coord};
use dmf_engine::{
    realize_pass, EngineConfig, EngineError, PlanCache, RecoveryPolicy, StreamingEngine,
};
use dmf_pins::{BackendKind, PinError};
use dmf_ratio::TargetRatio;
use dmf_sim::{FaultKind, SimError, Simulator, Trace};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors of a resilient campaign.
#[derive(Debug)]
#[non_exhaustive]
pub enum FaultError {
    /// Planning or realization failed.
    Engine(EngineError),
    /// The simulator rejected a program for a non-fault reason.
    Sim(SimError),
    /// Chip construction failed.
    Chip(ChipError),
    /// The campaign's pin backend could not assign the chip.
    Pins(PinError),
    /// The recovery budget ran out (including the restart fallback, when
    /// enabled) with the demand still unmet.
    RecoveryExhausted {
        /// Re-synthesis attempts spent.
        replans: u32,
        /// Target droplets delivered (emitted + salvaged).
        delivered: u64,
        /// The original demand.
        demand: u64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Engine(e) => write!(f, "engine error: {e}"),
            FaultError::Sim(e) => write!(f, "simulation error: {e}"),
            FaultError::Chip(e) => write!(f, "chip error: {e}"),
            FaultError::Pins(e) => write!(f, "pin backend error: {e}"),
            FaultError::RecoveryExhausted { replans, delivered, demand } => write!(
                f,
                "recovery exhausted after {replans} replans: delivered {delivered}/{demand}"
            ),
        }
    }
}

impl Error for FaultError {}

impl From<EngineError> for FaultError {
    fn from(e: EngineError) -> Self {
        FaultError::Engine(e)
    }
}

impl From<SimError> for FaultError {
    fn from(e: SimError) -> Self {
        FaultError::Sim(e)
    }
}

impl From<ChipError> for FaultError {
    fn from(e: ChipError) -> Self {
        FaultError::Chip(e)
    }
}

impl From<PinError> for FaultError {
    fn from(e: PinError) -> Self {
        FaultError::Pins(e)
    }
}

/// Everything a fault campaign needs beyond the target and demand: the
/// planning configuration, fault model knobs, recovery policy, the pin
/// backend the chip is wired with, and (optionally) a pre-built chip.
///
/// [`Campaign::default`] reproduces [`run_resilient`]'s behavior exactly:
/// default engine/fault/policy, direct addressing, auto-built chip.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// Streaming-engine planning configuration.
    pub engine: EngineConfig,
    /// Fault model knobs (rate, weights, seed, wear degradation).
    pub faults: FaultConfig,
    /// Recovery budget and restart policy.
    pub policy: RecoveryPolicy,
    /// Pin backend the chip is wired with. A stuck electrode takes its
    /// whole pin group out of service (the shared pin can no longer be
    /// driven safely), and execution runs under the pinned simulator.
    pub backend: BackendKind,
    /// Run on this chip instead of the auto-built streaming preset —
    /// e.g. a wear-aware placement from [`dmf_chip::Placer::place_with`].
    /// The chip must satisfy `validate_for_engine` for the target's
    /// fluid count.
    pub chip: Option<ChipSpec>,
}

/// The result of a resilient streaming campaign.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The demanded target-droplet count.
    pub demand: u64,
    /// Droplets emitted at output ports across all runs.
    pub emitted: u64,
    /// Target-grade survivors credited by the recovery planner.
    pub salvaged: u64,
    /// Faults injected across all runs.
    pub injected: u64,
    /// Fault records detected by sensor checkpoints.
    pub detected: u64,
    /// Re-synthesis rounds spent.
    pub replans: u32,
    /// Abort-and-restart fallbacks taken (0 or 1).
    pub restarts: u32,
    /// Simulator runs executed (one per pass, including recovery passes).
    pub runs: u32,
    /// Completion time of the fault-free baseline plan, in cycles.
    pub baseline_cycles: u64,
    /// Cycles actually spent across all runs.
    pub total_cycles: u64,
    /// Electrodes diagnosed dead (and routed around) during the campaign.
    pub dead_cells: Vec<Coord>,
    /// One trace per simulator run, in execution order.
    pub traces: Vec<Trace>,
}

impl ResilientOutcome {
    /// Target droplets delivered: emitted plus salvaged survivors.
    pub fn delivered(&self) -> u64 {
        self.emitted + self.salvaged
    }

    /// Whether the campaign met the demand.
    pub fn demand_met(&self) -> bool {
        self.delivered() >= self.demand
    }

    /// Cycle overhead over the fault-free baseline.
    pub fn extra_cycles(&self) -> u64 {
        self.total_cycles.saturating_sub(self.baseline_cycles)
    }
}

impl fmt::Display for ResilientOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delivered={}/{} (emitted={} salvaged={}) faults={}/{} replans={} restarts={} \
             runs={} cycles={} (+{} over baseline) dead={}",
            self.delivered(),
            self.demand,
            self.emitted,
            self.salvaged,
            self.detected,
            self.injected,
            self.replans,
            self.restarts,
            self.runs,
            self.total_cycles,
            self.extra_cycles(),
            self.dead_cells.len()
        )
    }
}

/// Runs a whole streaming campaign under fault injection, recovering
/// until `demand` target droplets are delivered or the recovery policy
/// gives up.
///
/// The loop per pass: realize it on the current chip (routing around
/// every electrode diagnosed dead so far), sample a fault plan from the
/// seeded model (wear-aware: the chip's accumulated actuation counts
/// raise per-electrode failure odds), execute under
/// [`Simulator::run_faulty`], diagnose stuck electrodes from the fault
/// records, credit target-grade survivors via trace lineage, and — when
/// targets went unmet — ask [`StreamingEngine::plan_recovery`] for a
/// partial re-synthesis that is appended to the pass queue.
///
/// Counts `recovery.extra_cycles` (and, through the simulator and the
/// planner, `fault.injected` / `fault.detected` / `recovery.replans`)
/// when the global recorder is enabled.
///
/// A `fault_config.fault_rate` of 0 makes every run byte-identical to
/// the fault-free baseline: same chip, same programs, same traces.
///
/// # Errors
///
/// Propagates planning/realization/chip errors and returns
/// [`FaultError::RecoveryExhausted`] when the replan budget (and the
/// restart fallback, if enabled) runs out with the demand unmet.
pub fn run_resilient(
    target: &TargetRatio,
    demand: u64,
    engine_config: EngineConfig,
    fault_config: &FaultConfig,
    policy: RecoveryPolicy,
) -> Result<ResilientOutcome, FaultError> {
    run_resilient_cached(target, demand, engine_config, fault_config, policy, PlanCache::shared())
}

/// [`run_resilient`] with a caller-supplied plan cache.
///
/// The baseline plan and every [`StreamingEngine::plan_recovery`] replan
/// go through `cache`, so a Monte-Carlo sweep that hands the same `Arc`
/// to every trial plans each distinct `(config, target, demand)` once:
/// trial 2's baseline and any replan for an already-seen residual demand
/// are cache hits.
///
/// # Errors
///
/// As [`run_resilient`].
pub fn run_resilient_cached(
    target: &TargetRatio,
    demand: u64,
    engine_config: EngineConfig,
    fault_config: &FaultConfig,
    policy: RecoveryPolicy,
    cache: Arc<PlanCache>,
) -> Result<ResilientOutcome, FaultError> {
    let campaign =
        Campaign { engine: engine_config, faults: *fault_config, policy, ..Campaign::default() };
    run_campaign(target, demand, &campaign, cache, &mut WearTracker::new())
}

/// The full campaign runner: [`run_resilient_cached`] generalised with a
/// [`Campaign`] (pin backend, optional pre-built chip) and a
/// caller-threaded [`WearTracker`].
///
/// `wear` is read by the fault model's degradation term and updated with
/// every run's actuations — *including ghost actuations under a shared-pin
/// backend* — so a sweep that threads one tracker through consecutive
/// trials ages the chip realistically across the whole sweep instead of
/// starting each trial on pristine electrodes.
///
/// Under a pin-constrained backend a diagnosed stuck electrode retires
/// its entire pin group: a pin wired to a dead electrode can never be
/// driven safely again, so every group mate is marked dead and routed
/// around. Under direct addressing groups are singletons and this
/// reduces to the classic per-cell diagnosis.
///
/// # Errors
///
/// As [`run_resilient`], plus [`FaultError::Pins`] when the backend
/// cannot assign the chip.
pub fn run_campaign(
    target: &TargetRatio,
    demand: u64,
    campaign: &Campaign,
    cache: Arc<PlanCache>,
    wear: &mut WearTracker,
) -> Result<ResilientOutcome, FaultError> {
    let _span = dmf_obs::span!("run_resilient");
    let engine_config = campaign.engine;
    let fault_config = &campaign.faults;
    let policy = campaign.policy;
    let engine = StreamingEngine::new(engine_config).with_cache(Arc::clone(&cache));
    let plan = engine.plan(target, demand)?;
    let baseline_cycles = plan.total_cycles;
    let mut chip = match &campaign.chip {
        Some(prebuilt) => prebuilt.clone(),
        None => streaming_chip(target.fluid_count(), plan.mixers, plan.storage_peak.max(1))?,
    };
    let pins = campaign.backend.assign(&chip)?;
    // Recovery passes must fit the already-built chip, whatever storage
    // budget the baseline plan enjoyed.
    let chip_storage = chip.storage_cells().count();
    let recovery_limit = engine_config.storage_limit.map_or(chip_storage, |l| l.min(chip_storage));
    let recovery_engine =
        StreamingEngine::new(engine_config.with_storage_limit(recovery_limit)).with_cache(cache);

    let mut model = FaultModel::new(*fault_config);
    let target_mixture = target.to_mixture();
    let mut queue: VecDeque<_> = plan.passes.into_iter().collect();

    let mut emitted = 0u64;
    let mut salvaged = 0u64;
    let mut injected = 0u64;
    let mut detected = 0u64;
    let mut replans = 0u32;
    let mut restarts = 0u32;
    let mut runs = 0u32;
    let mut total_cycles = 0u64;
    let mut traces = Vec::new();

    while emitted + salvaged < demand {
        let Some(pass) = queue.pop_front() else {
            // Queue drained with the demand unmet: a replan round was
            // denied by the budget, or salvage credit fell short.
            if policy.restart_on_exhaustion && restarts == 0 {
                restarts += 1;
                replans = 0;
                let r = recovery_engine.plan_recovery(target, demand - (emitted + salvaged), 0)?;
                if let Some(p) = r.plan {
                    queue.extend(p.passes);
                }
                continue;
            }
            return Err(FaultError::RecoveryExhausted {
                replans,
                delivered: emitted + salvaged,
                demand,
            });
        };

        runs += 1;
        let expected = pass.demand.div_ceil(2) * 2;
        let margin = pass.forest.split_error_margin(fault_config.split_tolerance);
        let (pass_emitted, salvage_pool) = match realize_pass(&pass, &chip) {
            Ok(program) => {
                let faults = model.sample(&chip, &program, wear, margin);
                let outcome =
                    Simulator::new(&chip).with_pins(&pins).run_faulty(&program, &faults)?;
                wear.absorb(&outcome.report);
                for rec in &outcome.faults {
                    if let FaultKind::StuckElectrode { cell } = rec.kind {
                        // A stuck electrode poisons its whole pin group:
                        // driving the shared pin would actuate the dead
                        // cell too, so every group mate goes out of
                        // service. Singleton groups under direct
                        // addressing reduce to the classic diagnosis.
                        for &g in pins.group_of(cell) {
                            chip.mark_dead(g);
                        }
                    }
                }
                injected += outcome.report.faults_injected;
                detected += outcome.report.faults_detected;
                total_cycles += u64::from(outcome.report.cycles);
                let contents = droplet_mixtures(&outcome.trace, &chip, target.fluid_count());
                let pool = outcome
                    .survivors
                    .iter()
                    .filter(|d| contents.get(d) == Some(&target_mixture))
                    .count() as u64;
                let e = outcome.report.emitted;
                traces.push(outcome.trace);
                (e, pool)
            }
            // A recovery pass can fail to realize when too many
            // electrodes died under its planned routes; treat it as a
            // fully lost pass and let the replan budget decide.
            Err(EngineError::Chip(_)) | Err(EngineError::StorageExhausted { .. }) => (0, 0),
            Err(e) => return Err(e.into()),
        };

        emitted += pass_emitted;
        let lost = expected.saturating_sub(pass_emitted);
        if lost > 0 && emitted + salvaged < demand {
            if replans >= policy.max_replans {
                // Deny the replan; the drain branch above decides between
                // the restart fallback and giving up.
                queue.clear();
                continue;
            }
            replans += 1;
            let r = recovery_engine.plan_recovery(target, lost, salvage_pool)?;
            salvaged += r.salvaged;
            if let Some(p) = r.plan {
                queue.extend(p.passes);
            }
        }
    }

    let obs = dmf_obs::global();
    if obs.is_enabled() {
        obs.count("recovery.extra_cycles", total_cycles.saturating_sub(baseline_cycles));
    }
    Ok(ResilientOutcome {
        demand,
        emitted,
        salvaged,
        injected,
        detected,
        replans,
        restarts,
        runs,
        baseline_cycles,
        total_cycles,
        dead_cells: chip.dead_cells().collect(),
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcr_d4() -> TargetRatio {
        TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap()
    }

    #[test]
    fn zero_rate_campaign_matches_baseline() {
        let out = run_resilient(
            &pcr_d4(),
            20,
            EngineConfig::default(),
            &FaultConfig::default(),
            RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(out.demand_met());
        assert_eq!(out.emitted, 20);
        assert_eq!(out.salvaged, 0);
        assert_eq!(out.injected, 0);
        assert_eq!(out.replans, 0);
        assert_eq!(out.runs, 1);
        assert_eq!(out.total_cycles, out.baseline_cycles);
        assert_eq!(out.extra_cycles(), 0);
        assert!(out.dead_cells.is_empty());
    }

    #[test]
    fn default_campaign_matches_run_resilient() {
        let cfg = FaultConfig::default().with_seed(42).with_fault_rate(0.05);
        let policy = RecoveryPolicy::default().with_max_replans(32);
        let baseline = run_resilient(&pcr_d4(), 20, EngineConfig::default(), &cfg, policy).unwrap();
        let campaign = Campaign { faults: cfg, policy, ..Campaign::default() };
        let mut wear = WearTracker::new();
        let out = run_campaign(&pcr_d4(), 20, &campaign, PlanCache::shared(), &mut wear).unwrap();
        assert_eq!(out.emitted, baseline.emitted);
        assert_eq!(out.injected, baseline.injected);
        assert_eq!(out.runs, baseline.runs);
        assert_eq!(out.total_cycles, baseline.total_cycles);
        assert_eq!(out.dead_cells, baseline.dead_cells);
        assert!(wear.total() > 0, "the caller's tracker absorbs the campaign's wear");
    }

    #[test]
    fn pinned_campaign_meets_demand_and_retires_pin_groups() {
        let cfg = FaultConfig::default().with_seed(42).with_fault_rate(0.05);
        let campaign = Campaign {
            faults: cfg,
            policy: RecoveryPolicy::default().with_max_replans(32),
            backend: BackendKind::RowColumn,
            chip: Some(streaming_chip(7, 3, 5).unwrap()),
            ..Campaign::default()
        };
        let mut wear = WearTracker::new();
        let out = run_campaign(&pcr_d4(), 20, &campaign, PlanCache::shared(), &mut wear).unwrap();
        assert!(out.demand_met(), "pinned recovery must meet the demand: {out}");
        // Shared pins ghost-fire group mates; that wear is real and
        // lands in the caller's tracker.
        assert!(out.traces.len() as u32 == out.runs);
        if !out.dead_cells.is_empty() {
            // Diagnosed electrodes retire whole groups, so dead cells
            // come in group-sized batches.
            let chip = streaming_chip(7, 3, 5).unwrap();
            let pins = BackendKind::RowColumn.assign(&chip).unwrap();
            for &cell in &out.dead_cells {
                for &g in pins.group_of(cell) {
                    assert!(out.dead_cells.contains(&g), "{cell} dead but group mate {g} alive");
                }
            }
        }
    }

    #[test]
    fn wear_threads_across_campaign_trials() {
        let campaign = Campaign::default();
        let cache = PlanCache::shared();
        let mut wear = WearTracker::new();
        run_campaign(&pcr_d4(), 20, &campaign, Arc::clone(&cache), &mut wear).unwrap();
        let after_one = wear.total();
        run_campaign(&pcr_d4(), 20, &campaign, cache, &mut wear).unwrap();
        assert!(after_one > 0);
        assert_eq!(wear.total(), 2 * after_one, "identical trials double the wear");
    }

    #[test]
    fn seeded_faulty_campaign_still_meets_demand() {
        let cfg = FaultConfig::default().with_seed(42).with_fault_rate(0.05);
        let out = run_resilient(
            &pcr_d4(),
            20,
            EngineConfig::default(),
            &cfg,
            RecoveryPolicy::default().with_max_replans(32),
        )
        .unwrap();
        assert!(out.demand_met(), "recovery must meet the demand: {out}");
        assert!(out.injected >= out.detected);
    }
}
