//! Per-electrode wear accounting across runs.
//!
//! The simulator has always *recorded* per-electrode actuation counts
//! ([`dmf_sim::SimReport::electrode_actuations`]); this tracker finally
//! *consumes* them: accumulated actuations feed the degradation term of
//! the fault model, so heavily used electrodes (the paper's reliability
//! concern, Huang et al. ICCAD 2011) are the first to die.

use dmf_chip::Coord;
use dmf_sim::SimReport;
use std::collections::HashMap;

/// Cumulative per-electrode actuation counts over a chip's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WearTracker {
    counts: HashMap<Coord, u64>,
}

impl WearTracker {
    /// A fresh chip with no wear.
    pub fn new() -> Self {
        WearTracker::default()
    }

    /// Adds one run's actuation counts to the lifetime totals.
    pub fn absorb(&mut self, report: &SimReport) {
        for (&cell, &n) in &report.electrode_actuations {
            *self.counts.entry(cell).or_insert(0) += u64::from(n);
        }
    }

    /// Lifetime actuations of one electrode.
    pub fn wear(&self, cell: Coord) -> u64 {
        self.counts.get(&cell).copied().unwrap_or(0)
    }

    /// Actuations beyond the degradation threshold (0 while healthy).
    pub fn excess(&self, cell: Coord, threshold: u32) -> u64 {
        self.wear(cell).saturating_sub(u64::from(threshold))
    }

    /// Lifetime actuations summed over all electrodes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of electrodes ever actuated.
    pub fn touched(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(electrode, lifetime actuations)` pairs in
    /// arbitrary order — e.g. to seed a [`dmf_chip::WearMap`] for
    /// wear-aware placement.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, u64)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wear_accumulates_across_reports() {
        let mut w = WearTracker::new();
        let mut r = SimReport::default();
        r.electrode_actuations.insert(Coord::new(1, 1), 5);
        w.absorb(&r);
        w.absorb(&r);
        assert_eq!(w.wear(Coord::new(1, 1)), 10);
        assert_eq!(w.wear(Coord::new(0, 0)), 0);
        assert_eq!(w.total(), 10);
        assert_eq!(w.touched(), 1);
        assert_eq!(w.excess(Coord::new(1, 1), 4), 6);
        assert_eq!(w.excess(Coord::new(1, 1), 256), 0);
    }
}
