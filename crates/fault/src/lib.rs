//! Fault injection and error recovery for the droplet-streaming engine.
//!
//! Digital microfluidic chips fail in the field: electrodes degrade with
//! actuation and get stuck, reservoirs misfire, splits come out uneven.
//! This crate closes the loop the DAC 2014 streaming engine leaves open —
//! it *injects* such faults deterministically, lets the simulator's
//! sensor checkpoints *detect* them, and drives the engine's
//! demand-level *recovery* until the demanded target droplets are
//! actually delivered.
//!
//! The pieces:
//!
//! * [`FaultConfig`] — the seeded fault model's knobs (master rate,
//!   per-mechanism weights, wear degradation, sensor period);
//! * [`WearTracker`] — cumulative per-electrode actuation counts,
//!   feeding the degradation term;
//! * [`FaultModel`] — samples a concrete [`dmf_sim::InjectedFaults`]
//!   plan for one run (same seed, same history → same plan);
//! * [`lineage`] — reconstructs droplet contents from a trace, the
//!   ground truth for salvage crediting and CF verification;
//! * [`run_resilient`] — the campaign loop: realize, run under faults,
//!   diagnose dead electrodes (rerouted around next run), salvage,
//!   re-plan the shortfall, until the demand is met.
//!
//! # Examples
//!
//! ```
//! use dmf_engine::{EngineConfig, RecoveryPolicy};
//! use dmf_fault::{run_resilient, FaultConfig};
//! use dmf_ratio::TargetRatio;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
//! let faults = FaultConfig::default().with_seed(42).with_fault_rate(0.05);
//! let out = run_resilient(
//!     &target,
//!     20,
//!     EngineConfig::default(),
//!     &faults,
//!     RecoveryPolicy::default().with_max_replans(32),
//! )?;
//! assert!(out.demand_met());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod lineage;
mod model;
mod runner;
mod wear;

pub use config::FaultConfig;
pub use model::FaultModel;
pub use runner::{
    run_campaign, run_resilient, run_resilient_cached, Campaign, FaultError, ResilientOutcome,
};
pub use wear::WearTracker;
