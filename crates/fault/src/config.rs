/// Knobs of the seeded fault model and its sensors.
///
/// The `fault_rate` is the master dial the Monte-Carlo exhibits sweep;
/// the per-mechanism weights scale it into the probability of each
/// physical failure class, and the wear terms add actuation-dependent
/// degradation on top (electrodes actuated beyond `wear_threshold`
/// become increasingly likely to die).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// RNG seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Master fault rate (0 disables injection entirely — a zero-rate
    /// run is byte-identical to the fault-free baseline).
    pub fault_rate: f64,
    /// Per-electrode scale: each open electrode dies before a run with
    /// probability `fault_rate * electrode_weight` (plus wear).
    pub electrode_weight: f64,
    /// Per-dispense scale: each dispense fails with probability
    /// `fault_rate * dispense_weight`.
    pub dispense_weight: f64,
    /// Per-split scale: each mix-split is volume-perturbed with
    /// probability `fault_rate * split_weight`; a perturbed split is
    /// erroneous when its sampled error exceeds the forest's
    /// split-error margin.
    pub split_weight: f64,
    /// Actuation count beyond which an electrode starts degrading.
    pub wear_threshold: u32,
    /// Extra death probability per actuation beyond the threshold.
    pub wear_factor: f64,
    /// Sensor checkpoint period in schedule cycles (0 = end-of-run
    /// checkpoint only).
    pub sensor_period: u32,
    /// CF tolerance handed to `split_error_margin` when sizing the
    /// tolerated split-volume error.
    pub split_tolerance: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            fault_rate: 0.0,
            electrode_weight: 0.02,
            dispense_weight: 1.0,
            split_weight: 1.0,
            wear_threshold: 256,
            wear_factor: 1e-4,
            sensor_period: 2,
            split_tolerance: 1e-3,
        }
    }
}

impl FaultConfig {
    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the master fault rate.
    #[must_use]
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Sets the sensor checkpoint period.
    #[must_use]
    pub fn with_sensor_period(mut self, period: u32) -> Self {
        self.sensor_period = period;
        self
    }

    /// Sets the wear threshold and factor of the degradation model.
    #[must_use]
    pub fn with_wear(mut self, threshold: u32, factor: f64) -> Self {
        self.wear_threshold = threshold;
        self.wear_factor = factor;
        self
    }
}
