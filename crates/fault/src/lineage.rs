//! Mixture reconstruction from traces.
//!
//! The simulator tracks droplets, not contents; this module replays a
//! [`Trace`]'s dispense and mix events against the chip's reservoir map
//! to recover what every droplet actually held — the ground truth the
//! recovery runner uses to credit salvaged survivors and the tests use
//! to verify that every emitted target carries the demanded CF vector.

use dmf_chip::{ChipSpec, ModuleKind};
use dmf_ratio::Mixture;
use dmf_sim::{DropletId, Trace, TraceEvent};
use std::collections::HashMap;

/// Replays `trace` into a droplet → mixture map over `fluid_count`
/// fluids. Droplets born from a mix inherit the 1:1 combination of their
/// parents; unknown parents (never dispensed on this chip) are skipped.
pub fn droplet_mixtures(
    trace: &Trace,
    chip: &ChipSpec,
    fluid_count: usize,
) -> HashMap<DropletId, Mixture> {
    let mut contents: HashMap<DropletId, Mixture> = HashMap::new();
    for timed in trace.events() {
        match &timed.event {
            TraceEvent::Dispensed { droplet, reservoir, .. } => {
                if let ModuleKind::Reservoir { fluid } = chip.module(*reservoir).kind() {
                    if let Ok(pure) = Mixture::try_pure(fluid, fluid_count) {
                        contents.insert(*droplet, pure);
                    }
                }
            }
            TraceEvent::Mixed { inputs, outputs, .. } => {
                let mixed = match (contents.get(&inputs[0]), contents.get(&inputs[1])) {
                    (Some(a), Some(b)) => a.mix(b).ok(),
                    _ => None,
                };
                if let Some(m) = mixed {
                    contents.insert(outputs[0], m.clone());
                    contents.insert(outputs[1], m);
                }
            }
            _ => {}
        }
    }
    contents
}

/// The droplets emitted at output ports, in emission order.
pub fn emitted_droplets(trace: &Trace) -> Vec<DropletId> {
    trace
        .events()
        .iter()
        .filter_map(|e| match e.event {
            TraceEvent::Emitted { droplet } => Some(droplet),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_chip::presets::pcr_chip;
    use dmf_sim::{ChipProgram, Instruction, Simulator};

    #[test]
    fn lineage_recovers_mixture_contents() {
        let chip = pcr_chip();
        let r1 = chip.reservoir_for(0).unwrap().id();
        let r7 = chip.reservoir_for(6).unwrap().id();
        let m1 = chip.mixers().next().unwrap().id();
        let w1 = chip.waste_reservoirs().next().unwrap().id();
        let o1 = chip.outputs().next().unwrap().id();
        let mut p = ChipProgram::new();
        p.push(Instruction::Dispense { reservoir: r1, droplet: DropletId(0) });
        p.push(Instruction::TransportTo { droplet: DropletId(0), module: m1 });
        p.push(Instruction::Dispense { reservoir: r7, droplet: DropletId(1) });
        p.push(Instruction::TransportTo { droplet: DropletId(1), module: m1 });
        p.push(Instruction::MixSplit {
            mixer: m1,
            a: DropletId(0),
            b: DropletId(1),
            out_a: DropletId(2),
            out_b: DropletId(3),
        });
        p.push(Instruction::TransportTo { droplet: DropletId(2), module: o1 });
        p.push(Instruction::Emit { droplet: DropletId(2), output: o1 });
        p.push(Instruction::TransportTo { droplet: DropletId(3), module: w1 });
        p.push(Instruction::Discard { droplet: DropletId(3), waste: w1 });
        let (_, trace) = Simulator::new(&chip).run_traced(&p).unwrap();
        let contents = droplet_mixtures(&trace, &chip, 7);
        assert_eq!(contents[&DropletId(0)], Mixture::try_pure(0, 7).unwrap());
        let expected =
            Mixture::try_pure(0, 7).unwrap().mix(&Mixture::try_pure(6, 7).unwrap()).unwrap();
        assert_eq!(contents[&DropletId(2)], expected);
        assert_eq!(contents[&DropletId(2)], contents[&DropletId(3)]);
        assert_eq!(emitted_droplets(&trace), vec![DropletId(2)]);
    }
}
