use crate::{FluidId, RatioError};
use std::fmt;

/// The content of one unit-volume droplet expressed as a dyadic CF vector.
///
/// A mixture at *level* `l` is the integer vector `parts` with
/// `sum(parts) == 2^l`; component `i` of the droplet has concentration factor
/// `parts[i] / 2^l`. Pure reagents are level-0 mixtures with a single
/// component equal to 1.
///
/// Mixtures are normalised on construction: trailing factors of two shared by
/// every component are divided out, so two droplets with the same physical
/// content always compare equal and hash identically. This canonical form is
/// what the mixing-forest waste pool keys on.
///
/// # Examples
///
/// ```
/// use dmf_ratio::Mixture;
///
/// # fn main() -> Result<(), dmf_ratio::RatioError> {
/// let half_and_half = Mixture::try_pure(0, 2)?.mix(&Mixture::try_pure(1, 2)?)?;
/// assert_eq!(half_and_half.level(), 1);
/// assert_eq!(half_and_half.cf(0), (1, 2));
///
/// // Mixing equal content yields the same (canonicalised) mixture.
/// let same = half_and_half.mix(&half_and_half)?;
/// assert_eq!(same, half_and_half);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mixture {
    level: u32,
    parts: Vec<u64>,
}

impl Mixture {
    /// Creates a mixture from a level and an integer parts vector.
    ///
    /// The vector is canonicalised (common factors of two are divided out of
    /// all parts, reducing the level accordingly).
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Empty`] for an empty vector,
    /// [`RatioError::AccuracyTooLarge`] for `level >= 63` and
    /// [`RatioError::SumMismatch`] when `sum(parts) != 2^level`.
    pub fn new(level: u32, parts: Vec<u64>) -> Result<Self, RatioError> {
        if parts.is_empty() {
            return Err(RatioError::Empty);
        }
        if level >= 63 {
            return Err(RatioError::AccuracyTooLarge { accuracy: level });
        }
        let expected = 1u64 << level;
        let actual: u64 = parts.iter().sum();
        if actual != expected {
            return Err(RatioError::SumMismatch { expected, actual });
        }
        let mut mixture = Mixture { level, parts };
        mixture.canonicalise();
        Ok(mixture)
    }

    /// Creates the level-0 mixture for a single pure fluid.
    ///
    /// (The old panicking `Mixture::pure` convenience constructor is gone:
    /// the workspace lint wall forbids panics in library code, so the
    /// fallible form is the only form.)
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::FluidOutOfRange`] when `fluid >= fluid_count` and
    /// [`RatioError::Empty`] when `fluid_count == 0`.
    pub fn try_pure(fluid: usize, fluid_count: usize) -> Result<Self, RatioError> {
        if fluid_count == 0 {
            return Err(RatioError::Empty);
        }
        if fluid >= fluid_count {
            return Err(RatioError::FluidOutOfRange { fluid, count: fluid_count });
        }
        let mut parts = vec![0; fluid_count];
        parts[fluid] = 1;
        Ok(Mixture { level: 0, parts })
    }

    /// The dyadic level `l`; the denominator of every CF is `2^l`.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The integer numerator vector (sums to `2^level`).
    pub fn parts(&self) -> &[u64] {
        &self.parts
    }

    /// Number of fluids in the underlying fluid set.
    pub fn fluid_count(&self) -> usize {
        self.parts.len()
    }

    /// The concentration factor of fluid `i` as a `(numerator, denominator)`
    /// pair with denominator `2^level`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cf(&self, i: usize) -> (u64, u64) {
        (self.parts[i], 1u64 << self.level)
    }

    /// Whether the droplet is a single pure reagent, and if so which one.
    pub fn as_pure(&self) -> Option<FluidId> {
        let mut found = None;
        for (i, &p) in self.parts.iter().enumerate() {
            if p != 0 {
                if found.is_some() {
                    return None;
                }
                found = Some(FluidId(i));
            }
        }
        found
    }

    /// (1:1)-mixes two droplets, yielding the content of each of the two
    /// resulting droplets.
    ///
    /// Operands of different levels are handled by scaling both vectors to
    /// the common level `max(la, lb)`; the result has level `max(la, lb)+1`
    /// before canonicalisation.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::FluidCountMismatch`] when the operands range
    /// over different fluid sets and [`RatioError::AccuracyTooLarge`] when the
    /// result level would overflow.
    pub fn mix(&self, other: &Mixture) -> Result<Mixture, RatioError> {
        if self.fluid_count() != other.fluid_count() {
            return Err(RatioError::FluidCountMismatch {
                left: self.fluid_count(),
                right: other.fluid_count(),
            });
        }
        let common = self.level.max(other.level);
        if common + 1 >= 63 {
            return Err(RatioError::AccuracyTooLarge { accuracy: common + 1 });
        }
        let ls = common - self.level;
        let rs = common - other.level;
        let parts: Vec<u64> =
            self.parts.iter().zip(&other.parts).map(|(&a, &b)| (a << ls) + (b << rs)).collect();
        let mut mixture = Mixture { level: common + 1, parts };
        mixture.canonicalise();
        Ok(mixture)
    }

    /// Rescales the parts vector to a target level `>= self.level()`.
    ///
    /// Useful when comparing droplets against a target ratio expressed at a
    /// fixed accuracy `d`.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::AccuracyTooLarge`] when `level < self.level()`
    /// (the mixture cannot be represented more coarsely) or when `level`
    /// exceeds the supported range.
    pub fn parts_at_level(&self, level: u32) -> Result<Vec<u64>, RatioError> {
        if level < self.level || level >= 63 {
            return Err(RatioError::AccuracyTooLarge { accuracy: level });
        }
        let shift = level - self.level;
        Ok(self.parts.iter().map(|&p| p << shift).collect())
    }

    /// Crate-internal constructor for callers whose own invariants already
    /// guarantee [`Mixture::new`]'s checks (non-empty parts summing to
    /// `2^level` with `level < 63`) — [`crate::TargetRatio`] enforces
    /// exactly these, so its conversion needs no panic and no `Result`.
    pub(crate) fn from_checked_parts(level: u32, parts: Vec<u64>) -> Self {
        let mut mixture = Mixture { level, parts };
        mixture.canonicalise();
        mixture
    }

    fn canonicalise(&mut self) {
        while self.level > 0 && self.parts.iter().all(|p| p % 2 == 0) {
            for p in &mut self.parts {
                *p /= 2;
            }
            self.level -= 1;
        }
    }
}

impl fmt::Display for Mixture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ">/{}", 1u64 << self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_is_level_zero() {
        let m = Mixture::try_pure(2, 5).unwrap();
        assert_eq!(m.level(), 0);
        assert_eq!(m.parts(), &[0, 0, 1, 0, 0]);
        assert_eq!(m.as_pure(), Some(FluidId(2)));
    }

    #[test]
    fn try_pure_rejects_out_of_range() {
        assert_eq!(
            Mixture::try_pure(3, 3),
            Err(RatioError::FluidOutOfRange { fluid: 3, count: 3 })
        );
        assert_eq!(Mixture::try_pure(0, 0), Err(RatioError::Empty));
    }

    #[test]
    fn new_validates_sum() {
        assert!(Mixture::new(2, vec![1, 3]).is_ok());
        assert_eq!(
            Mixture::new(2, vec![1, 2]),
            Err(RatioError::SumMismatch { expected: 4, actual: 3 })
        );
        assert_eq!(Mixture::new(0, vec![]), Err(RatioError::Empty));
    }

    #[test]
    fn mix_same_level() {
        let a = Mixture::try_pure(0, 2).unwrap();
        let b = Mixture::try_pure(1, 2).unwrap();
        let m = a.mix(&b).unwrap();
        assert_eq!(m.level(), 1);
        assert_eq!(m.parts(), &[1, 1]);
    }

    #[test]
    fn mix_heterogeneous_levels() {
        // Root of the PCR d=4 tree: pure x7 mixed with a level-3 droplet.
        let x7 = Mixture::try_pure(6, 7).unwrap();
        let inner = Mixture::new(3, vec![2, 1, 1, 1, 1, 1, 1]).unwrap();
        let root = x7.mix(&inner).unwrap();
        assert_eq!(root.level(), 4);
        assert_eq!(root.parts(), &[2, 1, 1, 1, 1, 1, 9]);
    }

    #[test]
    fn canonicalisation_reduces_even_vectors() {
        let m = Mixture::new(3, vec![4, 4]).unwrap();
        assert_eq!(m.level(), 1);
        assert_eq!(m.parts(), &[1, 1]);
    }

    #[test]
    fn canonical_equality_after_self_mix() {
        let half = Mixture::new(1, vec![1, 1]).unwrap();
        let same = half.mix(&half).unwrap();
        assert_eq!(same, half);
    }

    #[test]
    fn mix_rejects_fluid_count_mismatch() {
        let a = Mixture::try_pure(0, 2).unwrap();
        let b = Mixture::try_pure(0, 3).unwrap();
        assert_eq!(a.mix(&b), Err(RatioError::FluidCountMismatch { left: 2, right: 3 }));
    }

    #[test]
    fn parts_at_level_scales() {
        let m = Mixture::new(1, vec![1, 1]).unwrap();
        assert_eq!(m.parts_at_level(3).unwrap(), vec![4, 4]);
        assert!(m.parts_at_level(0).is_err());
    }

    #[test]
    fn display_is_compact() {
        let m = Mixture::new(4, vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        assert_eq!(m.to_string(), "<2:1:1:1:1:1:9>/16");
    }
}
