//! Exact concentration-factor (CF) arithmetic for digital-microfluidic (DMF)
//! sample preparation.
//!
//! In the (1:1) mix-split model two unit-volume droplets are merged and split
//! back into two unit-volume droplets, so every reachable concentration is a
//! dyadic rational: a droplet produced after `l` mixing levels carries the CF
//! vector `parts / 2^l` where `parts` is an integer vector summing to `2^l`.
//!
//! This crate provides the two value types everything else builds on:
//!
//! * [`Mixture`] — the content of one droplet: an integer vector over the
//!   fluid set together with its dyadic *level*.
//! * [`TargetRatio`] — a user-specified target `a1 : a2 : … : aN` whose sum is
//!   `2^d` for a chosen accuracy level `d`. [`TargetRatio::approximate`]
//!   rounds arbitrary real-valued ratios onto that grid with the
//!   largest-remainder method, and [`TargetRatio::paper_approximate`] uses the
//!   DAC 2014 paper's rounding (every reagent keeps at least one unit; the
//!   filler absorbs the residue), which turns the PCR master-mix
//!   `{10 : 8 : 0.8 : 0.8 : 1 : 1 : 78.4}%` into `2:1:1:1:1:1:9` at `d = 4`.
//!
//! # Examples
//!
//! ```
//! use dmf_ratio::{Mixture, TargetRatio};
//!
//! # fn main() -> Result<(), dmf_ratio::RatioError> {
//! // A 7-fluid PCR master mix at accuracy level d = 4.
//! let target = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9])?;
//! assert_eq!(target.accuracy(), 4);
//!
//! // Mix a pure droplet of fluid 0 with a pure droplet of fluid 6.
//! let a = Mixture::try_pure(0, 7)?;
//! let b = Mixture::try_pure(6, 7)?;
//! let mixed = a.mix(&b)?;
//! assert_eq!(mixed.level(), 1);
//! assert_eq!(mixed.parts(), &[1, 0, 0, 0, 0, 0, 1]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod mixture;
mod target;

pub use error::RatioError;
pub use mixture::Mixture;
pub use target::TargetRatio;

/// Index of a fluid within a target ratio (0-based).
///
/// The paper writes the fluid set as `X = {x1, …, xN}`; `FluidId(0)`
/// corresponds to `x1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FluidId(pub usize);

impl std::fmt::Display for FluidId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}
