use crate::{Mixture, RatioError};
use std::fmt;

/// A target mixing ratio `a1 : a2 : … : aN` with ratio-sum `L = 2^d`.
///
/// `d` is the *accuracy level*: every constituent CF is a multiple of
/// `1/2^d`, and a mixing tree of depth `d` realises the target with a maximum
/// per-fluid CF error of `1/2^d` relative to the real-valued specification
/// (paper, §2.1).
///
/// Components may be zero (a fluid that rounded away at this accuracy), but
/// at least one component must be positive.
///
/// # Examples
///
/// ```
/// use dmf_ratio::TargetRatio;
///
/// # fn main() -> Result<(), dmf_ratio::RatioError> {
/// // The PCR master-mix percentages from the paper at accuracy d = 4.
/// let pcr = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];
/// let coarse = TargetRatio::paper_approximate(&pcr, 4)?;
/// assert_eq!(coarse.parts(), &[2, 1, 1, 1, 1, 1, 9]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TargetRatio {
    accuracy: u32,
    parts: Vec<u64>,
}

impl TargetRatio {
    /// Creates a target ratio from integer components.
    ///
    /// The accuracy level is inferred from the component sum, which must be a
    /// power of two. The components are **not** reduced: `16 : 16` is a valid
    /// `d = 5` target distinct from the `d = 1` target `1 : 1`; call
    /// [`TargetRatio::reduced`] for the canonical form.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Empty`] for no components,
    /// [`RatioError::AllZero`] if every component is zero,
    /// [`RatioError::SumNotPowerOfTwo`] otherwise when the sum is not `2^d`
    /// and [`RatioError::AccuracyTooLarge`] when `d >= 63` (the dyadic
    /// arithmetic works in `u64` numerators).
    pub fn new(parts: Vec<u64>) -> Result<Self, RatioError> {
        if parts.is_empty() {
            return Err(RatioError::Empty);
        }
        let sum: u64 = parts.iter().sum();
        if sum == 0 {
            return Err(RatioError::AllZero);
        }
        if !sum.is_power_of_two() {
            return Err(RatioError::SumNotPowerOfTwo { sum });
        }
        let accuracy = sum.trailing_zeros();
        if accuracy >= 63 {
            return Err(RatioError::AccuracyTooLarge { accuracy });
        }
        Ok(TargetRatio { accuracy, parts })
    }

    /// The simplest mixable target: `1 : 1` at accuracy `d = 1` — one
    /// balanced (1:1) mix of two fluids.
    ///
    /// This is the only infallible constructor; it exists so callers with
    /// a "cannot actually fail" ratio in hand (published protocol tables,
    /// constructed-to-sum partitions) have a total fallback instead of a
    /// panicking `expect`.
    #[must_use]
    pub fn unit() -> Self {
        TargetRatio { accuracy: 1, parts: vec![1, 1] }
    }

    /// Rounds a real-valued ratio (percentages, volumes, any non-negative
    /// weights) onto the `2^d` grid.
    ///
    /// Uses the largest-remainder method: ideal shares
    /// `w_i * 2^d / sum(w)` are floored and the leftover units are granted to
    /// the components with the largest fractional remainders, so the rounded
    /// components always sum to exactly `2^d` while each stays within one
    /// unit of its ideal share — the `1/2^d` error bound quoted in the paper.
    /// Ties are broken toward the earlier component, which reproduces the
    /// paper's published PCR approximations at both `d = 4` and `d = 8`.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Empty`] for no weights,
    /// [`RatioError::InvalidWeight`] for a negative/NaN/infinite weight,
    /// [`RatioError::AllZero`] when all weights are zero and
    /// [`RatioError::AccuracyTooLarge`] for `accuracy >= 63`.
    pub fn approximate(weights: &[f64], accuracy: u32) -> Result<Self, RatioError> {
        let _span = dmf_obs::span!("ratio_approx");
        if weights.is_empty() {
            return Err(RatioError::Empty);
        }
        if accuracy >= 63 {
            return Err(RatioError::AccuracyTooLarge { accuracy });
        }
        for (i, w) in weights.iter().enumerate() {
            if !w.is_finite() || *w < 0.0 {
                return Err(RatioError::InvalidWeight { index: i });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(RatioError::AllZero);
        }
        let scale = (1u64 << accuracy) as f64;
        let ideal: Vec<f64> = weights.iter().map(|w| w / total * scale).collect();
        let mut parts: Vec<u64> = ideal.iter().map(|x| x.floor() as u64).collect();
        let assigned: u64 = parts.iter().sum();
        let mut leftover = (1u64 << accuracy) - assigned;
        // Grant leftover units by descending fractional remainder,
        // breaking ties toward earlier components.
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = ideal[a] - ideal[a].floor();
            let fb = ideal[b] - ideal[b].floor();
            // total_cmp: remainders are finite (weights validated above),
            // and a total order needs no panicking unwrap of partial_cmp.
            fb.total_cmp(&fa).then(a.cmp(&b))
        });
        for i in order {
            if leftover == 0 {
                break;
            }
            parts[i] += 1;
            leftover -= 1;
        }
        TargetRatio::new(parts)
    }

    /// Rounds a real-valued ratio onto the `2^d` grid the way the DAC 2014
    /// paper rounds the PCR master mix: every fluid with a positive weight
    /// keeps at least one unit (so no reagent vanishes at coarse
    /// accuracies), non-filler components are rounded half-up, and the
    /// largest component absorbs the residue so the sum stays `2^d`.
    ///
    /// For the PCR master mix `{10, 8, 0.8, 0.8, 1, 1, 78.4}%` this yields
    /// the paper's `2:1:1:1:1:1:9` at `d = 4`. At `d = 8` it yields
    /// `26:20:2:2:3:3:200`, one unit away from the paper's published
    /// `26:21:2:2:3:3:199` (which no standard rounding rule reproduces; the
    /// published vector is available verbatim in `dmf-workloads`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TargetRatio::approximate`]; additionally
    /// [`RatioError::AccuracyTooLarge`] when `2^d` is smaller than the
    /// number of positive weights (the minimum-one constraint cannot hold).
    pub fn paper_approximate(weights: &[f64], accuracy: u32) -> Result<Self, RatioError> {
        if weights.is_empty() {
            return Err(RatioError::Empty);
        }
        if accuracy >= 63 {
            return Err(RatioError::AccuracyTooLarge { accuracy });
        }
        for (i, w) in weights.iter().enumerate() {
            if !w.is_finite() || *w < 0.0 {
                return Err(RatioError::InvalidWeight { index: i });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(RatioError::AllZero);
        }
        let positive = weights.iter().filter(|&&w| w > 0.0).count() as u64;
        let target_sum = 1u64 << accuracy;
        if target_sum < positive {
            return Err(RatioError::AccuracyTooLarge { accuracy });
        }
        let scale = target_sum as f64;
        let mut parts: Vec<u64> = weights
            .iter()
            .map(|&w| if w == 0.0 { 0 } else { ((w / total * scale + 0.5).floor() as u64).max(1) })
            .collect();
        // The largest component (the "filler", e.g. water) absorbs the
        // rounding residue.
        let Some(filler) =
            weights.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i)
        else {
            return Err(RatioError::Empty);
        };
        let others: u64 =
            parts.iter().enumerate().filter(|(i, _)| *i != filler).map(|(_, &p)| p).sum();
        if others >= target_sum {
            // Degenerate: even without the filler the minimums overflow the
            // grid; fall back to the largest-remainder method.
            return TargetRatio::approximate(weights, accuracy);
        }
        parts[filler] = target_sum - others;
        TargetRatio::new(parts)
    }

    /// The accuracy level `d` (`sum == 2^d`).
    pub fn accuracy(&self) -> u32 {
        self.accuracy
    }

    /// The ratio-sum `L = 2^d`.
    pub fn ratio_sum(&self) -> u64 {
        1u64 << self.accuracy
    }

    /// The integer components `a1 … aN`.
    pub fn parts(&self) -> &[u64] {
        &self.parts
    }

    /// Number of fluids `N` (including zero components).
    pub fn fluid_count(&self) -> usize {
        self.parts.len()
    }

    /// Number of fluids with a non-zero component.
    pub fn active_fluid_count(&self) -> usize {
        self.parts.iter().filter(|&&p| p > 0).count()
    }

    /// Whether this ratio is a two-fluid *dilution* problem (`N = 2` active
    /// fluids), the special case served by the dilution literature.
    pub fn is_dilution(&self) -> bool {
        self.active_fluid_count() == 2
    }

    /// The canonical form with any common power-of-two factor divided out
    /// (minimal accuracy level realising the same CF vector).
    pub fn reduced(&self) -> TargetRatio {
        let mut parts = self.parts.clone();
        let mut accuracy = self.accuracy;
        while accuracy > 0 && parts.iter().all(|p| p % 2 == 0) {
            for p in &mut parts {
                *p /= 2;
            }
            accuracy -= 1;
        }
        TargetRatio { accuracy, parts }
    }

    /// The target expressed as a droplet [`Mixture`] at level `d`.
    ///
    /// Infallible: [`TargetRatio::new`] already enforces every invariant
    /// [`Mixture::new`] would re-check (non-empty parts summing to `2^d`
    /// with `d < 63`).
    pub fn to_mixture(&self) -> Mixture {
        Mixture::from_checked_parts(self.accuracy, self.parts.clone())
    }

    /// Maximum absolute CF error of this grid approximation against the
    /// real-valued `weights`, in CF units (the paper guarantees `<= 1/2^d`).
    pub fn max_cf_error(&self, weights: &[f64]) -> f64 {
        let total: f64 = weights.iter().sum();
        let denom = self.ratio_sum() as f64;
        self.parts
            .iter()
            .zip(weights)
            .map(|(&p, &w)| (p as f64 / denom - w / total).abs())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for TargetRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for TargetRatio {
    type Err = RatioError;

    /// Parses `"2:1:1:1:1:1:9"`-style ratio strings.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::ParseComponent`] naming the first component
    /// that fails integer parsing; sum validation matches
    /// [`TargetRatio::new`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = Vec::new();
        for (index, text) in s.split(':').enumerate() {
            let value =
                text.trim().parse::<u64>().map_err(|_| RatioError::ParseComponent { index })?;
            parts.push(value);
        }
        TargetRatio::new(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_accuracy_from_sum() {
        let r = TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap();
        assert_eq!(r.accuracy(), 4);
        assert_eq!(r.ratio_sum(), 16);
        assert_eq!(r.fluid_count(), 7);
    }

    #[test]
    fn rejects_bad_sums() {
        assert_eq!(TargetRatio::new(vec![1, 2]), Err(RatioError::SumNotPowerOfTwo { sum: 3 }));
        assert_eq!(TargetRatio::new(vec![0, 0]), Err(RatioError::AllZero));
        assert_eq!(TargetRatio::new(vec![]), Err(RatioError::Empty));
    }

    #[test]
    fn rejects_accuracy_above_mixture_range() {
        // Regression: sum = 2^63 is a power of two, but no Mixture can carry
        // level 63 — `to_mixture` used to be the place this blew up.
        assert_eq!(
            TargetRatio::new(vec![1u64 << 63]),
            Err(RatioError::AccuracyTooLarge { accuracy: 63 })
        );
        // d = 62 is the largest representable accuracy and converts cleanly.
        let edge = TargetRatio::new(vec![1u64 << 62]).unwrap();
        assert_eq!(edge.to_mixture().level(), 0); // canonicalised: single fluid
    }

    #[test]
    fn paper_approximation_d4_matches_paper() {
        let pcr = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];
        let r = TargetRatio::paper_approximate(&pcr, 4).unwrap();
        assert_eq!(r.parts(), &[2, 1, 1, 1, 1, 1, 9]);
    }

    #[test]
    fn paper_approximation_d8_is_one_unit_from_published() {
        // The published Ex.1 vector is 26:21:2:2:3:3:199; no standard
        // rounding reproduces the 21, so we document the one-unit gap here.
        let pcr = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];
        let r = TargetRatio::paper_approximate(&pcr, 8).unwrap();
        assert_eq!(r.parts(), &[26, 20, 2, 2, 3, 3, 200]);
        let published = TargetRatio::new(vec![26, 21, 2, 2, 3, 3, 199]).unwrap();
        let diff: u64 = r.parts().iter().zip(published.parts()).map(|(&a, &b)| a.abs_diff(b)).sum();
        assert_eq!(diff, 2); // one unit moved between two components
    }

    #[test]
    fn largest_remainder_keeps_sum_exact() {
        let pcr = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];
        for d in 2..=12 {
            let r = TargetRatio::approximate(&pcr, d).unwrap();
            assert_eq!(r.parts().iter().sum::<u64>(), 1 << d);
        }
    }

    #[test]
    fn paper_approximate_keeps_every_reagent() {
        let pcr = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];
        let r = TargetRatio::paper_approximate(&pcr, 4).unwrap();
        assert!(r.parts().iter().all(|&p| p > 0));
        // Too coarse for 7 reagents: 2^2 < 7.
        assert!(TargetRatio::paper_approximate(&pcr, 2).is_err());
    }

    #[test]
    fn approximation_error_bound_holds() {
        let pcr = [10.0, 8.0, 0.8, 0.8, 1.0, 1.0, 78.4];
        for d in 4..=10 {
            let r = TargetRatio::approximate(&pcr, d).unwrap();
            assert!(r.max_cf_error(&pcr) <= 1.0 / (1u64 << d) as f64 + 1e-12, "d={d}");
        }
    }

    #[test]
    fn reduced_removes_common_power_of_two() {
        let r = TargetRatio::new(vec![16, 16]).unwrap();
        assert_eq!(r.accuracy(), 5);
        let red = r.reduced();
        assert_eq!(red.parts(), &[1, 1]);
        assert_eq!(red.accuracy(), 1);
    }

    #[test]
    fn dilution_detection() {
        assert!(TargetRatio::new(vec![3, 5]).unwrap().is_dilution());
        assert!(TargetRatio::new(vec![3, 0, 5]).unwrap().is_dilution());
        assert!(!TargetRatio::new(vec![2, 1, 1, 1, 1, 1, 9]).unwrap().is_dilution());
    }

    #[test]
    fn parses_ratio_strings() {
        let r: TargetRatio = "2:1:1:1:1:1:9".parse().unwrap();
        assert_eq!(r.parts(), &[2, 1, 1, 1, 1, 1, 9]);
        assert!("2:x".parse::<TargetRatio>().is_err());
    }

    #[test]
    fn to_mixture_round_trips() {
        let r = TargetRatio::new(vec![26, 21, 2, 2, 3, 3, 199]).unwrap();
        let m = r.to_mixture();
        assert_eq!(m.level(), 8);
        assert_eq!(m.parts(), r.parts());
    }

    #[test]
    fn approximate_rejects_invalid_weights() {
        assert_eq!(
            TargetRatio::approximate(&[1.0, -0.5], 4),
            Err(RatioError::InvalidWeight { index: 1 })
        );
        assert_eq!(TargetRatio::approximate(&[0.0, 0.0], 4), Err(RatioError::AllZero));
        assert_eq!(TargetRatio::approximate(&[], 4), Err(RatioError::Empty));
    }
}
