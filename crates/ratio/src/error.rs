use std::error::Error;
use std::fmt;

/// Error produced while constructing or combining ratios and mixtures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RatioError {
    /// The ratio/mixture has no components at all.
    Empty,
    /// The component sum is not a power of two, so no accuracy level `d`
    /// exists with `sum == 2^d`.
    SumNotPowerOfTwo {
        /// The offending component sum.
        sum: u64,
    },
    /// The component sum does not match the expected value for the level.
    SumMismatch {
        /// Expected sum (`2^level`).
        expected: u64,
        /// Actual sum of the supplied parts.
        actual: u64,
    },
    /// Two mixtures over different fluid sets were combined.
    FluidCountMismatch {
        /// Fluid count of the left operand.
        left: usize,
        /// Fluid count of the right operand.
        right: usize,
    },
    /// All ratio components are zero.
    AllZero,
    /// A fluid index is out of range for the fluid set.
    FluidOutOfRange {
        /// The offending index.
        fluid: usize,
        /// Number of fluids in the set.
        count: usize,
    },
    /// The requested accuracy level is too large to represent in `u64`
    /// arithmetic.
    AccuracyTooLarge {
        /// The requested level.
        accuracy: u32,
    },
    /// A weight passed to [`crate::TargetRatio::approximate`] is negative,
    /// NaN or infinite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
    },
    /// A textual ratio component failed integer parsing (`FromStr`).
    ParseComponent {
        /// 0-based index of the unparseable component.
        index: usize,
    },
}

impl fmt::Display for RatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatioError::Empty => write!(f, "ratio has no components"),
            RatioError::SumNotPowerOfTwo { sum } => {
                write!(f, "component sum {sum} is not a power of two")
            }
            RatioError::SumMismatch { expected, actual } => {
                write!(f, "component sum {actual} does not match expected {expected}")
            }
            RatioError::FluidCountMismatch { left, right } => {
                write!(f, "fluid counts differ: {left} vs {right}")
            }
            RatioError::AllZero => write!(f, "all ratio components are zero"),
            RatioError::FluidOutOfRange { fluid, count } => {
                write!(f, "fluid index {fluid} out of range for {count} fluids")
            }
            RatioError::AccuracyTooLarge { accuracy } => {
                write!(f, "accuracy level {accuracy} exceeds the supported range")
            }
            RatioError::InvalidWeight { index } => {
                write!(f, "weight at index {index} is not a finite non-negative number")
            }
            RatioError::ParseComponent { index } => {
                write!(f, "ratio component at index {index} is not a valid integer")
            }
        }
    }
}

impl Error for RatioError {}
