//! Randomized tests: path validity and fluidic-constraint safety on random
//! grids and request sets, driven by a fixed-seed [`dmf_rng::StdRng`].

// Test target: the workspace `unwrap_used`/`expect_used`/`panic` deny wall
// applies to library code only (see Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
use dmf_chip::Coord;
use dmf_rng::{Rng, SeedableRng, StdRng};
use dmf_route::{actuations, route_concurrent, shortest_path, Grid, RouteRequest, TimedPath};

fn assert_fluidic_safe(paths: &[TimedPath]) {
    let steps = paths.iter().map(TimedPath::duration).max().unwrap_or(0);
    for t in 0..=steps {
        for i in 0..paths.len() {
            for j in 0..paths.len() {
                if i == j {
                    continue;
                }
                let a = paths[i].at(t);
                assert!(!a.touches(paths[j].at(t)), "static violation at t={t}");
                if t > 0 {
                    assert!(!a.touches(paths[j].at(t - 1)), "dynamic violation at t={t}");
                }
            }
        }
    }
}

/// A* paths are connected, in-bounds, endpoint-correct and
/// Manhattan-optimal on obstacle-free grids.
#[test]
fn astar_paths_are_valid() {
    let mut rng = StdRng::seed_from_u64(0xA57A);
    for _ in 0..96 {
        let w = rng.gen_range(4i32..20);
        let h = rng.gen_range(4i32..20);
        let from = Coord::new(rng.gen_range(0i32..20) % w, rng.gen_range(0i32..20) % h);
        let to = Coord::new(rng.gen_range(0i32..20) % w, rng.gen_range(0i32..20) % h);
        let grid = Grid::new(w, h);
        let path = shortest_path(&grid, from, to, &Default::default()).expect("open grid routes");
        assert_eq!(*path.first().unwrap(), from);
        assert_eq!(*path.last().unwrap(), to);
        assert_eq!(actuations(&path), from.manhattan(to));
        for pair in path.windows(2) {
            assert_eq!(pair[0].manhattan(pair[1]), 1);
            assert!(grid.passable(pair[1]));
        }
    }
}

/// A* with random obstacles either finds a valid path or correctly
/// reports none (verified against BFS reachability).
#[test]
fn astar_agrees_with_bfs_reachability() {
    let mut rng = StdRng::seed_from_u64(0xBF5E);
    for _ in 0..96 {
        let mut grid = Grid::new(10, 10);
        let from = Coord::new(0, 0);
        let to = Coord::new(9, 9);
        let blocks = rng.gen_range(0usize..30);
        for _ in 0..blocks {
            let c = Coord::new(rng.gen_range(0i32..10), rng.gen_range(0i32..10));
            if c != from && c != to {
                grid.block(c);
            }
        }
        // BFS reference.
        let mut seen = std::collections::HashSet::from([from]);
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(c) = queue.pop_front() {
            for n in c.orthogonal_neighbors() {
                if grid.passable(n) && seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        let reachable = seen.contains(&to);
        let path = shortest_path(&grid, from, to, &Default::default());
        assert_eq!(path.is_some(), reachable);
        if let Some(p) = path {
            for c in &p[1..] {
                assert!(grid.passable(*c));
            }
        }
    }
}

/// Concurrent routing never violates the fluidic constraints when it
/// succeeds.
#[test]
fn concurrent_routing_is_fluidically_safe() {
    let mut rng = StdRng::seed_from_u64(0xF1D1);
    for _ in 0..96 {
        let grid = Grid::new(20, 20);
        let n = rng.gen_range(2usize..5);
        // Spread droplets out: lane k starts on row 4k.
        let requests: Vec<RouteRequest> = (0..n)
            .map(|k| {
                let dx = rng.gen_range(0i32..5);
                let dy = rng.gen_range(0i32..5);
                RouteRequest {
                    from: Coord::new(0, (4 * k) as i32),
                    to: Coord::new(14 + dx, ((4 * (n - 1 - k) as i32) + dy).min(19)),
                }
            })
            .collect();
        if let Ok(paths) = route_concurrent(&grid, &requests) {
            assert_fluidic_safe(&paths);
            for (req, path) in requests.iter().zip(&paths) {
                assert_eq!(path.at(0), req.from);
                assert_eq!(path.at(path.duration()), req.to);
            }
        }
    }
}
