//! Property tests: path validity and fluidic-constraint safety on random
//! grids and request sets.

use dmf_chip::Coord;
use dmf_route::{actuations, route_concurrent, shortest_path, Grid, RouteRequest, TimedPath};
use proptest::prelude::*;

fn assert_fluidic_safe(paths: &[TimedPath]) {
    let steps = paths.iter().map(TimedPath::duration).max().unwrap_or(0);
    for t in 0..=steps {
        for i in 0..paths.len() {
            for j in 0..paths.len() {
                if i == j {
                    continue;
                }
                let a = paths[i].at(t);
                assert!(!a.touches(paths[j].at(t)), "static violation at t={t}");
                if t > 0 {
                    assert!(!a.touches(paths[j].at(t - 1)), "dynamic violation at t={t}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A* paths are connected, in-bounds, endpoint-correct and
    /// Manhattan-optimal on obstacle-free grids.
    #[test]
    fn astar_paths_are_valid(
        w in 4i32..20, h in 4i32..20,
        fx in 0i32..20, fy in 0i32..20,
        tx in 0i32..20, ty in 0i32..20,
    ) {
        let from = Coord::new(fx % w, fy % h);
        let to = Coord::new(tx % w, ty % h);
        let grid = Grid::new(w, h);
        let path = shortest_path(&grid, from, to, &Default::default()).expect("open grid routes");
        prop_assert_eq!(*path.first().unwrap(), from);
        prop_assert_eq!(*path.last().unwrap(), to);
        prop_assert_eq!(actuations(&path), from.manhattan(to));
        for pair in path.windows(2) {
            prop_assert_eq!(pair[0].manhattan(pair[1]), 1);
            prop_assert!(grid.passable(pair[1]));
        }
    }

    /// A* with random obstacles either finds a valid path or correctly
    /// reports none (verified against BFS reachability).
    #[test]
    fn astar_agrees_with_bfs_reachability(
        blocks in proptest::collection::hash_set((0i32..10, 0i32..10), 0..30),
    ) {
        let mut grid = Grid::new(10, 10);
        let from = Coord::new(0, 0);
        let to = Coord::new(9, 9);
        for &(x, y) in &blocks {
            let c = Coord::new(x, y);
            if c != from && c != to {
                grid.block(c);
            }
        }
        // BFS reference.
        let mut seen = std::collections::HashSet::from([from]);
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(c) = queue.pop_front() {
            for n in c.orthogonal_neighbors() {
                if grid.passable(n) && seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        let reachable = seen.contains(&to);
        let path = shortest_path(&grid, from, to, &Default::default());
        prop_assert_eq!(path.is_some(), reachable);
        if let Some(p) = path {
            for c in &p[1..] {
                prop_assert!(grid.passable(*c));
            }
        }
    }

    /// Concurrent routing never violates the fluidic constraints when it
    /// succeeds.
    #[test]
    fn concurrent_routing_is_fluidically_safe(
        lanes in proptest::collection::vec((0i32..5, 0i32..5), 2..5),
    ) {
        let grid = Grid::new(20, 20);
        // Spread droplets out: lane k starts on row 4k.
        let requests: Vec<RouteRequest> = lanes
            .iter()
            .enumerate()
            .map(|(k, &(dx, dy))| RouteRequest {
                from: Coord::new(0, (4 * k) as i32),
                to: Coord::new(14 + dx, ((4 * ((lanes.len() - 1 - k)) as i32) + dy).min(19)),
            })
            .collect();
        if let Ok(paths) = route_concurrent(&grid, &requests) {
            assert_fluidic_safe(&paths);
            for (req, path) in requests.iter().zip(&paths) {
                prop_assert_eq!(path.at(0), req.from);
                prop_assert_eq!(path.at(path.duration()), req.to);
            }
        }
    }
}
