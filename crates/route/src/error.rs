use dmf_chip::Coord;
use std::error::Error;
use std::fmt;

/// Error raised by droplet routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// A droplet could not reach its destination within the search horizon.
    Unroutable {
        /// Index of the failing request.
        index: usize,
        /// Source electrode.
        from: Coord,
        /// Destination electrode.
        to: Coord,
    },
    /// A single droplet is boxed in: no path exists between the endpoints
    /// on the given grid (blocked cells, dead electrodes or avoid set).
    NoRoute {
        /// Source electrode.
        from: Coord,
        /// Destination electrode.
        to: Coord,
    },
    /// A timed path with no positions was supplied — a droplet must occupy
    /// at least its source electrode (see [`crate::TimedPath::new`]).
    EmptyPath,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable { index, from, to } => {
                write!(f, "droplet {index} cannot be routed from {from} to {to}")
            }
            RouteError::NoRoute { from, to } => {
                write!(f, "no route exists from {from} to {to}")
            }
            RouteError::EmptyPath => {
                write!(f, "a timed path must contain at least its source electrode")
            }
        }
    }
}

impl Error for RouteError {}
