//! Droplet routing on DMF electrode grids.
//!
//! Droplets move one electrode per routing step, orthogonally, and must
//! respect the classic fluidic constraints so independent droplets never
//! merge by accident:
//!
//! * **static**: two droplets are never within each other's 8-neighborhood
//!   at the same step;
//! * **dynamic**: a droplet never moves into the 8-neighborhood of another
//!   droplet's *previous* position (no swap/chase artifacts).
//!
//! Two planners are provided:
//!
//! * [`shortest_path`] — A* for a single droplet among static obstacles;
//!   this is what the streaming engine uses for its serialized transport
//!   phases (droplet-transportation cost in electrodes, as in the paper's
//!   Fig. 5 matrix);
//! * [`route_concurrent`] — prioritised space-time A* with a reservation
//!   table for simultaneous droplet motion, including wait moves.
//!
//! # Examples
//!
//! ```
//! use dmf_chip::Coord;
//! use dmf_route::{shortest_path, Grid};
//!
//! let grid = Grid::new(8, 8);
//! let path = shortest_path(&grid, Coord::new(0, 0), Coord::new(5, 3), &Default::default())
//!     .expect("open grid always routes");
//! assert_eq!(path.len(), 9); // 8 hops + origin
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod astar;
mod concurrent;
mod error;
mod grid;

pub use astar::{actuations, shortest_path, try_shortest_path};
pub use concurrent::{
    route_concurrent, route_concurrent_pinned, search_horizon, RouteRequest, TimedPath,
};
pub use error::RouteError;
pub use grid::Grid;
